// Sharded multi-core serving tier: N independent event-loop shards with a
// deterministic cross-shard merge.
//
// Every PR so far parallelized the crypto under ONE event loop
// (PacketPipeline workers, OffloadEngine lanes, batch windows); the
// serving tier itself — accepts, timers, the session state machine —
// still ran on one core. This tier shards it: each shard owns its own
// net::EventQueue, SecureSessionServer (with its own modeled core,
// PacketPipeline workers and OffloadEngine lanes), BoundedSessionCache
// partition and TicketKeyRing, and a real std::thread drives each shard's
// queue (net::ShardExecutor) while SIMULATED time remains the clock.
// Connections hash to shards by a stable FNV-1a over the client's
// connection key at accept time — session affinity, the way an L4 hash on
// the client address routes a handset's reconnects to the same front-end.
//
// Cross-shard effects go through an epoch-barrier merge: shards advance
// in bounded time slices (slice_us), and at every slice boundary the
// merge step — on the coordinating thread, with all shards quiescent —
// (1) applies due control messages (ticket key rotations, chaos ops) to
// the shards in deterministic (due, seq) order, and (2) recomputes the
// barrier-frozen FleetControl snapshot from which EVERY admission and
// degraded-mode decision is taken until the next barrier. Nothing
// shard-count-dependent reaches the wire (AcceptOptions::wire_id), key
// derivation, or a client-visible decision, so the fleet transcript
// digest is byte-identical for shard counts {1, 2, 4, 8} — the same
// invariant PR 5/PR 6 proved for offload lanes and batch widths.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mapsec/analysis/stats.hpp"
#include "mapsec/platform/gap.hpp"
#include "mapsec/server/client.hpp"
#include "mapsec/server/load_gen.hpp"
#include "mapsec/server/server.hpp"
#include "mapsec/server/session_cache.hpp"

namespace mapsec::net {
class ShardExecutor;
}  // namespace mapsec::net

namespace mapsec::server {

/// Stable shard routing: FNV-1a over the little-endian bytes of the
/// 32-bit connection key, mod the shard count. Pure function of
/// (key, shards) — never of accept order or load.
std::size_t shard_for(std::uint32_t conn_key, std::size_t shards);

/// Failover-aware routing: highest-random-weight (rendezvous) hashing
/// over the shards marked routable. Every (key, shard) pair has a fixed
/// weight, and a key lands on its highest-weighted routable shard — so
/// when one shard dies, ONLY its keys move (each to its next-highest
/// survivor); every other key's argmax is untouched. With all shards
/// routable this is the stable rendezvous placement (distinct from
/// shard_for's modulo hash, which the non-supervised tier keeps for
/// byte-compatibility). Falls back to shard_for when nothing is routable.
std::size_t shard_for_live(std::uint32_t conn_key, std::size_t shards,
                           const std::vector<bool>& routable);

/// Sum per-shard ServerStats into a fleet view: counters add, peaks take
/// the max, latency vectors concatenate. Public so the supervisor can
/// fold a dead shard's retired counters into the same totals the live
/// merge uses.
void accumulate_stats(ServerStats& fleet, const ServerStats& shard);

/// Global wire identity for a connection attempt: the client's connection
/// key and its per-client attempt ordinal, packed so the value is
/// independent of which shard (and which dense local id) serves it.
/// Nonzero for every (key, attempt), as AcceptOptions::wire_id requires.
inline std::uint32_t make_wire_id(std::uint32_t conn_key,
                                  std::uint32_t attempt) {
  return ((conn_key + 1) << 16) | (attempt & 0xFFFF);
}

struct ShardedServerConfig {
  std::size_t shards = 1;
  /// Epoch-barrier granularity: shards never run more than this far
  /// before the merge re-freezes the fleet admission snapshot.
  net::SimTime slice_us = 1'000;

  /// Per-shard server template. Admission and degraded watermarks are
  /// interpreted as FLEET limits (the merge enforces them via
  /// FleetControl), so one config means the same policy at any shard
  /// count.
  ServerConfig server;

  /// FLEET cache capacity, split evenly across shard partitions
  /// (ceil(capacity / shards) each; 0 stays 0 for ticket mode).
  BoundedSessionCache::Config cache;

  /// Per-shard handshake-latency histogram layout (analysis::merge
  /// aggregates them exactly at reporting time).
  double histogram_bucket_us = 250.0;
  std::size_t histogram_buckets = 4096;
};

/// Per-shard slice of the fleet report (satellite of the conservation
/// assert: the fleet totals must equal the sum of these).
struct ShardBreakdown {
  std::size_t shard = 0;
  ServerStats server;
  BoundedSessionCache::Stats cache;
  std::size_t cache_state_bytes = 0;
  std::size_t ticket_state_bytes = 0;
  analysis::LatencyHistogram handshake_histogram;
};

class ShardedServer {
 public:
  explicit ShardedServer(ShardedServerConfig config);
  virtual ~ShardedServer();

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  std::size_t shards() const { return shards_.size(); }
  /// Routing. The base tier hashes over all shards; the supervisor
  /// overrides this with liveness- and binding-aware routing.
  virtual std::size_t shard_of(std::uint32_t conn_key) const {
    return shard_for(conn_key, shards_.size());
  }
  net::EventQueue& queue(std::size_t shard) { return *shards_[shard]->queue; }
  SecureSessionServer& server(std::size_t shard) {
    return *shards_[shard]->server;
  }
  BoundedSessionCache& cache(std::size_t shard) {
    return *shards_[shard]->cache;
  }

  /// Accept on the shard chosen by `conn_key`'s hash. The channels must
  /// live on that shard's queue. Safe from the owning shard's thread
  /// during a slice (it only touches that shard's world).
  std::uint32_t accept(std::uint32_t conn_key, net::Channel& tx,
                       net::Channel& rx,
                       const SecureSessionServer::AcceptOptions& opts);

  /// Enqueue a fleet-wide control operation, applied to every shard in
  /// shard order at the first epoch barrier at or after `due` — ordered
  /// against other control messages by (due, enqueue seq). Call only
  /// between slices (or before run()).
  void schedule_control(
      net::SimTime due,
      std::function<void(SecureSessionServer&, std::size_t)> op);

  /// Rotate every shard's ticket-sealing key at the first barrier >= due
  /// (all rings share a seed, so epochs stay in lockstep and a ticket
  /// sealed by one shard count opens under any other).
  void rotate_ticket_keys(net::SimTime due);

  struct RunStats {
    std::uint64_t epochs = 0;            // slice barriers crossed
    std::uint64_t control_applied = 0;   // control ops delivered (x shards)
    std::size_t events_run = 0;          // across all shards
    bool drained = true;                 // finished within max_events
    std::size_t peak_open_connections = 0;  // fleet high-water at barriers
    std::uint64_t degraded_transitions = 0;  // fleet-level entries
    double degraded_time_us = 0;             // fleet-level total
  };

  /// Drive all shards to quiescence through bounded slices and barrier
  /// merges. Spawns one thread per shard for the duration of the call.
  RunStats run(std::size_t max_events = 100'000'000);

  const FleetControl& fleet_control() const { return control_; }
  std::size_t open_connections() const;

  /// Fleet totals: per-shard counters summed (peaks take the max; the
  /// latency vectors concatenate in shard order), with the fleet-level
  /// degraded accounting from the merge.
  ServerStats fleet_stats() const;
  std::vector<ShardBreakdown> breakdown() const;

  /// The sharded conservation invariant: every shard's own accounting
  /// conserves AND the fleet totals equal the per-shard sums. Retired
  /// (pre-crash) worlds are folded in: a shard death may never lose a
  /// connection from the books.
  bool conserved() const;

 protected:
  struct Shard {
    std::unique_ptr<net::EventQueue> queue;
    std::unique_ptr<crypto::HmacDrbg> fallback_rng;
    std::unique_ptr<BoundedSessionCache> cache;
    std::unique_ptr<SecureSessionServer> server;
    /// Supervision state. A dead shard keeps its (crashed) server object
    /// for accounting until the warm rejoin replaces it; `retired`
    /// accumulates the counters of every world this slot has already
    /// buried, so fleet totals survive the replacement.
    bool alive = true;
    std::uint64_t heartbeats = 0;  // barrier heartbeat ticks (shard thread)
    ServerStats retired;
    BoundedSessionCache::Stats retired_cache;
  };

  struct ControlMessage {
    net::SimTime due = 0;
    std::uint64_t seq = 0;
    std::function<void(SecureSessionServer&, std::size_t)> op;
  };

  /// Hooks the supervisor layers onto the run loop. `at_barrier` runs on
  /// the coordinator with all shards quiescent, BEFORE the control merge
  /// of the same barrier (a shard killed here is excluded from the fleet
  /// snapshot that follows). `next_lifecycle_due` keeps the loop alive
  /// for pending lifecycle work (e.g. a rejoin) even when every queue has
  /// drained. `configure_executor` runs once per run() before the first
  /// slice (watchdog installation).
  virtual void at_barrier(net::SimTime now, RunStats& rs,
                          net::ShardExecutor& exec) {
    (void)now, (void)rs, (void)exec;
  }
  virtual net::SimTime next_lifecycle_due() const {
    return net::EventQueue::kNoEvent;
  }
  virtual void configure_executor(net::ShardExecutor& exec) { (void)exec; }

  void refresh_control(net::SimTime now, RunStats& rs);
  net::SimTime next_control_due() const;

  ShardedServerConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<ControlMessage> control_queue_;  // kept sorted (due, seq)
  /// Every control op already applied, in application order — recorded
  /// when record_control_history_ is set (supervisor mode), replayed into
  /// a rejoining shard so its ticket ring / weather state re-syncs.
  std::vector<ControlMessage> control_history_;
  bool record_control_history_ = false;
  std::uint64_t control_seq_ = 0;
  FleetControl control_;
  bool fleet_degraded_ = false;
  net::SimTime fleet_degraded_since_ = 0;
  std::uint64_t fleet_degraded_transitions_ = 0;
  double fleet_degraded_time_us_ = 0;
  net::SimTime barrier_time_ = 0;
};

// ---------------------------------------------------------------------
// Sharded load generation: the LoadGenerator harness against the sharded
// tier. Client i keeps the seed and arrival time it would have in the
// single-loop harness; only the queue its world lives on changes with the
// shard count, which is exactly what the digest-invariance tests pin.

struct ShardedLoadConfig {
  LoadConfig base;
  std::size_t shards = 1;
  net::SimTime slice_us = 1'000;
};

struct ShardedLoadReport {
  /// Fleet view, same shape the single-loop harness reports (stats are
  /// the per-shard sums; the digest spans all clients in client order).
  LoadReport fleet;
  std::vector<ShardBreakdown> shards;
  std::uint64_t epochs = 0;
  std::uint64_t control_applied = 0;
  std::size_t peak_open_connections = 0;
  /// Fleet p99 handshake latency off the MERGED per-shard histograms
  /// (analysis::merge — exact aggregation, not a p99-of-p99s).
  double handshake_hist_p99_ms = 0;
  bool conserved = false;
  platform::ShardedGapReport sharded_gap;
};

class ShardedLoadGenerator {
 public:
  ShardedLoadGenerator(ShardedLoadConfig load, ServerConfig server,
                       ClientConfig client_template,
                       BoundedSessionCache::Config cache)
      : load_(std::move(load)),
        server_(std::move(server)),
        client_(std::move(client_template)),
        cache_(cache) {}

  /// Build the sharded world, run it to quiescence, aggregate. Each call
  /// is an independent, fully-seeded run.
  ShardedLoadReport run();

 private:
  ShardedLoadConfig load_;
  ServerConfig server_;
  ClientConfig client_;
  BoundedSessionCache::Config cache_;
};

}  // namespace mapsec::server
