// Event-driven secure-session server.
//
// This is the serving layer the ROADMAP's north star asks for, sized
// against the paper's Figure 3 claim: secure-session *rates* — RSA
// handshakes per second and protected bulk throughput — are what a
// mobile appliance's MIPS budget cannot sustain. The server runs the
// full TlsServer handshake and record layer per connection over
// mapsec::net's lossy transport, with:
//
//   * session resumption through any protocol::SessionCache (use
//     BoundedSessionCache for LRU+TTL bounds),
//   * per-connection handshake and idle timeouts,
//   * backpressure: a bounded per-connection echo queue; application
//     data beyond it is deferred, never dropped,
//   * a bulk echo path through the PacketPipeline — record protection
//     (AES-CCM via the ccmp programs) shards across workers by
//     connection, bit-identical for any worker count,
//   * graceful close, and per-server counters plus a simulated-time
//     handshake-latency histogram.
//
// Single-threaded by design: every callback runs on the EventQueue, and
// the only parallelism is inside PacketPipeline::run_batch — which is
// deterministic — so a whole serving run is a pure function of its seeds.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mapsec/engine/offload_engine.hpp"
#include "mapsec/engine/packet_pipeline.hpp"
#include "mapsec/net/link.hpp"
#include "mapsec/protocol/handshake.hpp"
#include "mapsec/server/wire.hpp"
#include "mapsec/ticket/ticket.hpp"

namespace mapsec::server {

struct ServerConfig {
  /// Server credentials (cert_chain, private_key, rng, ...); copied per
  /// connection.
  protocol::HandshakeConfig handshake;

  net::SimTime handshake_timeout_us = 5'000'000;
  net::SimTime idle_timeout_us = 30'000'000;

  /// Backpressure: per-connection cap on queued-but-unsealed echo bytes.
  std::size_t max_pending_echo_bytes = 64 * 1024;

  /// Per-connection cap on deferred (backpressured) application bytes.
  /// A peer that keeps pushing past both this and the echo cap is
  /// violating flow control — the connection fails cleanly instead of
  /// growing memory without bound. 0 = unlimited (the pre-hardening
  /// behaviour).
  std::size_t max_deferred_appdata_bytes = 256 * 1024;

  // ---- admission control (all 0 = disabled) ---------------------------
  /// Refuse new connections once this many are open (handshaking +
  /// established). The refusal costs one kRefused message, not a
  /// handshake endpoint.
  std::size_t max_open_connections = 0;
  /// Bounded handshake queue: refuse new connections while this many
  /// are still mid-handshake. This is the flood valve — handshakes are
  /// where the RSA work and the per-connection state live.
  std::size_t max_handshake_queue = 0;
  /// How long a refused connection's link lingers so the kRefused
  /// message can be (re)delivered before the server stops acking.
  net::SimTime refusal_linger_us = 1'000'000;

  // ---- graceful degradation (0 = disabled) ----------------------------
  /// Entering/leaving resumption-only mode: above the high watermark of
  /// in-flight handshakes new connections may only resume (full
  /// handshakes are refused at the ClientHello, before any RSA work);
  /// below the low watermark (default high/2) full service resumes.
  std::size_t degraded_high_watermark = 0;
  std::size_t degraded_low_watermark = 0;

  /// Bulk jobs accumulate across connections and flush through the
  /// pipeline this long after the first pending job.
  net::SimTime pipeline_flush_interval_us = 500;

  std::size_t pipeline_workers = 1;
  std::uint64_t pipeline_seed = 0xC0FFEE;
  engine::EngineProfile engine_profile;

  // ---- public-key offload (0 = inline, the pre-offload behaviour) -----
  /// Accelerator lanes / worker threads for the OffloadEngine. When set,
  /// every connection handshakes in async_pk mode: private-key operations
  /// leave the event loop, and their completions return as simulated
  /// events at the modeled accelerator finish time. The honest-fleet
  /// transcript digest is byte-identical for ANY worker count (and for
  /// inline mode) — only simulated timing changes.
  std::size_t offload_workers = 0;
  engine::OffloadCosts offload_costs;
  /// Wall-clock grace before a completion event recomputes a stalled
  /// worker's job inline (graceful degradation, never deadlock).
  std::uint64_t offload_steal_timeout_ms = 250;
  /// Max queued jobs one accelerator lane drains per service window
  /// (engine::OffloadEngine batch_width). 1 = unbatched; wider windows
  /// amortize the lane cost across interleaved exponentiations under
  /// queueing. Results and the fleet digest are identical for any width.
  std::size_t offload_batch_width = 1;

  // ---- stateless session tickets (mapsec::ticket) ---------------------
  /// Ticket mode runs alongside (and is preferred over) the session
  /// cache: resumption state becomes O(key-ring depth) instead of
  /// O(cached users). The ring rotates lazily off the event queue's
  /// SimTime at accept(); rotations never strand an honest client holding
  /// a ticket sealed within the decrypt window, and any ticket failure
  /// falls back to a full handshake.
  struct TicketConfig {
    bool enabled = false;
    std::uint64_t key_seed = 0x71C7E7;  ///< deterministic sealing keys
    std::size_t decrypt_window = 3;     ///< current key + predecessors
    net::SimTime rotation_interval_us = 0;  ///< 0 = manual rotation only
    net::SimTime lifetime_us = 0;           ///< ticket expiry; 0 = none
    std::size_t max_wire_len = 512;  ///< oversize-blob refusal threshold
    /// Birth time of the key ring (kRingBirthNow = the queue's now() at
    /// construction, the normal case). A supervised shard that rejoins
    /// after a crash is rebuilt mid-run, and its ring must be a replica of
    /// the one that died: same seed, same birth, then the supervisor
    /// replays the recorded rotation history — so tickets sealed before
    /// the crash open on the rejoined shard.
    static constexpr std::uint64_t kRingBirthNow = ~std::uint64_t{0};
    std::uint64_t ring_birth_us = kRingBirthNow;
  };
  TicketConfig ticket;

  // ---- modeled host core (all 0 = free processing, the pre-shard
  // behaviour) ----------------------------------------------------------
  /// The serving tier's own CPU budget, in simulated time. The event loop
  /// so far processed every message in zero sim time, which makes the
  /// session layer look free — exactly the assumption the paper's Figure 3
  /// attacks. With a core model, each inbound handshake flight or appdata
  /// record occupies this server's (= this shard's) one modeled core for a
  /// deterministic service time; messages arriving while the core is busy
  /// queue FIFO and drain in order. N shards = N cores, so aggregate
  /// handshake rate scales with the shard count while the transcript
  /// stays byte-identical.
  struct CoreModel {
    double us_per_pk_op = 0;      ///< one RSA private op, inline mode only
    double us_per_flight = 0;     ///< fixed cost per handshake flight
    double us_per_appdata_kb = 0; ///< record open + echo enqueue, per KiB
    bool enabled() const {
      return us_per_pk_op > 0 || us_per_flight > 0 || us_per_appdata_kb > 0;
    }
  };
  CoreModel core;

  net::LinkConfig link;
};

/// Barrier-frozen fleet admission snapshot, recomputed by the sharded
/// tier's cross-shard merge at every slice boundary. When installed via
/// set_fleet_control(), admission and degraded-mode decisions read ONLY
/// this snapshot — never the shard's live local counters — so every
/// shard's decisions depend on slice-boundary state that is identical for
/// any shard count, not on which shard a neighbouring connection landed
/// on.
struct FleetControl {
  std::size_t open_connections = 0;
  std::size_t handshakes_in_flight = 0;
  bool degraded = false;
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t handshakes_started = 0;
  std::uint64_t handshakes_completed = 0;
  std::uint64_t handshakes_failed = 0;
  std::uint64_t full_handshakes = 0;
  std::uint64_t resumed_handshakes = 0;
  std::uint64_t app_messages = 0;
  std::uint64_t bulk_messages = 0;
  std::uint64_t bytes_opened = 0;  // application plaintext received
  std::uint64_t bytes_sealed = 0;  // application plaintext protected
  std::uint64_t backpressure_deferrals = 0;
  std::uint64_t idle_closes = 0;
  std::uint64_t graceful_closes = 0;
  std::uint64_t link_failures = 0;
  double engine_cycles = 0;  // simulated pipeline cost of the bulk path

  // ---- robustness / overload accounting -------------------------------
  std::uint64_t failed_connections = 0;   // every fail_connection()
  std::uint64_t refused_connections = 0;  // shed by admission control
  std::uint64_t degraded_refusals = 0;    // full handshakes shed while degraded
  std::uint64_t poisoned_connections = 0;  // non-protocol exception contained
  std::uint64_t deferred_overflow_closes = 0;
  std::uint64_t degraded_transitions = 0;  // entries into degraded mode
  /// Simulated time spent in degraded mode over CLOSED stretches; use
  /// SecureSessionServer::degraded_time_us() for the live total.
  double degraded_time_us = 0;
  /// Handshake-layer work the server actually performed, accumulated at
  /// each connection's terminal state (complete or fail) — the inputs to
  /// attacker-energy pricing: a flood's cost is the RSA ops plus the
  /// bytes pushed through the record/handshake codecs.
  std::uint64_t handshake_rsa_private_ops = 0;
  std::uint64_t handshake_bytes_rx = 0;
  std::uint64_t handshake_bytes_tx = 0;
  /// High-water marks for the bounded-memory invariant: largest
  /// queued-echo and deferred-appdata backlog any connection reached.
  std::uint64_t peak_pending_echo_bytes = 0;
  std::uint64_t peak_deferred_bytes = 0;

  // ---- modeled-core accounting (ServerConfig::core) -------------------
  double core_busy_us = 0;             // simulated service time consumed
  std::uint64_t core_deferred_msgs = 0;  // messages that found the core busy
  std::uint64_t core_peak_queue = 0;     // deepest core backlog

  // ---- stateless-ticket accounting (mirrors TicketCodec/KeyRing) ------
  std::uint64_t tickets_issued = 0;        // NewSessionTickets sealed
  std::uint64_t ticket_resumptions = 0;    // handshakes resumed via ticket
  std::uint64_t ticket_open_failures = 0;  // bad/stale/expired blobs seen
  std::uint64_t ticket_key_rotations = 0;  // interval + manual + chaos

  // ---- public-key offload accounting (mirrors OffloadEngine stats) ----
  std::uint64_t offload_submitted = 0;
  std::uint64_t offload_completed = 0;
  std::uint64_t offload_stolen = 0;   // wall-clock steals (chaos stalls)
  std::uint64_t offload_dropped = 0;  // completions for dead connections
  std::uint64_t offload_peak_depth = 0;     // deferred handshakes at once
  std::uint64_t offload_queue_wait_us = 0;  // modeled wait for a free lane
  std::uint64_t offload_lane_busy_us = 0;   // modeled lane service time
  std::uint64_t offload_batches = 0;        // lane service windows dispatched
  std::uint64_t offload_batched_jobs = 0;   // jobs that shared a window
  std::uint64_t offload_max_batch_fill = 0;  // largest window fill

  /// Completed-handshake latencies in simulated microseconds, in
  /// completion order (run through analysis::percentile for p50/p99).
  std::vector<double> handshake_latencies_us;
  /// The same latencies split by handshake kind, so full and resumed
  /// handshakes can be compared within ONE run at one offered load —
  /// cross-scenario rate comparisons conflate arrival rate with
  /// handshake cost (each scenario's sim duration differs).
  std::vector<double> full_handshake_latencies_us;
  std::vector<double> resumed_handshake_latencies_us;

  double resumption_rate() const {
    return handshakes_completed == 0
               ? 0.0
               : static_cast<double>(resumed_handshakes) /
                     static_cast<double>(handshakes_completed);
  }
};

class SecureSessionServer {
 public:
  /// `cache` (optional, not owned) enables resumption. The queue, cache
  /// and channels must outlive the server; the server must outlive the
  /// queue's remaining events (keep it alive until the run drains).
  SecureSessionServer(net::EventQueue& queue, ServerConfig config,
                      protocol::SessionCache* cache);

  SecureSessionServer(const SecureSessionServer&) = delete;
  SecureSessionServer& operator=(const SecureSessionServer&) = delete;

  /// Per-connection accept parameters for the sharded tier, where the
  /// server-local dense connection id is NOT stable across shard counts
  /// and must never reach the wire or a key derivation.
  struct AcceptOptions {
    /// On-the-wire identity: bulk-header SPI, pipeline SA id, bulk-key
    /// derivation input. 0 = use the local connection id (the
    /// single-server behaviour).
    std::uint32_t wire_id = 0;
    /// Seed for a per-connection handshake DRBG. 0 = use the shared
    /// ServerConfig::handshake.rng; nonzero gives this connection its own
    /// stream, so the draw order no longer depends on which connections
    /// share a server.
    std::uint64_t rng_seed = 0;
  };

  /// Take the server side of a duplex link: `tx` carries frames to the
  /// client, `rx` delivers the client's. Returns the connection id.
  std::uint32_t accept(net::Channel& tx, net::Channel& rx);
  std::uint32_t accept(net::Channel& tx, net::Channel& rx,
                       const AcceptOptions& opts);

  /// Install (or clear, with nullptr) the fleet admission snapshot; not
  /// owned, must outlive the server or be cleared. See FleetControl.
  void set_fleet_control(const FleetControl* control) {
    fleet_control_ = control;
  }

  const ServerStats& stats() const { return stats_; }
  const engine::PacketPipeline& pipeline() const { return pipeline_; }
  engine::PacketPipeline& pipeline_for_chaos() { return pipeline_; }
  /// nullptr when offload_workers == 0 (inline public-key mode).
  const engine::OffloadEngine* offload() const { return offload_.get(); }
  engine::OffloadEngine* offload_for_chaos() { return offload_.get(); }

  /// nullptr unless ServerConfig::ticket.enabled.
  const ticket::TicketCodec* ticket_codec() const {
    return ticket_codec_.get();
  }
  /// Force a sealing-key rotation NOW (chaos TicketKeyRotation fault and
  /// operational key-compromise response). No-op without ticket mode.
  void rotate_ticket_key();
  /// Server-side resumption state pinned by ticket mode: O(ring depth),
  /// independent of user count. 0 without ticket mode.
  std::size_t ticket_state_bytes() const {
    return ticket_ring_ ? ticket_ring_->state_bytes() : 0;
  }
  std::size_t open_connections() const;
  std::size_t handshakes_in_flight() const { return handshakes_in_flight_; }
  /// Connections in kEstablished — open == in_flight + established; O(1),
  /// for the sharded merge's per-barrier fleet snapshot.
  std::size_t established_connections() const { return established_count_; }

  /// Degraded (resumption-only) mode: current state and cumulative
  /// simulated time spent degraded, including the open stretch. Under a
  /// FleetControl snapshot the fleet-level flag is what admission sees.
  bool degraded() const {
    return fleet_control_ ? fleet_control_->degraded : degraded_;
  }
  double degraded_time_us() const;

  /// Conservation invariant the chaos campaigns assert after every run:
  /// every accepted connection is accounted for exactly once.
  ///   accepted == graceful + idle + failed + refused + open
  bool stats_conserved() const;

  /// Hard-kill accounting: fail every connection still open (handshaking
  /// or established) with `reason`, leaving the stats conserved — the
  /// supervisor calls this before destroying a crashed shard's server so
  /// the victim's partial counters merge into the fleet totals exactly.
  /// Returns the number of connections failed.
  std::size_t fail_all_connections(const std::string& reason);

 private:
  enum class ConnState {
    kHandshake,
    kEstablished,
    kClosed,
    kFailed,
    kShed,  // refused by admission control; link lingers to deliver kRefused
  };

  struct Connection {
    std::uint32_t id = 0;
    std::uint32_t wire_id = 0;  // on-the-wire SPI; == id unless sharded
    std::unique_ptr<crypto::HmacDrbg> rng;  // per-connection stream, opt.
    ConnState state = ConnState::kHandshake;
    std::unique_ptr<net::ReliableLink> link;
    std::unique_ptr<protocol::TlsServer> endpoint;
    net::SimTime accepted_at = 0;
    net::SimTime last_activity = 0;
    net::EventId handshake_timer = 0;
    net::EventId idle_timer = 0;
    std::uint32_t bulk_seq = 1;
    std::deque<crypto::Bytes> pending_echo;  // plaintext awaiting the pipeline
    std::size_t pending_echo_bytes = 0;
    std::deque<crypto::Bytes> deferred_appdata;  // backpressured inbound
    std::size_t deferred_bytes = 0;
  };

  void on_message(std::uint32_t id, crypto::ConstBytes msg);
  void deliver_message(std::uint32_t id, crypto::ConstBytes msg);
  void charge_core(Connection& conn, MsgKind kind, std::size_t body_bytes,
                   double rsa_ops_before);
  void drain_core();
  void on_link_error(std::uint32_t id, const std::string& reason);
  void handle_handshake(Connection& conn, crypto::ConstBytes body);
  void submit_pk(Connection& conn);
  void mirror_offload_stats();
  void mirror_ticket_stats();
  void handle_appdata(Connection& conn, crypto::ConstBytes body);
  void process_appdata(Connection& conn, crypto::ConstBytes records);
  void complete_handshake(Connection& conn);
  void fail_connection(Connection& conn, const std::string& reason);
  void close_connection(Connection& conn, std::uint64_t ServerStats::*counter);
  void arm_idle_timer(Connection& conn);
  void schedule_flush();
  void flush_pipeline();
  bool should_refuse() const;
  void refuse_connection(Connection& conn);
  void leave_handshake(Connection& conn);  // bookkeeping on queue exit
  void account_handshake_work(const Connection& conn);
  void update_degraded();

  net::EventQueue& queue_;
  ServerConfig config_;
  protocol::SessionCache* cache_;
  engine::PacketPipeline pipeline_;
  std::unique_ptr<engine::OffloadEngine> offload_;
  std::unique_ptr<ticket::TicketKeyRing> ticket_ring_;
  std::unique_ptr<ticket::TicketCodec> ticket_codec_;
  std::vector<std::unique_ptr<Connection>> connections_;  // index == id
  bool flush_scheduled_ = false;
  std::size_t handshakes_in_flight_ = 0;  // connections in kHandshake
  std::size_t established_count_ = 0;     // connections in kEstablished
  bool degraded_ = false;
  net::SimTime degraded_since_ = 0;
  const FleetControl* fleet_control_ = nullptr;

  // Modeled host core (ServerConfig::core): one server = one core.
  net::SimTime core_busy_until_ = 0;
  std::deque<std::pair<std::uint32_t, crypto::Bytes>> core_queue_;
  bool core_drain_scheduled_ = false;

  ServerStats stats_;
};

}  // namespace mapsec::server
