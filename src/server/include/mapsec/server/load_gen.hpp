// Load-generation harness: seeded client fleets against one server.
//
// Spawns N SessionClients with a configurable arrival process (Poisson
// or uniform) over per-connection lossy channels, drives the whole
// system on one EventQueue, and aggregates the result: serving rates
// (full/resumed handshakes per second, protected record throughput),
// latency percentiles, cache behaviour, clean-failure accounting, and a
// fleet-wide transcript digest that must be bit-identical for any
// PacketPipeline worker count. The report is priced against a processor
// model via platform::serving_gap, closing the loop to Figure 3: how
// much appliance-class silicon would this measured serving load need?
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mapsec/net/channel.hpp"
#include "mapsec/platform/gap.hpp"
#include "mapsec/server/client.hpp"
#include "mapsec/server/server.hpp"
#include "mapsec/server/session_cache.hpp"

namespace mapsec::server {

/// Deterministic sub-seed derivation shared by the sim LoadGenerator and
/// the socket fleets. Both bearers must draw identical seed streams —
/// server rng, client engine rng, arrival process, per-client seeds,
/// per-connection channel weather — for their session outcomes to be
/// comparable run-for-run.
std::uint64_t load_sub_seed(std::uint64_t seed, std::uint64_t n);
inline std::uint64_t fleet_server_seed(std::uint64_t seed) {
  return load_sub_seed(seed, 0x5E4);
}
inline std::uint64_t fleet_engine_seed(std::uint64_t seed) {
  return load_sub_seed(seed, 0xE17);
}
inline std::uint64_t fleet_arrival_seed(std::uint64_t seed) {
  return load_sub_seed(seed, 0xA881);
}
inline std::uint64_t fleet_client_seed(std::uint64_t seed, std::size_t i) {
  return load_sub_seed(seed, 0xC11E57 + i);
}
inline std::uint64_t fleet_channel_seed(std::uint64_t seed,
                                        std::uint64_t connect_counter) {
  return load_sub_seed(seed, 0xC4A17 + connect_counter);
}

/// Exponential inter-arrival draw (Poisson process) from a uniform
/// 32-bit sample; +1 keeps ln() off zero.
net::SimTime load_exponential_us(crypto::Rng& rng, double mean_us);

/// SHA-256 over the concatenation of per-client transcript digests, in
/// client order — the determinism witness compared across worker counts
/// and, with the socket bearer, across transports.
crypto::Bytes fold_fleet_digest(const std::vector<crypto::ConstBytes>& lanes);

/// Buffer-arena accounting carried in load reports. For socket-bearer
/// runs, `allocations == reserved` is the zero-steady-state-allocation
/// witness: the record path never grew the pool beyond its pre-reserved
/// working set. Sim-bearer runs leave it zeroed.
struct ArenaUsage {
  std::uint64_t allocations = 0;
  std::uint64_t acquires = 0;
  std::uint64_t recycles = 0;
  std::size_t peak_in_use = 0;
  std::size_t reserved = 0;
};

struct LoadConfig {
  std::size_t num_clients = 100;
  net::SimTime mean_interarrival_us = 1'000;
  bool poisson_arrivals = true;

  /// Channel impairments, applied to both directions of every
  /// connection.
  net::ChannelConfig channel;

  std::uint64_t seed = 0x10ADCAFE;
  std::size_t max_events = 100'000'000;  // runaway guard

  /// Appliance-class processor the served load is priced against.
  platform::Processor appliance;
  platform::Primitive pk_primitive = platform::Primitive::kRsa1024Private;
  double battery_kj = 26.0;  // the paper's Figure 4 battery
};

struct LoadReport {
  ServerStats server;
  BoundedSessionCache::Stats cache;
  double cache_hit_rate = 0;

  /// Resumption-state footprint at end of run: what the cache pins
  /// (O(cached users)) vs what ticket mode pins (O(key-ring depth);
  /// 0 when ticket mode is off). The scaling argument in two numbers.
  std::size_t cache_state_bytes = 0;
  std::size_t ticket_state_bytes = 0;

  std::size_t sessions_attempted = 0;
  std::size_t sessions_completed = 0;
  std::size_t sessions_failed = 0;  // gave up after the retry budget
  std::size_t echo_mismatches = 0;  // session records with a bad echo
  std::size_t connection_attempts = 0;

  double sim_duration_s = 0;
  double full_handshakes_per_s = 0;
  double resumed_handshakes_per_s = 0;
  double sessions_per_s = 0;
  double record_mbps = 0;  // protected application bits per sim second
  double handshake_p50_ms = 0;
  double handshake_p99_ms = 0;
  /// Full-vs-resumed latency split from THIS run. These are the
  /// apples-to-apples comparison: per-second rates depend on the
  /// scenario's offered load and duration, so comparing a full rate from
  /// one scenario against a resumed rate from another says nothing about
  /// handshake cost. Zero when the run had no handshakes of that kind.
  double full_handshake_p50_ms = 0;
  double full_handshake_p99_ms = 0;
  double resumed_handshake_p50_ms = 0;
  double resumed_handshake_p99_ms = 0;

  /// Active crypto backend summary (crypto::dispatch via the engine),
  /// recorded so serving rates carry their hardware context.
  std::string crypto_backend;

  /// SHA-256 over every client's transcript digest in client order —
  /// the determinism witness compared across worker counts.
  crypto::Bytes fleet_digest;

  /// Record-path buffer-pool accounting (socket-bearer runs only).
  ArenaUsage arena;

  platform::ServingGapReport gap;
  /// Ticket-tier pricing of the same load (meaningful when the server
  /// ran in ticket mode; state fields mirror the two lines above).
  platform::TicketGapReport ticket_gap;
};

class LoadGenerator {
 public:
  LoadGenerator(LoadConfig load, ServerConfig server,
                ClientConfig client_template,
                BoundedSessionCache::Config cache)
      : load_(std::move(load)),
        server_(std::move(server)),
        client_(std::move(client_template)),
        cache_(cache) {}

  /// Build the world, run it to quiescence, aggregate. Each call is an
  /// independent, fully-seeded run.
  LoadReport run();

 private:
  LoadConfig load_;
  ServerConfig server_;
  ClientConfig client_;
  BoundedSessionCache::Config cache_;
};

}  // namespace mapsec::server
