// Wall-clock serving fleets over the real-socket bearer.
//
// The sim LoadGenerator proves the protocol stack's behaviour; these
// fleets prove the same stack serves at wall-clock speed over real TCP.
// SocketServerFleet runs one shard per thread — each with its own
// MonotonicClock-driven reactor, buffer arena, session cache partition
// and SecureSessionServer, listening on its own loopback port (the
// accept-and-hand-off placement: a client's shard is shard_for(id), the
// same FNV routing the sharded sim tier uses, realised by port choice
// instead of a dispatcher). SocketClientFleet drives a block of
// SessionClients from one reactor thread, with seed derivation identical
// to the sim generator's — so a socket run's session outcomes (handshake
// mix, transcript digests, echo checks, conservation books) are directly
// comparable against the sim run for the same seed.
//
// Chaos hooks map the campaigns' bearer faults onto the real transport:
// reset_open_sockets() hard-RSTs every live connection on a shard,
// pause_accepts() lets the kernel accept queue overflow.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "mapsec/net/socket_bearer.hpp"
#include "mapsec/server/load_gen.hpp"
#include "mapsec/server/server.hpp"
#include "mapsec/server/session_cache.hpp"

namespace mapsec::server {

struct SocketFleetConfig {
  std::size_t shards = 1;
  net::SocketConfig socket;
  /// Arena slabs pre-reserved per shard; the report's
  /// zero_steady_state_alloc gate asserts traffic never grew past it.
  std::size_t reserve_slabs_per_shard = 64;
  std::uint64_t seed = 0x10ADCAFE;
  /// Monotonic clock origin; large values exercise the saturating
  /// timeout arithmetic at the far end of the timeline.
  net::SimTime clock_origin_us = 0;
};

class SocketServerFleet {
 public:
  struct ShardReport {
    ServerStats server;
    BoundedSessionCache::Stats cache;
    ArenaUsage arena;
    net::SocketStats sockets;
    std::uint64_t accepted = 0;
    bool conserved = false;
  };

  struct Report {
    std::vector<ShardReport> shards;
    ServerStats server;        // accumulated across shards
    net::SocketStats sockets;  // accumulated across shards
    ArenaUsage arena;          // accumulated across shards
    std::uint64_t accepted = 0;
    bool conserved = true;
    /// True iff no shard's arena allocated past its pre-reserve.
    bool zero_steady_state_alloc = true;
    std::size_t cache_state_bytes = 0;
    std::size_t ticket_state_bytes = 0;
  };

  /// Builds every shard's world (cache partitioned like ShardedServer)
  /// and binds the listeners on the constructing thread; start() hands
  /// each world to its own thread.
  SocketServerFleet(const SocketFleetConfig& config,
                    const ServerConfig& server_template,
                    const BoundedSessionCache::Config& cache_config);
  ~SocketServerFleet();

  SocketServerFleet(const SocketServerFleet&) = delete;
  SocketServerFleet& operator=(const SocketServerFleet&) = delete;

  /// All listeners bound successfully.
  bool ok() const;
  std::vector<std::uint16_t> ports() const;

  void start();
  /// Stop every shard thread, join, aggregate. Idempotent.
  Report stop();

  // ---- chaos hooks (thread-safe; block until the shard applied them) --
  void pause_accepts(std::size_t shard, bool paused);
  /// Hard-RST every live accepted connection on `shard`; returns how
  /// many were reset.
  std::size_t reset_open_sockets(std::size_t shard);
  std::uint64_t accepted_on(std::size_t shard);

 private:
  struct Shard;

  void run_shard(Shard& shard);

  SocketFleetConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;
  Report final_;
};

struct SocketLoadConfig {
  std::size_t num_clients = 50;
  /// Global id of this fleet's first client. A multi-process run gives
  /// each process a disjoint [first, first+num) block; seeds and shard
  /// routing use the global id, so the union of the processes' clients
  /// is exactly the sim generator's fleet.
  std::size_t first_client_id = 0;
  net::SimTime mean_interarrival_us = 1'000;
  bool poisson_arrivals = true;
  std::uint64_t seed = 0x10ADCAFE;
  net::SocketConfig socket;
  std::size_t reserve_slabs = 64;
  /// Wall-clock cap on the whole run; finishing under it is the normal
  /// case, hitting it leaves all_finished false in the report.
  net::SimTime wall_budget_us = 60'000'000;
  net::SimTime clock_origin_us = 0;
};

struct SocketClientReport {
  std::size_t sessions_attempted = 0;
  std::size_t sessions_completed = 0;
  std::size_t sessions_failed = 0;
  std::size_t echo_mismatches = 0;
  std::size_t connection_attempts = 0;
  std::uint64_t bearer_errors = 0;
  /// Per-client transcript digests in client order — the parent of a
  /// multi-process run concatenates the blocks (process order = id
  /// order) and folds them into the global fleet digest.
  std::vector<crypto::Bytes> client_digests;
  /// fold_fleet_digest over this fleet's own clients.
  crypto::Bytes fleet_digest;
  ArenaUsage arena;
  net::SocketStats sockets;
  bool all_finished = false;
  double wall_s = 0;
};

class SocketClientFleet {
 public:
  /// `server_template` supplies the engine profile the client-side
  /// record engine mirrors (as in the sim generator). `ports` are the
  /// server fleet's listeners; client `gid` connects to
  /// ports[shard_for(gid, ports.size())].
  SocketClientFleet(const SocketLoadConfig& load,
                    const ClientConfig& client_template,
                    const ServerConfig& server_template,
                    std::vector<std::uint16_t> ports);

  /// Drive the whole fleet to completion on the calling thread.
  SocketClientReport run();

 private:
  SocketLoadConfig load_;
  ClientConfig client_;
  ServerConfig server_;
  std::vector<std::uint16_t> ports_;
};

}  // namespace mapsec::server
