#include "mapsec/server/session_cache.hpp"

#include <utility>

namespace mapsec::server {

bool BoundedSessionCache::expired(const Node& node) const {
  return config_.ttl_us > 0 &&
         clock_.now() >= net::sat_add_time(node.stored_at, config_.ttl_us);
}

void BoundedSessionCache::evict_lru() {
  const crypto::Bytes& victim = lru_.back();
  evicted_ids_.insert(crypto::BytesHash{}(victim));
  entries_.erase(victim);
  lru_.pop_back();
  ++stats_.lru_evictions;
}

void BoundedSessionCache::store(const crypto::Bytes& session_id,
                                Entry entry) {
  if (config_.capacity == 0) return;
  const auto it = entries_.find(session_id);
  if (it != entries_.end()) {
    // Refresh in place (same id re-established): new secret, new TTL.
    it->second.entry = std::move(entry);
    it->second.stored_at = clock_.now();
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  while (entries_.size() >= config_.capacity) evict_lru();
  // A re-stored id is live again: a future miss on it would be a fresh
  // eviction's fault, not this one's.
  evicted_ids_.erase(crypto::BytesHash{}(session_id));
  lru_.push_front(session_id);
  Node node;
  node.entry = std::move(entry);
  node.stored_at = clock_.now();
  node.lru_pos = lru_.begin();
  entries_.emplace(session_id, std::move(node));
  ++stats_.insertions;
}

const BoundedSessionCache::Entry* BoundedSessionCache::lookup(
    const crypto::Bytes& session_id) {
  const auto it = entries_.find(session_id);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (evicted_ids_.count(crypto::BytesHash{}(session_id)) != 0)
      ++stats_.hit_after_evict_misses;
    return nullptr;
  }
  if (expired(it->second)) {
    evicted_ids_.insert(crypto::BytesHash{}(session_id));
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
    ++stats_.ttl_evictions;
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  ++stats_.hits;
  return &it->second.entry;
}

void BoundedSessionCache::clear() {
  entries_.clear();
  lru_.clear();
  evicted_ids_.clear();
}

std::size_t BoundedSessionCache::resumption_state_bytes() const {
  // Per-entry accounting only — id + secret + node, the LRU list node
  // (second id copy + two list pointers) and one index slot — plus the
  // evicted-id hashes the thrash classifier pins. Nothing fixed per
  // instance: an empty partition reports 0, so splitting one cache into
  // N shard partitions reports exactly the same fleet total as the
  // single cache it replaces (the partition sums are compared in the
  // sharded soak), and a capacity-0 cache (ticket mode) stays at 0.
  constexpr std::size_t kLruNodeOverhead = 2 * sizeof(void*);
  constexpr std::size_t kIndexSlotOverhead = sizeof(void*);
  std::size_t total = 0;
  for (const auto& [id, node] : entries_)
    total += 2 * id.size() + node.entry.master_secret.size() +
             sizeof(Node) + kLruNodeOverhead + kIndexSlotOverhead;
  total += evicted_ids_.size() * sizeof(std::uint64_t);
  return total;
}

}  // namespace mapsec::server
