#include "mapsec/server/load_gen.hpp"

#include <cmath>
#include <utility>

#include "mapsec/analysis/stats.hpp"
#include "mapsec/crypto/sha256.hpp"
#include "mapsec/net/sim_clock.hpp"

namespace mapsec::server {

net::SimTime load_exponential_us(crypto::Rng& rng, double mean_us) {
  const double u =
      (static_cast<double>(rng.next_u32()) + 1.0) / 4294967297.0;
  return static_cast<net::SimTime>(-mean_us * std::log(u));
}

std::uint64_t load_sub_seed(std::uint64_t seed, std::uint64_t n) {
  return seed ^ (n * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
}

crypto::Bytes fold_fleet_digest(
    const std::vector<crypto::ConstBytes>& lanes) {
  // Hash every lane through the multi-buffer sweep (lane-for-lane
  // identical to Sha256::hash), then fold the lane digests.
  crypto::Bytes digest_stream;
  for (const crypto::Bytes& lane_digest : crypto::sha256_many(lanes))
    digest_stream.insert(digest_stream.end(), lane_digest.begin(),
                         lane_digest.end());
  return crypto::Sha256::hash(digest_stream);
}

LoadReport LoadGenerator::run() {
  // Declaration order doubles as lifetime order: channels must outlive
  // the server and the clients (their links detach from channels on
  // destruction), and everything outlives the queue's drained events.
  net::EventQueue queue;
  BoundedSessionCache cache(queue, cache_);
  std::vector<std::unique_ptr<net::DuplexChannel>> channels;

  // Each run() seeds its own server rng so repeated runs (and runs that
  // differ only in worker count) are bit-identical.
  crypto::HmacDrbg server_rng(fleet_server_seed(load_.seed));
  ServerConfig server_config = server_;
  server_config.handshake.rng = &server_rng;
  SecureSessionServer server(queue, server_config, &cache);

  // Client-side engine for opening the server's CCM bulk records.
  crypto::HmacDrbg client_engine_rng(fleet_engine_seed(load_.seed));
  engine::ProtocolEngine client_engine(server_.engine_profile,
                                       &client_engine_rng);
  client_engine.load_program("ccmp-in", engine::ccmp_inbound_program());

  std::vector<std::unique_ptr<SessionClient>> clients;
  clients.reserve(load_.num_clients);
  std::uint64_t connect_counter = 0;

  crypto::HmacDrbg arrival_rng(fleet_arrival_seed(load_.seed));
  net::SimTime arrival = 0;
  for (std::size_t i = 0; i < load_.num_clients; ++i) {
    auto client = std::make_unique<SessionClient>(
        queue, client_, static_cast<std::uint32_t>(i), client_engine,
        fleet_client_seed(load_.seed, i));
    client->set_connect([this, &queue, &channels, &server,
                         &connect_counter](SessionClient&) {
      // Fresh channel per attempt: stale frames of an abandoned attempt
      // can never reach the new connection's link.
      auto channel = std::make_unique<net::DuplexChannel>(
          queue, load_.channel, load_.channel,
          fleet_channel_seed(load_.seed, connect_counter));
      ++connect_counter;
      // Client is the "a" side.
      server.accept(channel->b_to_a(), channel->a_to_b());
      auto link = std::make_unique<net::ReliableLink>(
          queue, channel->a_to_b(), channel->b_to_a(), client_.link);
      channels.push_back(std::move(channel));
      return link;
    });
    queue.schedule_at(arrival,
                      [c = client.get()] { c->start(); });
    arrival += load_.poisson_arrivals
                   ? load_exponential_us(
                         arrival_rng,
                         static_cast<double>(load_.mean_interarrival_us))
                   : load_.mean_interarrival_us;
    clients.push_back(std::move(client));
  }

  queue.run_all(load_.max_events);

  // ---- aggregate -----------------------------------------------------
  LoadReport report;
  report.server = server.stats();
  report.cache = cache.stats();
  report.cache_hit_rate = cache.hit_rate();
  report.cache_state_bytes = cache.resumption_state_bytes();
  report.ticket_state_bytes = server.ticket_state_bytes();

  // Fleet digest: fold every client's chained transcript digest in
  // client order. The digest is a pure function of the transcripts —
  // independent of backend, worker count, offload batch width, and
  // bearer (sim or socket).
  std::vector<crypto::ConstBytes> lanes;
  lanes.reserve(clients.size());
  for (const auto& client : clients) {
    for (const SessionRecord& record : client->sessions()) {
      ++report.sessions_attempted;
      report.connection_attempts += static_cast<std::size_t>(record.attempts);
      if (record.completed) ++report.sessions_completed;
      if (record.failed) ++report.sessions_failed;
      if (!record.echo_ok) ++report.echo_mismatches;
    }
    lanes.push_back(client->transcript_digest());
  }
  report.fleet_digest = fold_fleet_digest(lanes);

  report.sim_duration_s = static_cast<double>(queue.now()) / 1e6;
  const double dur = report.sim_duration_s > 0 ? report.sim_duration_s : 1;
  report.full_handshakes_per_s =
      static_cast<double>(report.server.full_handshakes) / dur;
  report.resumed_handshakes_per_s =
      static_cast<double>(report.server.resumed_handshakes) / dur;
  report.sessions_per_s =
      static_cast<double>(report.sessions_completed) / dur;
  const double protected_bytes =
      static_cast<double>(report.server.bytes_opened +
                          report.server.bytes_sealed);
  report.record_mbps = protected_bytes * 8 / 1e6 / dur;
  report.handshake_p50_ms =
      analysis::percentile(report.server.handshake_latencies_us, 0.50) /
      1e3;
  report.handshake_p99_ms =
      analysis::percentile(report.server.handshake_latencies_us, 0.99) /
      1e3;
  report.full_handshake_p50_ms =
      analysis::percentile(report.server.full_handshake_latencies_us, 0.50) /
      1e3;
  report.full_handshake_p99_ms =
      analysis::percentile(report.server.full_handshake_latencies_us, 0.99) /
      1e3;
  report.resumed_handshake_p50_ms =
      analysis::percentile(report.server.resumed_handshake_latencies_us,
                           0.50) /
      1e3;
  report.resumed_handshake_p99_ms =
      analysis::percentile(report.server.resumed_handshake_latencies_us,
                           0.99) /
      1e3;
  report.crypto_backend = engine::PacketPipeline::crypto_backend();

  platform::ServedLoad served;
  served.full_handshakes_per_s = report.full_handshakes_per_s;
  served.resumed_handshakes_per_s = report.resumed_handshakes_per_s;
  served.bulk_mbps = report.record_mbps;
  served.sessions_per_s = report.sessions_per_s;
  served.avg_session_kb =
      report.sessions_completed > 0
          ? protected_bytes / 1024.0 /
                static_cast<double>(report.sessions_completed)
          : 0;
  report.gap =
      platform::serving_gap(platform::WorkloadModel::paper_calibrated(),
                            load_.appliance, served, load_.battery_kj,
                            load_.pk_primitive);
  report.ticket_gap = platform::serving_gap_ticket(
      platform::WorkloadModel::paper_calibrated(), load_.appliance, served,
      static_cast<double>(report.ticket_state_bytes),
      static_cast<double>(report.cache_state_bytes),
      /*ticket_wire_bytes=*/96.0, load_.battery_kj, load_.pk_primitive);
  return report;
}

}  // namespace mapsec::server
