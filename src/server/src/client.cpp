#include "mapsec/server/client.hpp"

#include <algorithm>
#include <utility>

#include "mapsec/crypto/sha256.hpp"

namespace mapsec::server {

SessionClient::SessionClient(net::EventQueue& queue, ClientConfig config,
                             std::uint32_t id,
                             const engine::ProtocolEngine& engine,
                             std::uint64_t seed)
    : queue_(&queue),
      config_(std::move(config)),
      id_(id),
      engine_(engine),
      rng_(seed),
      payload_seed_(seed ^ 0x9E3779B97F4A7C15ull),
      engine_rng_(seed ^ 0xC6A4A7935BD1E995ull),
      digest_(crypto::Sha256::kDigestSize, 0) {}

void SessionClient::start() {
  started_ = true;
  start_session();
}

void SessionClient::schedule_start(net::SimTime at) {
  start_at_ = at;
  has_scheduled_start_ = true;
  const std::uint64_t epoch = epoch_;
  queue_->schedule_at(at, [this, epoch] {
    if (epoch == epoch_ && !finished_ && !started_) start();
  });
}

void SessionClient::on_shard_failover(net::EventQueue& new_queue,
                                      net::SimTime outage_started_at) {
  // Runs on the coordinator between slices; it owns every shard world, so
  // tearing down a link built on the dead queue is safe here. Cancel
  // against the old queue first (a no-op when the dead queue was cleared),
  // then strand any event that still references the old epoch.
  cancel_timers();
  ++epoch_;
  link_.reset();
  tls_.reset();
  bulk_active_ = false;
  queue_ = &new_queue;
  if (finished_) return;
  if (!started_) {
    // The arrival event died with the shard; re-arm it where we now live.
    if (has_scheduled_start_)
      schedule_start(std::max(start_at_, queue_->now()));
    return;
  }
  if (awaiting_next_session_) {
    // Between sessions: nothing was in flight, no blackout to report —
    // the next session simply dials the failover shard.
    schedule_next_session(std::max(next_session_at_, queue_->now()));
    return;
  }
  // A session was in flight on the dead shard. Reconnect after the
  // detection delay; begin_attempt() offers the ticket first, so the
  // resumed session costs the survivor zero cache bytes and zero pk ops.
  ++reconnects_;
  in_failover_ = true;
  blackout_started_at_ = outage_started_at;
  const std::uint64_t epoch = epoch_;
  queue_->schedule_in(config_.failover_reconnect_delay_us, [this, epoch] {
    if (epoch == epoch_ && !finished_) begin_attempt();
  });
}

void SessionClient::start_session() {
  awaiting_next_session_ = false;
  digested_through_ = 0;
  records_.emplace_back();
  begin_attempt();
}

void SessionClient::begin_attempt() {
  ++epoch_;
  ++records_.back().attempts;
  attempt_started_at_ = queue_->now();
  echoes_received_ = 0;
  all_sent_ = false;
  close_sent_ = false;
  bulk_active_ = false;
  sent_payloads_.clear();

  if (link_) link_->shutdown();
  link_ = connect_(*this);
  link_->set_on_message([this](crypto::ConstBytes msg) { on_message(msg); });
  link_->set_on_error([this](const std::string& reason) {
    attempt_failed("link: " + reason);
  });

  protocol::HandshakeConfig cfg = config_.handshake;
  cfg.rng = &rng_;
  if (config_.use_session_tickets) cfg.request_session_ticket = true;
  tls_ = std::make_unique<protocol::TlsClient>(cfg);
  if (ticket_) {
    // Prefer the stateless blob when the server issued one; otherwise
    // (ticketless server, or ticket mode off) resume by session id.
    if (config_.use_session_tickets && !ticket_->opaque.empty())
      tls_->set_resume_ticket(ticket_->opaque, ticket_->master_secret,
                              ticket_->suite);
    else
      tls_->set_resume_session(ticket_->session_id, ticket_->master_secret,
                               ticket_->suite);
  }

  const std::uint64_t epoch = epoch_;
  handshake_timer_ =
      queue_->schedule_in(config_.handshake_timeout_us, [this, epoch] {
        if (epoch != epoch_ || finished_) return;
        handshake_timer_ = 0;
        attempt_failed("handshake timeout");
      });
  attempt_timer_ =
      queue_->schedule_in(config_.attempt_timeout_us, [this, epoch] {
        if (epoch != epoch_ || finished_) return;
        attempt_timer_ = 0;
        attempt_failed("session timeout");
      });

  // ClientHello needs no input.
  const protocol::HandshakeStep step = protocol::step_handshake(*tls_, {});
  link_->send_message(make_msg(MsgKind::kHandshake, step.output));
}

void SessionClient::on_message(crypto::ConstBytes msg) {
  if (finished_ || msg.empty()) return;
  const auto kind = static_cast<MsgKind>(msg[0]);
  const crypto::ConstBytes body = msg.subspan(1);
  switch (kind) {
    case MsgKind::kHandshake:
      handle_handshake(body);
      break;
    case MsgKind::kBulk:
      handle_bulk(body);
      break;
    case MsgKind::kCloseAck:
      if (close_sent_) session_done();
      break;
    case MsgKind::kRefused:
      // Admission control shed us before any handshake state existed.
      // Fail the attempt now instead of burning the handshake timeout.
      ++records_.back().refused_attempts;
      attempt_failed("server refused (admission)");
      break;
    default:
      break;  // kAppData/kClose are client->server only: ignore
  }
}

void SessionClient::handle_handshake(crypto::ConstBytes body) {
  if (tls_->established()) return;  // late flight
  try {
    const protocol::HandshakeStep step =
        protocol::step_handshake(*tls_, body);
    if (!step.output.empty())
      link_->send_message(make_msg(MsgKind::kHandshake, step.output));
    if (step.established) on_established();
  } catch (const protocol::HandshakeError& e) {
    attempt_failed(e.what());
  }
}

void SessionClient::on_established() {
  if (handshake_timer_) {
    queue_->cancel(handshake_timer_);
    handshake_timer_ = 0;
  }
  SessionRecord& record = records_.back();
  record.resumed = tls_->summary().resumed;
  record.ticket_resumed = tls_->summary().ticket_resumed;
  record.handshake_latency_us = queue_->now() - attempt_started_at_;
  ticket_ = Ticket{tls_->summary().session_id, tls_->master_secret(),
                   tls_->summary().suite, tls_->session_ticket()};

  if (in_failover_) {
    // Back in service after a shard death: close the blackout window and
    // count the resume if the handshake actually rode the ticket/cache.
    in_failover_ = false;
    blackouts_us_.push_back(queue_->now() - blackout_started_at_);
    if (record.resumed || record.ticket_resumed) ++failover_resumes_;
  }

  if (config_.linger) {
    // Handshake done, then silence: the server's idle timeout owns the
    // cleanup. The session counts as completed (nothing else was asked).
    record.completed = true;
    cancel_timers();
    finish_client();
    return;
  }
  if (config_.payloads_per_session == 0) {
    all_sent_ = true;
    maybe_close();
    return;
  }
  const std::uint64_t epoch = epoch_;
  queue_->schedule_in(config_.think_time_us, [this, epoch] {
    if (epoch == epoch_ && !finished_) send_next_payload();
  });
}

crypto::Bytes SessionClient::make_payload(int session, int index) const {
  // Pure function of (client seed, session, index): a session replayed on
  // a failover shard re-sends byte-identical payloads, which is what lets
  // the digest-once rule make crashed and undisturbed runs hash equal.
  const std::uint64_t n = static_cast<std::uint64_t>(session) * 0x10001ull +
                          static_cast<std::uint64_t>(index);
  crypto::HmacDrbg rng(payload_seed_ ^
                       (n * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull));
  return rng.bytes(config_.payload_bytes);
}

void SessionClient::send_next_payload() {
  crypto::Bytes payload = make_payload(
      session_index_, static_cast<int>(sent_payloads_.size()));
  const crypto::Bytes wire = tls_->send_data(payload);
  bytes_sent_ += payload.size();
  sent_payloads_.push_back(std::move(payload));
  link_->send_message(make_msg(MsgKind::kAppData, wire));

  if (static_cast<int>(sent_payloads_.size()) >=
      config_.payloads_per_session) {
    all_sent_ = true;
    maybe_close();
    return;
  }
  const std::uint64_t epoch = epoch_;
  queue_->schedule_in(config_.think_time_us, [this, epoch] {
    if (epoch == epoch_ && !finished_) send_next_payload();
  });
}

void SessionClient::handle_bulk(crypto::ConstBytes body) {
  if (!tls_->established() || body.size() < 8) return;
  if (!bulk_active_) {
    const BulkKeys keys = derive_bulk_keys(tls_->master_secret(),
                                           tls_->summary().session_id);
    bulk_sa_ = make_bulk_sa(crypto::load_be32(body.data()), keys);
    bulk_active_ = true;
  }
  const engine::ProtocolEngine::Result result =
      engine_.run("ccmp-in", bulk_sa_, body, engine_rng_);
  SessionRecord& record = records_.back();
  if (!result.accepted) {
    record.echo_ok = false;
    return;
  }
  const int index = echoes_received_++;
  if (index >= static_cast<int>(sent_payloads_.size()) ||
      result.payload != sent_payloads_[index]) {
    record.echo_ok = false;
  } else if (index >= digested_through_) {
    // Digest-once: a payload index re-echoed by a retry (payloads are
    // pure per index, so the bytes are identical) is verified again but
    // folded into the transcript only the first time.
    bytes_echoed_ += result.payload.size();
    digest_ = crypto::Sha256::hash(crypto::cat(digest_, result.payload));
    digested_through_ = index + 1;
  }
  maybe_close();
}

void SessionClient::maybe_close() {
  if (close_sent_ || !all_sent_) return;
  if (echoes_received_ < config_.payloads_per_session) return;
  close_sent_ = true;
  link_->send_message(make_msg(MsgKind::kClose, {}));
}

void SessionClient::attempt_failed(const std::string& reason) {
  if (finished_) return;
  cancel_timers();
  ++epoch_;
  link_->shutdown();
  SessionRecord& record = records_.back();
  if (record.attempts >= config_.retry_budget) {
    record.failed = true;
    record.fail_reason = reason;
    finish_client();  // a given-up session ends the client cleanly
    return;
  }
  // Exponential backoff: budget exhaustion must be a deliberate, paced
  // decision, not a hammering loop against a congested bearer. The shift
  // is capped so a large retry budget can't push it past the width of
  // SimTime, and the wait is clamped to max_retry_backoff_us.
  const int shift = std::min(record.attempts - 1, 20);
  net::SimTime backoff = config_.retry_backoff_us << shift;
  if (config_.max_retry_backoff_us != 0)
    backoff = std::min(backoff, config_.max_retry_backoff_us);
  const std::uint64_t epoch = epoch_;
  queue_->schedule_in(backoff, [this, epoch] {
    if (epoch == epoch_ && !finished_) begin_attempt();
  });
}

void SessionClient::session_done() {
  cancel_timers();
  ++epoch_;
  records_.back().completed = true;
  ++session_index_;
  if (session_index_ < config_.sessions) {
    schedule_next_session(
        net::sat_add_time(queue_->now(), config_.think_time_us));
    return;
  }
  finish_client();
}

void SessionClient::schedule_next_session(net::SimTime at) {
  awaiting_next_session_ = true;
  next_session_at_ = at;
  const std::uint64_t epoch = epoch_;
  queue_->schedule_at(at, [this, epoch] {
    if (epoch == epoch_ && !finished_) start_session();
  });
}

void SessionClient::finish_client() {
  finished_ = true;
  // The link stays alive (still acking the peer's retransmissions) until
  // the client is destroyed at end of run.
  if (on_finished_) on_finished_(*this);
}

void SessionClient::cancel_timers() {
  if (handshake_timer_) queue_->cancel(handshake_timer_);
  if (attempt_timer_) queue_->cancel(attempt_timer_);
  handshake_timer_ = attempt_timer_ = 0;
}

}  // namespace mapsec::server
