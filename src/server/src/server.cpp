#include "mapsec/server/server.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

namespace mapsec::server {

SecureSessionServer::SecureSessionServer(net::EventQueue& queue,
                                         ServerConfig config,
                                         protocol::SessionCache* cache)
    : queue_(queue),
      config_(std::move(config)),
      cache_(cache),
      pipeline_(config_.engine_profile, config_.pipeline_workers,
                config_.pipeline_seed) {
  pipeline_.load_program("ccmp-out", engine::ccmp_outbound_program());
  pipeline_.load_program("ccmp-in", engine::ccmp_inbound_program());
  if (config_.offload_workers > 0)
    offload_ = std::make_unique<engine::OffloadEngine>(
        queue, config_.offload_workers, config_.offload_costs,
        config_.offload_steal_timeout_ms, config_.offload_batch_width);
  if (config_.ticket.enabled) {
    const std::uint64_t birth =
        config_.ticket.ring_birth_us == ServerConfig::TicketConfig::kRingBirthNow
            ? queue.now()
            : config_.ticket.ring_birth_us;
    ticket_ring_ = std::make_unique<ticket::TicketKeyRing>(
        config_.ticket.key_seed,
        ticket::TicketKeyRing::Config{config_.ticket.decrypt_window,
                                      config_.ticket.rotation_interval_us},
        birth);
    ticket_codec_ = std::make_unique<ticket::TicketCodec>(
        *ticket_ring_,
        ticket::TicketCodec::Config{config_.ticket.lifetime_us,
                                    config_.ticket.max_wire_len});
  }
}

void SecureSessionServer::rotate_ticket_key() {
  if (!ticket_ring_) return;
  ticket_ring_->rotate(queue_.now());
  ++stats_.ticket_key_rotations;
}

void SecureSessionServer::mirror_ticket_stats() {
  if (!ticket_codec_) return;
  const ticket::TicketCodec::Stats& ts = ticket_codec_->stats();
  stats_.tickets_issued = ts.sealed;
  stats_.ticket_open_failures = ts.open_failures();
}

std::uint32_t SecureSessionServer::accept(net::Channel& tx,
                                          net::Channel& rx) {
  return accept(tx, rx, AcceptOptions{});
}

std::uint32_t SecureSessionServer::accept(net::Channel& tx,
                                          net::Channel& rx,
                                          const AcceptOptions& opts) {
  const std::uint32_t id =
      static_cast<std::uint32_t>(connections_.size());
  auto conn = std::make_unique<Connection>();
  conn->id = id;
  conn->wire_id = opts.wire_id != 0 ? opts.wire_id : id;
  if (opts.rng_seed != 0)
    conn->rng = std::make_unique<crypto::HmacDrbg>(opts.rng_seed);
  conn->accepted_at = queue_.now();
  conn->last_activity = queue_.now();
  conn->link = std::make_unique<net::ReliableLink>(queue_, tx, rx,
                                                   config_.link);
  conn->link->set_on_message([this, id](crypto::ConstBytes msg) {
    on_message(id, msg);
  });
  conn->link->set_on_error([this, id](const std::string& reason) {
    on_link_error(id, reason);
  });
  ++stats_.connections_accepted;

  if (should_refuse()) {
    // Shed before any handshake state exists: no TlsServer endpoint, no
    // timer, no queue slot — the refusal costs one message and a
    // lingering link.
    refuse_connection(*conn);
    connections_.push_back(std::move(conn));
    return id;
  }

  // Degraded mode is sampled at accept time: connections admitted while
  // overloaded may only resume (the refusal happens at the ClientHello,
  // before certificates or RSA).
  protocol::HandshakeConfig hs = config_.handshake;
  hs.resumption_only = degraded();
  hs.async_pk = offload_ != nullptr;
  if (conn->rng) hs.rng = conn->rng.get();
  if (ticket_codec_) {
    // Lazy interval rotation: the ring advances when traffic samples the
    // clock (no self-rescheduling event, so an idle queue still drains).
    stats_.ticket_key_rotations +=
        ticket_ring_->maybe_rotate(queue_.now());
    hs.ticket_codec = ticket_codec_.get();
    hs.ticket_now_us = queue_.now();
  }
  conn->endpoint = std::make_unique<protocol::TlsServer>(hs, cache_);
  conn->handshake_timer =
      queue_.schedule_in(config_.handshake_timeout_us, [this, id] {
        Connection& c = *connections_[id];
        c.handshake_timer = 0;
        if (c.state == ConnState::kHandshake)
          fail_connection(c, "handshake timeout");
      });
  connections_.push_back(std::move(conn));
  ++stats_.handshakes_started;
  ++handshakes_in_flight_;
  update_degraded();
  return id;
}

bool SecureSessionServer::should_refuse() const {
  // Sharded tier: admission reads the barrier-frozen fleet snapshot, so
  // the decision for a given connection depends only on slice-boundary
  // state — identical for any shard count — never on which shard its
  // neighbours happened to hash to.
  const std::size_t open = fleet_control_
                               ? fleet_control_->open_connections
                               : handshakes_in_flight_ + established_count_;
  const std::size_t in_flight = fleet_control_
                                    ? fleet_control_->handshakes_in_flight
                                    : handshakes_in_flight_;
  if (config_.max_open_connections != 0 &&
      open >= config_.max_open_connections)
    return true;
  return config_.max_handshake_queue != 0 &&
         in_flight >= config_.max_handshake_queue;
}

void SecureSessionServer::refuse_connection(Connection& conn) {
  conn.state = ConnState::kShed;
  ++stats_.refused_connections;
  conn.link->send_message(make_msg(MsgKind::kRefused, {}));
  const std::uint32_t id = conn.id;
  queue_.schedule_in(config_.refusal_linger_us, [this, id] {
    Connection& c = *connections_[id];
    if (c.state == ConnState::kShed) {
      c.state = ConnState::kClosed;
      c.link->shutdown();
    }
  });
}

void SecureSessionServer::leave_handshake(Connection& conn) {
  (void)conn;
  --handshakes_in_flight_;
  update_degraded();
}

void SecureSessionServer::account_handshake_work(const Connection& conn) {
  if (!conn.endpoint) return;
  const protocol::HandshakeSummary& s = conn.endpoint->summary();
  stats_.handshake_rsa_private_ops +=
      static_cast<std::uint64_t>(s.rsa_private_ops);
  stats_.handshake_bytes_rx += s.bytes_received;
  stats_.handshake_bytes_tx += s.bytes_sent;
}

void SecureSessionServer::update_degraded() {
  // Sharded tier: degraded transitions are a fleet-level decision taken
  // by the merge step at epoch barriers; local watermark logic is off.
  if (fleet_control_) return;
  if (config_.degraded_high_watermark == 0) return;
  const std::size_t low = config_.degraded_low_watermark != 0
                              ? config_.degraded_low_watermark
                              : config_.degraded_high_watermark / 2;
  if (!degraded_ &&
      handshakes_in_flight_ >= config_.degraded_high_watermark) {
    degraded_ = true;
    degraded_since_ = queue_.now();
    ++stats_.degraded_transitions;
  } else if (degraded_ && handshakes_in_flight_ <= low) {
    stats_.degraded_time_us +=
        static_cast<double>(queue_.now() - degraded_since_);
    degraded_ = false;
  }
}

double SecureSessionServer::degraded_time_us() const {
  double total = stats_.degraded_time_us;
  if (degraded_)
    total += static_cast<double>(queue_.now() - degraded_since_);
  return total;
}

bool SecureSessionServer::stats_conserved() const {
  return stats_.connections_accepted ==
         stats_.graceful_closes + stats_.idle_closes +
             stats_.failed_connections + stats_.refused_connections +
             open_connections();
}

std::size_t SecureSessionServer::open_connections() const {
  std::size_t open = 0;
  for (const auto& conn : connections_)
    if (conn->state == ConnState::kHandshake ||
        conn->state == ConnState::kEstablished)
      ++open;
  return open;
}

std::size_t SecureSessionServer::fail_all_connections(
    const std::string& reason) {
  std::size_t failed = 0;
  for (const auto& conn : connections_) {
    if (conn->state != ConnState::kHandshake &&
        conn->state != ConnState::kEstablished)
      continue;
    fail_connection(*conn, reason);
    ++failed;
  }
  return failed;
}

void SecureSessionServer::on_message(std::uint32_t id,
                                     crypto::ConstBytes msg) {
  if (msg.empty()) return;
  const auto kind = static_cast<MsgKind>(msg[0]);
  // Modeled core: a handshake flight or appdata record that arrives while
  // this server's one core is still serving an earlier message queues
  // behind it (FIFO) and is processed when the core frees up — in
  // simulated time, which is what makes N shards genuinely N times the
  // serving capacity. Control traffic (kClose) stays free.
  if (config_.core.enabled() &&
      (kind == MsgKind::kHandshake || kind == MsgKind::kAppData) &&
      (core_busy_until_ > queue_.now() || !core_queue_.empty())) {
    core_queue_.emplace_back(id, crypto::Bytes(msg.begin(), msg.end()));
    ++stats_.core_deferred_msgs;
    stats_.core_peak_queue =
        std::max<std::uint64_t>(stats_.core_peak_queue, core_queue_.size());
    if (!core_drain_scheduled_) {
      core_drain_scheduled_ = true;
      queue_.schedule_at(core_busy_until_, [this] { drain_core(); });
    }
    return;
  }
  deliver_message(id, msg);
}

void SecureSessionServer::deliver_message(std::uint32_t id,
                                          crypto::ConstBytes msg) {
  Connection& conn = *connections_[id];
  if (conn.state == ConnState::kClosed ||
      conn.state == ConnState::kFailed || conn.state == ConnState::kShed)
    return;
  conn.last_activity = queue_.now();
  const auto kind = static_cast<MsgKind>(msg[0]);
  const crypto::ConstBytes body = msg.subspan(1);
  const double rsa_before =
      conn.endpoint ? conn.endpoint->summary().rsa_private_ops : 0;
  // Containment: whatever one connection's input does, only that
  // connection dies — the event loop and every other session survive.
  try {
    switch (kind) {
      case MsgKind::kHandshake:
        handle_handshake(conn, body);
        break;
      case MsgKind::kAppData:
        handle_appdata(conn, body);
        break;
      case MsgKind::kClose:
        if (conn.state == ConnState::kEstablished) {
          conn.link->send_message(make_msg(MsgKind::kCloseAck, {}));
          close_connection(conn, &ServerStats::graceful_closes);
        }
        break;
      default:
        break;  // kBulk/kCloseAck/kRefused are server->client only: ignore
    }
  } catch (const std::exception& e) {
    ++stats_.poisoned_connections;
    fail_connection(conn, e.what());
  }
  if (config_.core.enabled())
    charge_core(conn, kind, body.size(), rsa_before);
}

void SecureSessionServer::charge_core(Connection& conn, MsgKind kind,
                                      std::size_t body_bytes,
                                      double rsa_ops_before) {
  double cost = 0;
  if (kind == MsgKind::kHandshake) {
    cost = config_.core.us_per_flight;
    // Price the private-key work this flight actually triggered — a
    // resumed handshake's flights stay cheap, which is the whole
    // resumption story. With an OffloadEngine the op runs on the
    // accelerator's lane clock instead, so the host core is not charged.
    if (!offload_ && conn.endpoint) {
      const double delta =
          conn.endpoint->summary().rsa_private_ops - rsa_ops_before;
      if (delta > 0) cost += delta * config_.core.us_per_pk_op;
    }
  } else if (kind == MsgKind::kAppData) {
    cost = config_.core.us_per_appdata_kb *
           (static_cast<double>(body_bytes) / 1024.0);
  }
  if (cost <= 0) return;
  const auto cost_us = static_cast<net::SimTime>(cost + 0.5);
  core_busy_until_ = net::sat_add_time(queue_.now(), cost_us);
  stats_.core_busy_us += static_cast<double>(cost_us);
}

void SecureSessionServer::drain_core() {
  core_drain_scheduled_ = false;
  while (!core_queue_.empty() && core_busy_until_ <= queue_.now()) {
    const auto [id, raw] = std::move(core_queue_.front());
    core_queue_.pop_front();
    deliver_message(id, raw);
  }
  if (!core_queue_.empty()) {
    core_drain_scheduled_ = true;
    queue_.schedule_at(core_busy_until_, [this] { drain_core(); });
  }
}

void SecureSessionServer::handle_handshake(Connection& conn,
                                           crypto::ConstBytes body) {
  if (conn.state != ConnState::kHandshake) return;  // late flight
  try {
    const protocol::HandshakeStep step =
        protocol::step_handshake(*conn.endpoint, body);
    if (!step.output.empty())
      conn.link->send_message(make_msg(MsgKind::kHandshake, step.output));
    if (step.established)
      complete_handshake(conn);
    else if (step.pk_pending)
      submit_pk(conn);
  } catch (const protocol::HandshakeError& e) {
    if (std::string_view(e.what()).find("resumption only") !=
        std::string_view::npos)
      ++stats_.degraded_refusals;
    fail_connection(conn, e.what());
  }
  // Non-HandshakeError exceptions (rng exhaustion, codec faults) fall
  // through to on_message's containment catch and are counted poisoned.
}

void SecureSessionServer::submit_pk(Connection& conn) {
  // The endpoint suspended on a private-key operation: hand the job to
  // the accelerator and yield the event loop. The connection stays in
  // kHandshake (so handshakes_in_flight_, admission control and degraded
  // mode all see the deferred backlog) until the completion event — or
  // its handshake timeout, whichever fires first.
  const std::uint32_t id = conn.id;
  offload_->submit(
      conn.endpoint->pending_pk_job(),
      [this, id](const protocol::PkResult& result) {
        Connection& c = *connections_[id];
        if (c.state != ConnState::kHandshake || !c.endpoint ||
            !c.endpoint->pk_pending()) {
          // Timed out / failed / closed while the job was in flight.
          ++stats_.offload_dropped;
          mirror_offload_stats();
          return;
        }
        try {
          const crypto::Bytes out = c.endpoint->resume_pk(result);
          if (!out.empty())
            c.link->send_message(make_msg(MsgKind::kHandshake, out));
          if (c.endpoint->established())
            complete_handshake(c);
          else if (c.endpoint->pk_pending())
            submit_pk(c);  // e.g. CKE decrypt, then CertificateVerify
        } catch (const protocol::HandshakeError& e) {
          fail_connection(c, e.what());
        } catch (const std::exception& e) {
          ++stats_.poisoned_connections;
          fail_connection(c, e.what());
        }
        mirror_offload_stats();
      });
  mirror_offload_stats();
}

void SecureSessionServer::mirror_offload_stats() {
  const engine::OffloadStats& os = offload_->stats();
  stats_.offload_submitted = os.submitted;
  stats_.offload_completed = os.completed;
  stats_.offload_stolen = os.stolen;
  stats_.offload_peak_depth = os.peak_depth;
  stats_.offload_queue_wait_us = os.queue_wait_us;
  stats_.offload_lane_busy_us = os.lane_busy_us;
  stats_.offload_batches = os.batches;
  stats_.offload_batched_jobs = os.batched_jobs;
  stats_.offload_max_batch_fill = os.max_batch_fill;
}

void SecureSessionServer::complete_handshake(Connection& conn) {
  if (conn.handshake_timer) {
    queue_.cancel(conn.handshake_timer);
    conn.handshake_timer = 0;
  }
  conn.state = ConnState::kEstablished;
  leave_handshake(conn);
  ++established_count_;
  account_handshake_work(conn);
  ++stats_.handshakes_completed;
  const protocol::HandshakeSummary& summary = conn.endpoint->summary();
  summary.resumed ? ++stats_.resumed_handshakes : ++stats_.full_handshakes;
  if (summary.ticket_resumed) ++stats_.ticket_resumptions;
  mirror_ticket_stats();
  const double latency_us =
      static_cast<double>(queue_.now() - conn.accepted_at);
  stats_.handshake_latencies_us.push_back(latency_us);
  (summary.resumed ? stats_.resumed_handshake_latencies_us
                   : stats_.full_handshake_latencies_us)
      .push_back(latency_us);

  const BulkKeys keys = derive_bulk_keys(conn.endpoint->master_secret(),
                                         summary.session_id);
  // Keyed by the WIRE id, not the dense local id: under sharding the
  // local id depends on the shard count, and nothing shard-count-
  // dependent may reach the SPI, the SA or the nonce stream.
  pipeline_.add_sa(conn.wire_id, make_bulk_sa(conn.wire_id, keys));
  arm_idle_timer(conn);
}

void SecureSessionServer::handle_appdata(Connection& conn,
                                         crypto::ConstBytes body) {
  if (conn.state != ConnState::kEstablished) return;
  if (conn.pending_echo_bytes >= config_.max_pending_echo_bytes) {
    // Backpressure: hold the raw records until the pipeline drains the
    // queue. Deferred, not dropped — the link already acked them. But
    // deferral is itself bounded: a peer that blows through BOTH queues
    // is violating flow control and fails cleanly rather than growing
    // server memory without limit.
    if (config_.max_deferred_appdata_bytes != 0 &&
        conn.deferred_bytes + body.size() >
            config_.max_deferred_appdata_bytes) {
      ++stats_.deferred_overflow_closes;
      fail_connection(conn, "deferred appdata bound exceeded");
      return;
    }
    conn.deferred_bytes += body.size();
    stats_.peak_deferred_bytes =
        std::max<std::uint64_t>(stats_.peak_deferred_bytes,
                                conn.deferred_bytes);
    conn.deferred_appdata.emplace_back(body.begin(), body.end());
    ++stats_.backpressure_deferrals;
    return;
  }
  process_appdata(conn, body);
}

void SecureSessionServer::process_appdata(Connection& conn,
                                          crypto::ConstBytes records) {
  std::vector<crypto::Bytes> payloads;
  try {
    payloads = conn.endpoint->recv_data(records);
  } catch (const std::exception& e) {
    fail_connection(conn, e.what());
    return;
  }
  for (auto& payload : payloads) {
    ++stats_.app_messages;
    stats_.bytes_opened += payload.size();
    conn.pending_echo_bytes += payload.size();
    conn.pending_echo.push_back(std::move(payload));
  }
  stats_.peak_pending_echo_bytes = std::max<std::uint64_t>(
      stats_.peak_pending_echo_bytes, conn.pending_echo_bytes);
  if (!conn.pending_echo.empty()) schedule_flush();
}

void SecureSessionServer::schedule_flush() {
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  queue_.schedule_in(config_.pipeline_flush_interval_us,
                     [this] { flush_pipeline(); });
}

void SecureSessionServer::flush_pipeline() {
  flush_scheduled_ = false;

  // Gather pending echoes in connection-id order: the job sequence — and
  // therefore each SA's nonce stream — is independent of arrival
  // interleaving within the flush window and of the worker count.
  std::vector<engine::PipelineJob> jobs;
  std::vector<std::pair<std::uint32_t, std::size_t>> meta;  // conn, plen
  for (auto& conn_ptr : connections_) {
    Connection& conn = *conn_ptr;
    if (conn.state != ConnState::kEstablished) continue;
    while (!conn.pending_echo.empty()) {
      crypto::Bytes payload = std::move(conn.pending_echo.front());
      conn.pending_echo.pop_front();
      engine::PipelineJob job;
      job.sa_id = conn.wire_id;
      job.program = "ccmp-out";
      job.packet = bulk_header(conn.wire_id, conn.bulk_seq++);
      job.packet.insert(job.packet.end(), payload.begin(), payload.end());
      meta.emplace_back(conn.id, payload.size());
      jobs.push_back(std::move(job));
    }
    conn.pending_echo_bytes = 0;
  }
  if (jobs.empty()) return;

  const std::vector<engine::PipelineResult> results =
      pipeline_.run_batch(jobs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const engine::PipelineResult& r = results[i];
    Connection& conn = *connections_[meta[i].first];
    stats_.engine_cycles += r.engine_cycles;
    if (!r.accepted || conn.state != ConnState::kEstablished) continue;
    ++stats_.bulk_messages;
    stats_.bytes_sealed += meta[i].second;
    crypto::Bytes body = r.header;
    body.insert(body.end(), r.payload.begin(), r.payload.end());
    conn.link->send_message(make_msg(MsgKind::kBulk, body));
  }

  // Queues drained: admit deferred application data (may re-arm the
  // flush timer).
  for (auto& conn_ptr : connections_) {
    Connection& conn = *conn_ptr;
    while (!conn.deferred_appdata.empty() &&
           conn.state == ConnState::kEstablished &&
           conn.pending_echo_bytes < config_.max_pending_echo_bytes) {
      const crypto::Bytes records = std::move(conn.deferred_appdata.front());
      conn.deferred_appdata.pop_front();
      conn.deferred_bytes -= std::min(conn.deferred_bytes, records.size());
      process_appdata(conn, records);
    }
  }
}

void SecureSessionServer::arm_idle_timer(Connection& conn) {
  const std::uint32_t id = conn.id;
  conn.idle_timer = queue_.schedule_at(
      net::sat_add_time(conn.last_activity, config_.idle_timeout_us),
      [this, id] {
        Connection& c = *connections_[id];
        c.idle_timer = 0;
        if (c.state != ConnState::kEstablished) return;
        if (queue_.now() >=
            net::sat_add_time(c.last_activity, config_.idle_timeout_us)) {
          close_connection(c, &ServerStats::idle_closes);
          c.link->shutdown();  // stop acking a peer we gave up on
        } else {
          arm_idle_timer(c);  // activity since scheduling: re-arm
        }
      });
}

void SecureSessionServer::close_connection(
    Connection& conn, std::uint64_t ServerStats::*counter) {
  if (conn.handshake_timer) queue_.cancel(conn.handshake_timer);
  if (conn.idle_timer) queue_.cancel(conn.idle_timer);
  conn.handshake_timer = conn.idle_timer = 0;
  if (conn.state == ConnState::kEstablished) --established_count_;
  conn.state = ConnState::kClosed;
  ++(stats_.*counter);
  // The link stays up (unless the caller shuts it down): a graceful
  // close still owes the peer the retransmission of its kCloseAck.
}

void SecureSessionServer::fail_connection(Connection& conn,
                                          const std::string& reason) {
  (void)reason;
  if (conn.state == ConnState::kFailed || conn.state == ConnState::kClosed)
    return;  // already terminal: keep the counters single-entry
  if (conn.handshake_timer) queue_.cancel(conn.handshake_timer);
  if (conn.idle_timer) queue_.cancel(conn.idle_timer);
  conn.handshake_timer = conn.idle_timer = 0;
  if (conn.state == ConnState::kHandshake) {
    ++stats_.handshakes_failed;
    leave_handshake(conn);
    account_handshake_work(conn);  // attacker-induced work is work done
  } else if (conn.state == ConnState::kEstablished) {
    --established_count_;
  }
  conn.state = ConnState::kFailed;
  ++stats_.failed_connections;
  mirror_ticket_stats();  // garbage tickets show up as open failures
  conn.link->shutdown();
}

void SecureSessionServer::on_link_error(std::uint32_t id,
                                        const std::string& reason) {
  Connection& conn = *connections_[id];
  if (conn.state == ConnState::kClosed ||
      conn.state == ConnState::kFailed) {
    return;
  }
  if (conn.state == ConnState::kShed) {
    // The refusal could not be delivered (e.g. blackout): the shed
    // connection just goes quiet; it was already accounted as refused.
    conn.state = ConnState::kClosed;
    conn.link->shutdown();
    return;
  }
  ++stats_.link_failures;
  fail_connection(conn, reason);
}

}  // namespace mapsec::server
