#include "mapsec/server/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace mapsec::server {

namespace {

std::uint64_t mix(std::uint64_t seed, std::uint64_t n) {
  return seed ^ (n * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
}

}  // namespace

ShardSupervisor::ShardSupervisor(ShardedServerConfig config)
    : ShardedServer(std::move(config)),
      draining_(shards()),
      routable_(shards(), true),
      heartbeats_expected_(shards(), 0) {
  // A rejoining shard re-syncs by replaying everything the fleet applied
  // while it was down (and before): keep the full history.
  record_control_history_ = true;
}

void ShardSupervisor::bind_client(std::uint32_t conn_key,
                                  SessionClient* client) {
  Binding b;
  b.client = client;
  b.shard = shard_for_live(conn_key, shards(), routable_);
  bindings_[conn_key] = b;
}

std::size_t ShardSupervisor::shard_of(std::uint32_t conn_key) const {
  const auto it = bindings_.find(conn_key);
  if (it != bindings_.end()) return it->second.shard;
  return shard_for(conn_key, shards());
}

std::size_t ShardSupervisor::live_shards() const {
  std::size_t live = 0;
  for (std::size_t s = 0; s < shards(); ++s)
    if (shards_[s]->alive) ++live;
  return live;
}

void ShardSupervisor::push_op(LifecycleOp op) {
  op.seq = lifecycle_seq_++;
  lifecycle_.push_back(op);
  std::sort(lifecycle_.begin(), lifecycle_.end(),
            [](const LifecycleOp& a, const LifecycleOp& b) {
              return a.due != b.due ? a.due < b.due : a.seq < b.seq;
            });
}

void ShardSupervisor::schedule_crash(net::SimTime at, std::size_t shard,
                                     net::SimTime repair_us) {
  LifecycleOp op;
  op.due = at;
  op.kind = LifecycleOp::Kind::kCrash;
  op.shard = shard;
  op.repair_us = repair_us;
  push_op(op);
}

void ShardSupervisor::schedule_hang(net::SimTime at, std::size_t shard,
                                    net::SimTime repair_us) {
  Hang h;
  h.shard = shard;
  h.repair_us = repair_us;
  h.latch = std::make_shared<net::HangLatch>();
  // The latch event is the hang: the shard's thread blocks inside its
  // slice until the watchdog's unstick releases it.
  shards_[shard]->queue->schedule_at(at, [latch = h.latch] { latch->wait(); });
  hangs_.push_back(std::move(h));
}

void ShardSupervisor::schedule_drain(net::SimTime at, std::size_t shard,
                                     net::SimTime deadline_us,
                                     net::SimTime repair_us) {
  LifecycleOp op;
  op.due = at;
  op.kind = LifecycleOp::Kind::kDrain;
  op.shard = shard;
  op.repair_us = repair_us;
  op.deadline_us = deadline_us;
  push_op(op);
}

void ShardSupervisor::schedule_rejoin(std::size_t shard, net::SimTime now,
                                      net::SimTime repair_us) {
  if (repair_us == kNoRepair) return;
  LifecycleOp op;
  op.due = net::sat_add_time(now, repair_us);
  op.kind = LifecycleOp::Kind::kRejoin;
  op.shard = shard;
  push_op(op);
}

net::SimTime ShardSupervisor::next_lifecycle_due() const {
  return lifecycle_.empty() ? net::EventQueue::kNoEvent
                            : lifecycle_.front().due;
}

void ShardSupervisor::configure_executor(net::ShardExecutor& exec) {
  if (hangs_.empty()) return;
  exec.set_watchdog(std::chrono::milliseconds(watchdog_wall_ms_),
                    [this](bool force) {
                      std::vector<std::size_t> stuck;
                      for (Hang& h : hangs_)
                        if (h.latch->release(force)) stuck.push_back(h.shard);
                      return stuck;
                    });
}

void ShardSupervisor::migrate_clients(std::size_t shard, net::SimTime now,
                                      bool only_idle) {
  for (auto& [key, bind] : bindings_) {
    if (bind.shard != shard) continue;
    if (only_idle && !bind.client->idle()) continue;
    bind.shard = shard_for_live(key, shards(), routable_);
    ++fstats_.clients_migrated;
    bind.client->on_shard_failover(*shards_[bind.shard]->queue, now);
  }
}

void ShardSupervisor::kill_shard(std::size_t shard, net::SimTime now,
                                 const char* reason) {
  Shard& sh = *shards_[shard];
  if (!sh.alive) return;
  sh.alive = false;
  routable_[shard] = false;
  draining_[shard].active = false;
  fstats_.connections_killed += sh.server->fail_all_connections(reason);
  // The world's schedule dies with it: timers, ARQ retransmits, offload
  // completions. The queue object itself survives (its clock keeps
  // following the barriers) and hosts the rejoined world later.
  sh.queue->clear();
  if (fstats_.first_outage_at_us == net::EventQueue::kNoEvent)
    fstats_.first_outage_at_us = now;
  migrate_clients(shard, now, /*only_idle=*/false);
}

void ShardSupervisor::retire_world(std::size_t shard) {
  // Called exactly once per buried world, at the rejoin that replaces it:
  // fleet_stats() reads `retired` PLUS the slot's current server object,
  // so retiring any earlier would double-count the dead world's books.
  Shard& sh = *shards_[shard];
  // Defensive sweep — by here every connection is closed (hard-kill
  // failed them; a completed drain watched them leave).
  sh.server->fail_all_connections("retired");
  accumulate_stats(sh.retired, sh.server->stats());
  sh.retired_cache += sh.cache->stats();
}

void ShardSupervisor::rejoin_shard(std::size_t shard, net::SimTime now) {
  Shard& sh = *shards_[shard];
  if (sh.alive) return;
  retire_world(shard);

  // Fresh world on the same queue (clock already at the barrier). This
  // mirrors the base constructor exactly: same cache partition, same
  // fallback-rng stream, and — critically — a ticket ring REPLICA: same
  // seed, same birth instant (the tier's construction at t=0), then the
  // recorded control history replayed below, so every manual rotation the
  // fleet saw lands in the same order and pre-crash tickets still open.
  BoundedSessionCache::Config part = config_.cache;
  if (part.capacity > 0)
    part.capacity = (part.capacity + shards() - 1) / shards();
  sh.cache = std::make_unique<BoundedSessionCache>(*sh.queue, part);
  sh.fallback_rng = std::make_unique<crypto::HmacDrbg>(
      mix(config_.server.ticket.key_seed, 0x5EED + shard));
  ServerConfig cfg = config_.server;
  cfg.handshake.rng = sh.fallback_rng.get();
  if (config_.server.handshake.rng != nullptr && shards() == 1)
    cfg.handshake.rng = config_.server.handshake.rng;
  if (cfg.ticket.enabled) cfg.ticket.ring_birth_us = 0;
  sh.server = std::make_unique<SecureSessionServer>(*sh.queue, std::move(cfg),
                                                    sh.cache.get());
  sh.server->set_fleet_control(&control_);
  for (const ControlMessage& msg : control_history_) {
    msg.op(*sh.server, shard);
    ++fstats_.control_replayed;
  }
  sh.alive = true;
  routable_[shard] = true;
  // The kill cleared any in-flight heartbeat tick with the queue; re-sync
  // so the first post-rejoin barrier is not misread as a missed beat.
  heartbeats_expected_[shard] = sh.heartbeats;
  ++fstats_.rejoins;
  fstats_.last_rejoin_at_us = now;
  // Clients migrated off stay where they are (moving an in-flight world
  // back across threads buys nothing); rendezvous naturally routes NEW
  // bindings home again. The chaos layer re-arms this shard's weather.
  if (on_rejoin_) on_rejoin_(shard);
}

void ShardSupervisor::beat_hearts(net::SimTime now) {
  // Epoch-barrier heartbeat: each live, non-idle shard gets a tick to run
  // in the next slice; a live shard that missed its previous tick is a
  // supervision failure (it never fires unless the executor is broken —
  // a HUNG shard still completes its slice once the watchdog releases
  // it). Idle shards get no tick so a drained fleet still quiesces.
  for (std::size_t s = 0; s < shards(); ++s) {
    Shard& sh = *shards_[s];
    if (!sh.alive) continue;
    if (sh.heartbeats != heartbeats_expected_[s])
      ++fstats_.missed_heartbeats;
    if (sh.queue->empty()) continue;
    sh.queue->schedule_at(now, [&beats = sh.heartbeats] { ++beats; });
    heartbeats_expected_[s] = sh.heartbeats + 1;
  }
  std::uint64_t seen = 0;
  for (std::size_t s = 0; s < shards(); ++s) seen += shards_[s]->heartbeats;
  fstats_.heartbeats_seen = seen;
}

void ShardSupervisor::at_barrier(net::SimTime now, RunStats& rs,
                                 net::ShardExecutor& exec) {
  (void)rs;
  // 1. Hang detection: shards the watchdog had to unstick during the
  //    slice that just completed. Which shards these are is decided by
  //    the simulated schedule (only an ENGAGED latch reports), so the
  //    escalation below replays identically run over run.
  for (const std::size_t s : exec.last_stragglers()) {
    for (Hang& h : hangs_) {
      if (h.shard != s || h.handled) continue;
      h.handled = true;
      ++fstats_.hangs_detected;
      kill_shard(s, now, "shard hang (watchdog hard-kill)");
      schedule_rejoin(s, now, h.repair_us);
      break;
    }
  }

  // 2. Due lifecycle ops, in (due, seq) order.
  std::size_t processed = 0;
  for (std::size_t i = 0; i < lifecycle_.size(); ++i) {
    const LifecycleOp op = lifecycle_[i];
    if (op.due > now) break;
    ++processed;
    Shard& sh = *shards_[op.shard];
    switch (op.kind) {
      case LifecycleOp::Kind::kCrash:
        if (!sh.alive) break;
        ++fstats_.crashes;
        kill_shard(op.shard, now, "shard crash (supervisor hard-kill)");
        schedule_rejoin(op.shard, now, op.repair_us);
        break;
      case LifecycleOp::Kind::kDrain: {
        if (!sh.alive) break;
        ++fstats_.drains;
        draining_[op.shard].active = true;
        draining_[op.shard].repair_us = op.repair_us;
        routable_[op.shard] = false;
        migrate_clients(op.shard, now, /*only_idle=*/true);
        LifecycleOp deadline;
        deadline.due = net::sat_add_time(now, op.deadline_us);
        deadline.kind = LifecycleOp::Kind::kDrainDeadline;
        deadline.shard = op.shard;
        deadline.repair_us = op.repair_us;
        push_op(deadline);
        break;
      }
      case LifecycleOp::Kind::kDrainDeadline:
        if (!draining_[op.shard].active) break;  // drain already completed
        ++fstats_.drain_hard_kills;
        kill_shard(op.shard, now, "drain deadline (hard-kill)");
        schedule_rejoin(op.shard, now, op.repair_us);
        break;
      case LifecycleOp::Kind::kRejoin:
        rejoin_shard(op.shard, now);
        break;
    }
    // push_op re-sorts lifecycle_; restart the scan over the (possibly
    // reordered) prefix. Ops already executed are counted by `processed`
    // and sit before any op with a later due time, so erasing the prefix
    // below stays correct.
  }
  lifecycle_.erase(lifecycle_.begin(),
                   lifecycle_.begin() + static_cast<std::ptrdiff_t>(processed));

  // 3. Drain progress: migrate clients that went idle since the drain
  //    started; when the last connection leaves, retire the world and
  //    schedule the rejoin.
  for (std::size_t s = 0; s < shards(); ++s) {
    if (!draining_[s].active) continue;
    migrate_clients(s, now, /*only_idle=*/true);
    if (shards_[s]->server->open_connections() != 0) continue;
    draining_[s].active = false;
    shards_[s]->alive = false;
    shards_[s]->queue->clear();
    // Whoever is still bound here (e.g. mid-backoff between attempts)
    // must dial a survivor next.
    migrate_clients(s, now, /*only_idle=*/false);
    if (fstats_.first_outage_at_us == net::EventQueue::kNoEvent)
      fstats_.first_outage_at_us = now;
    schedule_rejoin(s, now, draining_[s].repair_us);
  }

  // 4. Health heartbeats for the next slice.
  beat_hearts(now);
}

}  // namespace mapsec::server
