#include "mapsec/server/sharded_server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "mapsec/crypto/sha256.hpp"
#include "mapsec/net/shard_exec.hpp"

namespace mapsec::server {

namespace {

std::uint64_t mix(std::uint64_t seed, std::uint64_t n) {
  return seed ^ (n * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
}

net::SimTime exponential_us(crypto::Rng& rng, double mean_us) {
  const double u =
      (static_cast<double>(rng.next_u32()) + 1.0) / 4294967297.0;
  return static_cast<net::SimTime>(-mean_us * std::log(u));
}

}  // namespace

void accumulate_stats(ServerStats& fleet, const ServerStats& shard) {
  fleet.connections_accepted += shard.connections_accepted;
  fleet.handshakes_started += shard.handshakes_started;
  fleet.handshakes_completed += shard.handshakes_completed;
  fleet.handshakes_failed += shard.handshakes_failed;
  fleet.full_handshakes += shard.full_handshakes;
  fleet.resumed_handshakes += shard.resumed_handshakes;
  fleet.app_messages += shard.app_messages;
  fleet.bulk_messages += shard.bulk_messages;
  fleet.bytes_opened += shard.bytes_opened;
  fleet.bytes_sealed += shard.bytes_sealed;
  fleet.backpressure_deferrals += shard.backpressure_deferrals;
  fleet.idle_closes += shard.idle_closes;
  fleet.graceful_closes += shard.graceful_closes;
  fleet.link_failures += shard.link_failures;
  fleet.engine_cycles += shard.engine_cycles;
  fleet.failed_connections += shard.failed_connections;
  fleet.refused_connections += shard.refused_connections;
  fleet.degraded_refusals += shard.degraded_refusals;
  fleet.poisoned_connections += shard.poisoned_connections;
  fleet.deferred_overflow_closes += shard.deferred_overflow_closes;
  fleet.degraded_transitions += shard.degraded_transitions;
  fleet.degraded_time_us += shard.degraded_time_us;
  fleet.handshake_rsa_private_ops += shard.handshake_rsa_private_ops;
  fleet.handshake_bytes_rx += shard.handshake_bytes_rx;
  fleet.handshake_bytes_tx += shard.handshake_bytes_tx;
  fleet.peak_pending_echo_bytes = std::max(fleet.peak_pending_echo_bytes,
                                           shard.peak_pending_echo_bytes);
  fleet.peak_deferred_bytes =
      std::max(fleet.peak_deferred_bytes, shard.peak_deferred_bytes);
  fleet.core_busy_us += shard.core_busy_us;
  fleet.core_deferred_msgs += shard.core_deferred_msgs;
  fleet.core_peak_queue =
      std::max(fleet.core_peak_queue, shard.core_peak_queue);
  fleet.tickets_issued += shard.tickets_issued;
  fleet.ticket_resumptions += shard.ticket_resumptions;
  fleet.ticket_open_failures += shard.ticket_open_failures;
  fleet.ticket_key_rotations += shard.ticket_key_rotations;
  fleet.offload_submitted += shard.offload_submitted;
  fleet.offload_completed += shard.offload_completed;
  fleet.offload_stolen += shard.offload_stolen;
  fleet.offload_dropped += shard.offload_dropped;
  fleet.offload_peak_depth =
      std::max(fleet.offload_peak_depth, shard.offload_peak_depth);
  fleet.offload_queue_wait_us += shard.offload_queue_wait_us;
  fleet.offload_lane_busy_us += shard.offload_lane_busy_us;
  fleet.offload_batches += shard.offload_batches;
  fleet.offload_batched_jobs += shard.offload_batched_jobs;
  fleet.offload_max_batch_fill =
      std::max(fleet.offload_max_batch_fill, shard.offload_max_batch_fill);
  fleet.handshake_latencies_us.insert(fleet.handshake_latencies_us.end(),
                                      shard.handshake_latencies_us.begin(),
                                      shard.handshake_latencies_us.end());
  fleet.full_handshake_latencies_us.insert(
      fleet.full_handshake_latencies_us.end(),
      shard.full_handshake_latencies_us.begin(),
      shard.full_handshake_latencies_us.end());
  fleet.resumed_handshake_latencies_us.insert(
      fleet.resumed_handshake_latencies_us.end(),
      shard.resumed_handshake_latencies_us.begin(),
      shard.resumed_handshake_latencies_us.end());
}

std::size_t shard_for(std::uint32_t conn_key, std::size_t shards) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (int i = 0; i < 4; ++i) {
    h ^= (conn_key >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;  // FNV prime
  }
  return shards > 1 ? static_cast<std::size_t>(h % shards) : 0;
}

std::size_t shard_for_live(std::uint32_t conn_key, std::size_t shards,
                           const std::vector<bool>& routable) {
  // Highest-random-weight: weight(key, shard) is a fixed mix of the two,
  // so removing one shard never perturbs another key's argmax.
  std::size_t best = shards;  // sentinel: nothing routable yet
  std::uint64_t best_w = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    if (s < routable.size() && !routable[s]) continue;
    std::uint64_t w = (static_cast<std::uint64_t>(conn_key) << 32) |
                      (static_cast<std::uint64_t>(s) + 1);
    w *= 0x9E3779B97F4A7C15ull;
    w ^= w >> 29;
    w *= 0xBF58476D1CE4E5B9ull;
    w ^= w >> 32;
    if (best == shards || w > best_w) {
      best = s;
      best_w = w;
    }
  }
  return best == shards ? shard_for(conn_key, shards) : best;
}

ShardedServer::ShardedServer(ShardedServerConfig config)
    : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.slice_us == 0) config_.slice_us = 1'000;

  BoundedSessionCache::Config part = config_.cache;
  if (part.capacity > 0)
    part.capacity =
        (part.capacity + config_.shards - 1) / config_.shards;

  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->queue = std::make_unique<net::EventQueue>();
    shard->cache = std::make_unique<BoundedSessionCache>(*shard->queue, part);
    ServerConfig cfg = config_.server;
    // Per-shard fallback rng: connections normally get their own stream
    // via AcceptOptions::rng_seed, but an accept without one must not
    // share a DRBG across shard threads.
    shard->fallback_rng = std::make_unique<crypto::HmacDrbg>(
        mix(config_.server.ticket.key_seed, 0x5EED + s));
    cfg.handshake.rng = shard->fallback_rng.get();
    if (config_.server.handshake.rng != nullptr && config_.shards == 1)
      cfg.handshake.rng = config_.server.handshake.rng;
    shard->server = std::make_unique<SecureSessionServer>(
        *shard->queue, std::move(cfg), shard->cache.get());
    shard->server->set_fleet_control(&control_);
    shards_.push_back(std::move(shard));
  }
}

ShardedServer::~ShardedServer() {
  // Detach the fleet snapshot before the servers die (it outlives them
  // here, but keep the teardown order obviously safe).
  for (auto& shard : shards_) shard->server->set_fleet_control(nullptr);
}

std::uint32_t ShardedServer::accept(
    std::uint32_t conn_key, net::Channel& tx, net::Channel& rx,
    const SecureSessionServer::AcceptOptions& opts) {
  return shards_[shard_of(conn_key)]->server->accept(tx, rx, opts);
}

void ShardedServer::schedule_control(
    net::SimTime due,
    std::function<void(SecureSessionServer&, std::size_t)> op) {
  ControlMessage msg;
  msg.due = due;
  msg.seq = control_seq_++;
  msg.op = std::move(op);
  control_queue_.push_back(std::move(msg));
  std::sort(control_queue_.begin(), control_queue_.end(),
            [](const ControlMessage& a, const ControlMessage& b) {
              return a.due != b.due ? a.due < b.due : a.seq < b.seq;
            });
}

void ShardedServer::rotate_ticket_keys(net::SimTime due) {
  schedule_control(due, [](SecureSessionServer& server, std::size_t) {
    server.rotate_ticket_key();
  });
}

net::SimTime ShardedServer::next_control_due() const {
  return control_queue_.empty() ? net::EventQueue::kNoEvent
                                : control_queue_.front().due;
}

std::size_t ShardedServer::open_connections() const {
  std::size_t open = 0;
  for (const auto& shard : shards_)
    open += shard->server->handshakes_in_flight() +
            shard->server->established_connections();
  return open;
}

void ShardedServer::refresh_control(net::SimTime now, RunStats& rs) {
  // 1. Deliver due control messages, ordered by (due, seq), each to every
  //    shard in shard order — the "ordered control messages at slice
  //    boundaries" half of the merge.
  std::size_t applied = 0;
  for (ControlMessage& msg : control_queue_) {
    if (msg.due > now) break;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      // A dead shard misses control traffic, exactly like a crashed
      // front-end misses a key-rotation push; the supervisor replays the
      // recorded history into the rejoined world to re-sync it.
      if (!shards_[s]->alive) continue;
      msg.op(*shards_[s]->server, s);
      ++rs.control_applied;
    }
    if (record_control_history_) control_history_.push_back(msg);
    ++applied;
  }
  control_queue_.erase(control_queue_.begin(),
                       control_queue_.begin() +
                           static_cast<std::ptrdiff_t>(applied));

  // 2. Re-freeze the fleet admission snapshot from the quiescent shards.
  std::size_t in_flight = 0;
  std::size_t open = 0;
  for (const auto& shard : shards_) {
    in_flight += shard->server->handshakes_in_flight();
    open += shard->server->handshakes_in_flight() +
            shard->server->established_connections();
  }
  control_.handshakes_in_flight = in_flight;
  control_.open_connections = open;
  rs.peak_open_connections = std::max(rs.peak_open_connections, open);

  // 3. Fleet-level degraded transitions (the per-shard watermark logic is
  //    disabled under FleetControl; watermarks are fleet limits here).
  if (config_.server.degraded_high_watermark != 0) {
    const std::size_t high = config_.server.degraded_high_watermark;
    const std::size_t low = config_.server.degraded_low_watermark != 0
                                ? config_.server.degraded_low_watermark
                                : high / 2;
    if (!fleet_degraded_ && in_flight >= high) {
      fleet_degraded_ = true;
      fleet_degraded_since_ = now;
      ++fleet_degraded_transitions_;
    } else if (fleet_degraded_ && in_flight <= low) {
      fleet_degraded_time_us_ +=
          static_cast<double>(now - fleet_degraded_since_);
      fleet_degraded_ = false;
    }
  }
  control_.degraded = fleet_degraded_;
}

ShardedServer::RunStats ShardedServer::run(std::size_t max_events) {
  RunStats rs;
  std::vector<net::EventQueue*> queues;
  queues.reserve(shards_.size());
  for (auto& shard : shards_) queues.push_back(shard->queue.get());
  net::ShardExecutor exec(std::move(queues));
  configure_executor(exec);

  for (;;) {
    // Supervisor lifecycle first: a shard killed at this barrier must be
    // out of the fleet snapshot refresh_control freezes next.
    at_barrier(barrier_time_, rs, exec);
    refresh_control(barrier_time_, rs);
    const net::SimTime next =
        std::min({exec.next_event_time(), next_control_due(),
                  next_lifecycle_due()});
    if (next == net::EventQueue::kNoEvent) break;
    // One bounded slice covering the next instant anything can happen:
    // the smallest slice-aligned deadline strictly past `next`.
    const net::SimTime deadline =
        (next / config_.slice_us + 1) * config_.slice_us;
    exec.run_slice(deadline);
    barrier_time_ = deadline;
    ++rs.epochs;
    if (exec.events_run() > max_events) {
      rs.drained = false;
      break;
    }
  }
  if (fleet_degraded_) {
    fleet_degraded_time_us_ +=
        static_cast<double>(barrier_time_ - fleet_degraded_since_);
    fleet_degraded_since_ = barrier_time_;
  }
  rs.events_run = exec.events_run();
  rs.degraded_transitions = fleet_degraded_transitions_;
  rs.degraded_time_us = fleet_degraded_time_us_;
  return rs;
}

ServerStats ShardedServer::fleet_stats() const {
  ServerStats fleet;
  for (const auto& shard : shards_) {
    accumulate_stats(fleet, shard->retired);
    accumulate_stats(fleet, shard->server->stats());
  }
  // Degraded accounting is fleet-level under the merge; per-shard values
  // are zero by construction.
  fleet.degraded_transitions += fleet_degraded_transitions_;
  fleet.degraded_time_us += fleet_degraded_time_us_;
  return fleet;
}

std::vector<ShardBreakdown> ShardedServer::breakdown() const {
  std::vector<ShardBreakdown> out;
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardBreakdown b;
    b.shard = s;
    // Retired (pre-crash) worlds plus the current one: the slot's whole
    // history, so per-shard sums still reconcile with the fleet totals
    // after a death and rejoin.
    b.server = shards_[s]->retired;
    accumulate_stats(b.server, shards_[s]->server->stats());
    b.cache = shards_[s]->retired_cache;
    b.cache += shards_[s]->cache->stats();
    b.cache_state_bytes = shards_[s]->cache->resumption_state_bytes();
    b.ticket_state_bytes = shards_[s]->server->ticket_state_bytes();
    b.handshake_histogram = analysis::LatencyHistogram(
        config_.histogram_bucket_us, config_.histogram_buckets);
    for (const double v : b.server.handshake_latencies_us)
      b.handshake_histogram.record(v);
    out.push_back(std::move(b));
  }
  return out;
}

bool ShardedServer::conserved() const {
  std::uint64_t accepted = 0, closed = 0;
  for (const auto& shard : shards_) {
    if (!shard->server->stats_conserved()) return false;
    // A retired world was buried with zero open connections (the kill
    // fails every survivor first), so its books must balance exactly.
    const ServerStats& r = shard->retired;
    if (r.connections_accepted !=
        r.graceful_closes + r.idle_closes + r.failed_connections +
            r.refused_connections)
      return false;
    const ServerStats& s = shard->server->stats();
    accepted += r.connections_accepted + s.connections_accepted;
    closed += r.graceful_closes + r.idle_closes + r.failed_connections +
              r.refused_connections;
    closed += s.graceful_closes + s.idle_closes + s.failed_connections +
              s.refused_connections;
  }
  const ServerStats fleet = fleet_stats();
  return fleet.connections_accepted == accepted &&
         fleet.connections_accepted == closed + open_connections();
}

// ---------------------------------------------------------------------

ShardedLoadReport ShardedLoadGenerator::run() {
  const std::size_t num_shards = load_.shards == 0 ? 1 : load_.shards;
  const std::uint64_t seed = load_.base.seed;

  // Lifetime order (see LoadGenerator::run): channels are declared before
  // the tier so the servers' links detach from still-live channels, and
  // per-shard state is only ever touched by that shard's thread during a
  // slice.
  std::vector<std::vector<std::unique_ptr<net::DuplexChannel>>> channels(
      num_shards);

  ShardedServerConfig scfg;
  scfg.shards = num_shards;
  scfg.slice_us = load_.slice_us;
  scfg.server = server_;
  scfg.cache = cache_;
  ShardedServer tier(scfg);

  // Per-shard client-side engines (shared read-only by that shard's
  // clients; one per shard so no object crosses a shard boundary).
  std::vector<std::unique_ptr<crypto::HmacDrbg>> engine_rngs;
  std::vector<std::unique_ptr<engine::ProtocolEngine>> engines;
  for (std::size_t s = 0; s < num_shards; ++s) {
    engine_rngs.push_back(
        std::make_unique<crypto::HmacDrbg>(mix(seed, 0xE17 + s)));
    engines.push_back(std::make_unique<engine::ProtocolEngine>(
        server_.engine_profile, engine_rngs.back().get()));
    engines.back()->load_program("ccmp-in", engine::ccmp_inbound_program());
  }

  // Clients: seed and arrival time are functions of the client index
  // alone — identical for any shard count. Only the queue the client's
  // world lives on follows the shard hash.
  std::vector<std::unique_ptr<SessionClient>> clients;
  std::vector<std::uint32_t> attempts(load_.base.num_clients, 0);
  clients.reserve(load_.base.num_clients);
  crypto::HmacDrbg arrival_rng(mix(seed, 0xA881));
  net::SimTime arrival = 0;
  for (std::size_t i = 0; i < load_.base.num_clients; ++i) {
    const auto key = static_cast<std::uint32_t>(i);
    const std::size_t s = tier.shard_of(key);
    net::EventQueue& queue = tier.queue(s);
    auto client = std::make_unique<SessionClient>(
        queue, client_, key, *engines[s], mix(seed, 0xC11E57 + i));
    client->set_connect([this, &tier, &channels, &attempts, seed, s, key,
                         i](SessionClient&) {
      net::EventQueue& queue = tier.queue(s);
      // Global wire identity: (client, attempt) — never the shard-local
      // connection id — names the channel seed, the server-side DRBG and
      // the on-the-wire SPI, so every byte is shard-count-invariant.
      const std::uint32_t wire_id = make_wire_id(key, attempts[i]++);
      auto channel = std::make_unique<net::DuplexChannel>(
          queue, load_.base.channel, load_.base.channel,
          mix(seed, 0xC4A17 + wire_id));
      SecureSessionServer::AcceptOptions opts;
      opts.wire_id = wire_id;
      opts.rng_seed = mix(mix(seed, 0x5E4), wire_id);
      tier.accept(key, channel->b_to_a(), channel->a_to_b(), opts);
      auto link = std::make_unique<net::ReliableLink>(
          queue, channel->a_to_b(), channel->b_to_a(), client_.link);
      channels[s].push_back(std::move(channel));
      return link;
    });
    queue.schedule_at(arrival, [c = client.get()] { c->start(); });
    arrival += load_.base.poisson_arrivals
                   ? exponential_us(
                         arrival_rng,
                         static_cast<double>(load_.base.mean_interarrival_us))
                   : load_.base.mean_interarrival_us;
    clients.push_back(std::move(client));
  }

  const ShardedServer::RunStats rs = tier.run(load_.base.max_events);

  // ---- aggregate ------------------------------------------------------
  ShardedLoadReport report;
  report.epochs = rs.epochs;
  report.control_applied = rs.control_applied;
  report.peak_open_connections = rs.peak_open_connections;
  report.shards = tier.breakdown();
  report.conserved = tier.conserved();

  LoadReport& fleet = report.fleet;
  fleet.server = tier.fleet_stats();
  for (const ShardBreakdown& b : report.shards) {
    fleet.cache += b.cache;
    fleet.cache_state_bytes += b.cache_state_bytes;
    fleet.ticket_state_bytes += b.ticket_state_bytes;
  }
  {
    const auto total = fleet.cache.hits + fleet.cache.misses;
    fleet.cache_hit_rate =
        total == 0 ? 0.0
                   : static_cast<double>(fleet.cache.hits) /
                         static_cast<double>(total);
  }

  // Fleet digest: identical construction to LoadGenerator — every
  // client's transcript digest in client order, swept through
  // sha256_many and folded.
  std::vector<crypto::ConstBytes> lanes;
  lanes.reserve(clients.size());
  for (const auto& client : clients) {
    for (const SessionRecord& record : client->sessions()) {
      ++fleet.sessions_attempted;
      fleet.connection_attempts += static_cast<std::size_t>(record.attempts);
      if (record.completed) ++fleet.sessions_completed;
      if (record.failed) ++fleet.sessions_failed;
      if (!record.echo_ok) ++fleet.echo_mismatches;
    }
    lanes.push_back(client->transcript_digest());
  }
  crypto::Bytes digest_stream;
  for (const crypto::Bytes& lane_digest : crypto::sha256_many(lanes))
    digest_stream.insert(digest_stream.end(), lane_digest.begin(),
                         lane_digest.end());
  fleet.fleet_digest = crypto::Sha256::hash(digest_stream);

  net::SimTime end = 0;
  for (std::size_t s = 0; s < num_shards; ++s)
    end = std::max(end, tier.queue(s).now());
  fleet.sim_duration_s = static_cast<double>(end) / 1e6;
  const double dur = fleet.sim_duration_s > 0 ? fleet.sim_duration_s : 1;
  fleet.full_handshakes_per_s =
      static_cast<double>(fleet.server.full_handshakes) / dur;
  fleet.resumed_handshakes_per_s =
      static_cast<double>(fleet.server.resumed_handshakes) / dur;
  fleet.sessions_per_s =
      static_cast<double>(fleet.sessions_completed) / dur;
  const double protected_bytes = static_cast<double>(
      fleet.server.bytes_opened + fleet.server.bytes_sealed);
  fleet.record_mbps = protected_bytes * 8 / 1e6 / dur;
  fleet.handshake_p50_ms =
      analysis::percentile(fleet.server.handshake_latencies_us, 0.50) / 1e3;
  fleet.handshake_p99_ms =
      analysis::percentile(fleet.server.handshake_latencies_us, 0.99) / 1e3;
  fleet.full_handshake_p50_ms =
      analysis::percentile(fleet.server.full_handshake_latencies_us, 0.50) /
      1e3;
  fleet.full_handshake_p99_ms =
      analysis::percentile(fleet.server.full_handshake_latencies_us, 0.99) /
      1e3;
  fleet.resumed_handshake_p50_ms =
      analysis::percentile(fleet.server.resumed_handshake_latencies_us, 0.50) /
      1e3;
  fleet.resumed_handshake_p99_ms =
      analysis::percentile(fleet.server.resumed_handshake_latencies_us, 0.99) /
      1e3;
  fleet.crypto_backend = engine::PacketPipeline::crypto_backend();

  // Fleet percentile off the merged per-shard histograms: the exact
  // aggregation the per-shard summaries cannot give (satellite check:
  // within a bucket width of the sorted-sample percentile above).
  {
    std::vector<analysis::LatencyHistogram> hists;
    hists.reserve(report.shards.size());
    for (const ShardBreakdown& b : report.shards)
      hists.push_back(b.handshake_histogram);
    report.handshake_hist_p99_ms =
        analysis::merged_percentile(hists, 0.99) / 1e3;
  }

  platform::ServedLoad served;
  served.full_handshakes_per_s = fleet.full_handshakes_per_s;
  served.resumed_handshakes_per_s = fleet.resumed_handshakes_per_s;
  served.bulk_mbps = fleet.record_mbps;
  served.sessions_per_s = fleet.sessions_per_s;
  served.avg_session_kb =
      fleet.sessions_completed > 0
          ? protected_bytes / 1024.0 /
                static_cast<double>(fleet.sessions_completed)
          : 0;
  fleet.gap =
      platform::serving_gap(platform::WorkloadModel::paper_calibrated(),
                            load_.base.appliance, served,
                            load_.base.battery_kj, load_.base.pk_primitive);
  report.sharded_gap = platform::serving_gap_sharded(
      platform::WorkloadModel::paper_calibrated(), load_.base.appliance,
      served, num_shards, static_cast<double>(load_.slice_us),
      /*merge_instr_per_slice=*/2000.0, load_.base.battery_kj,
      load_.base.pk_primitive);
  return report;
}

}  // namespace mapsec::server
