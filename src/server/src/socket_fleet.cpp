#include "mapsec/server/socket_fleet.hpp"

#include <chrono>
#include <future>
#include <utility>

#include "mapsec/engine/protocol_engine.hpp"
#include "mapsec/server/client.hpp"
#include "mapsec/server/sharded_server.hpp"

namespace mapsec::server {

namespace {

void accumulate_arena(ArenaUsage& total, const ArenaUsage& part) {
  total.allocations += part.allocations;
  total.acquires += part.acquires;
  total.recycles += part.recycles;
  total.peak_in_use += part.peak_in_use;
  total.reserved += part.reserved;
}

ArenaUsage arena_usage(const net::BufferArena& arena, std::size_t reserved) {
  ArenaUsage usage;
  usage.allocations = arena.stats().allocations;
  usage.acquires = arena.stats().acquires;
  usage.recycles = arena.stats().recycles;
  usage.peak_in_use = arena.stats().peak_in_use;
  usage.reserved = reserved;
  return usage;
}

}  // namespace

// ---- SocketServerFleet ----------------------------------------------------

struct SocketServerFleet::Shard {
  // Declaration order is teardown order in reverse: the server (whose
  // connection links reference endpoint channel halves) must die before
  // the endpoints, the endpoints before the arena and reactor they
  // borrow from.
  std::size_t index = 0;
  net::MonotonicClock clock;
  net::Reactor reactor;
  net::BufferArena arena;
  std::unique_ptr<crypto::HmacDrbg> rng;
  std::unique_ptr<BoundedSessionCache> cache;
  std::unique_ptr<net::SocketListener> listener;
  std::vector<std::unique_ptr<net::SocketEndpoint>> endpoints;
  net::SocketStats closed_stats;  // accumulated from swept endpoints
  std::unique_ptr<SecureSessionServer> server;
  std::thread thread;

  explicit Shard(net::SimTime origin_us)
      : clock(origin_us), reactor(clock) {}

  void sweep() {
    // A closed endpoint's link has already failed or detached (bearer
    // errors reach the link before the endpoint reports closed), so the
    // endpoint can be reclaimed without dangling the connection.
    for (auto it = endpoints.begin(); it != endpoints.end();) {
      if (!(*it)->open()) {
        closed_stats += (*it)->stats();
        it = endpoints.erase(it);
      } else {
        ++it;
      }
    }
  }
};

SocketServerFleet::SocketServerFleet(
    const SocketFleetConfig& config, const ServerConfig& server_template,
    const BoundedSessionCache::Config& cache_config)
    : config_(config) {
  if (config_.shards == 0) config_.shards = 1;

  // Partition the cache budget exactly like the sharded sim tier.
  BoundedSessionCache::Config part = cache_config;
  if (part.capacity > 0)
    part.capacity = (part.capacity + config_.shards - 1) / config_.shards;

  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>(config_.clock_origin_us);
    shard->index = s;
    shard->arena.reserve(config_.reserve_slabs_per_shard);
    shard->rng = std::make_unique<crypto::HmacDrbg>(
        fleet_server_seed(config_.seed) + s);
    shard->cache =
        std::make_unique<BoundedSessionCache>(shard->reactor.queue(), part);
    ServerConfig cfg = server_template;
    cfg.handshake.rng = shard->rng.get();
    shard->server = std::make_unique<SecureSessionServer>(
        shard->reactor.queue(), std::move(cfg), shard->cache.get());
    shard->listener = std::make_unique<net::SocketListener>(
        shard->reactor, shard->arena, config_.socket, /*port=*/0);
    Shard* sh = shard.get();
    shard->listener->set_on_accept(
        [sh](std::unique_ptr<net::SocketEndpoint> ep) {
          net::SocketEndpoint* raw = ep.get();
          sh->server->accept(raw->tx(), raw->rx());
          sh->endpoints.push_back(std::move(ep));
        });
    shards_.push_back(std::move(shard));
  }
}

SocketServerFleet::~SocketServerFleet() { stop(); }

bool SocketServerFleet::ok() const {
  for (const auto& shard : shards_)
    if (!shard->listener->ok()) return false;
  return true;
}

std::vector<std::uint16_t> SocketServerFleet::ports() const {
  std::vector<std::uint16_t> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->listener->port());
  return out;
}

void SocketServerFleet::start() {
  if (started_) return;
  started_ = true;
  // The worlds were fully built on this thread before the launches, so
  // the thread start is the happens-before edge handing each world over.
  for (auto& shard : shards_) {
    Shard* sh = shard.get();
    sh->thread = std::thread([this, sh] { run_shard(*sh); });
  }
}

void SocketServerFleet::run_shard(Shard& shard) {
  while (!stop_.load(std::memory_order_acquire)) {
    shard.reactor.poll(5'000);
    shard.sweep();
  }
  // Drain grace: a client that already finished (and closed its socket)
  // may still have final frames — link-layer acks the server never
  // needed — sitting in this side's kernel receive buffer. Keep polling
  // until every accepted connection resolves to EOF/close or the grace
  // expires, so the cross-side conservation books (client bytes_sent ==
  // server bytes_received) account for the whole stream instead of
  // racing the last readv. Connections a peer holds open just run out
  // the bounded grace.
  const auto grace_end =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (!shard.endpoints.empty() &&
         std::chrono::steady_clock::now() < grace_end) {
    shard.reactor.poll(5'000);
    shard.sweep();
  }
}

SocketServerFleet::Report SocketServerFleet::stop() {
  if (stopped_) return final_;
  stopped_ = true;
  if (started_) {
    stop_.store(true, std::memory_order_release);
    for (auto& shard : shards_) shard->reactor.post([] {});
    for (auto& shard : shards_)
      if (shard->thread.joinable()) shard->thread.join();
  }

  Report report;
  for (auto& shard : shards_) {
    ShardReport sr;
    sr.server = shard->server->stats();
    sr.cache = shard->cache->stats();
    sr.arena = arena_usage(shard->arena, config_.reserve_slabs_per_shard);
    sr.sockets = shard->closed_stats;
    for (const auto& ep : shard->endpoints) sr.sockets += ep->stats();
    sr.accepted = shard->listener->accepted();
    sr.conserved = shard->server->stats_conserved();

    accumulate_stats(report.server, sr.server);
    report.sockets += sr.sockets;
    accumulate_arena(report.arena, sr.arena);
    report.accepted += sr.accepted;
    report.conserved = report.conserved && sr.conserved;
    report.zero_steady_state_alloc =
        report.zero_steady_state_alloc &&
        sr.arena.allocations == sr.arena.reserved;
    report.cache_state_bytes += shard->cache->resumption_state_bytes();
    report.ticket_state_bytes += shard->server->ticket_state_bytes();
    report.shards.push_back(std::move(sr));
  }
  final_ = report;
  return final_;
}

void SocketServerFleet::pause_accepts(std::size_t shard, bool paused) {
  Shard& sh = *shards_[shard];
  if (!started_ || stopped_) {
    sh.listener->set_paused(paused);
    return;
  }
  std::promise<void> done;
  sh.reactor.post([&sh, paused, &done] {
    sh.listener->set_paused(paused);
    done.set_value();
  });
  done.get_future().wait();
}

std::size_t SocketServerFleet::reset_open_sockets(std::size_t shard) {
  Shard& sh = *shards_[shard];
  std::promise<std::size_t> count;
  auto reset_all = [&sh, &count] {
    std::size_t n = 0;
    for (auto& ep : sh.endpoints) {
      if (ep->open()) {
        ep->reset();
        ++n;
      }
    }
    count.set_value(n);
  };
  if (!started_ || stopped_) {
    reset_all();
  } else {
    sh.reactor.post(reset_all);
  }
  return count.get_future().get();
}

std::uint64_t SocketServerFleet::accepted_on(std::size_t shard) {
  Shard& sh = *shards_[shard];
  if (!started_ || stopped_) return sh.listener->accepted();
  std::promise<std::uint64_t> count;
  sh.reactor.post([&sh, &count] { count.set_value(sh.listener->accepted()); });
  return count.get_future().get();
}

// ---- SocketClientFleet ----------------------------------------------------

SocketClientFleet::SocketClientFleet(const SocketLoadConfig& load,
                                     const ClientConfig& client_template,
                                     const ServerConfig& server_template,
                                     std::vector<std::uint16_t> ports)
    : load_(load),
      client_(client_template),
      server_(server_template),
      ports_(std::move(ports)) {}

SocketClientReport SocketClientFleet::run() {
  // Declaration order = reverse teardown order: clients (whose links
  // reference endpoint halves) must unwind before the endpoints, the
  // endpoints before the arena and reactor.
  net::MonotonicClock clock(load_.clock_origin_us);
  net::Reactor reactor(clock);
  net::BufferArena arena;
  arena.reserve(load_.reserve_slabs);

  crypto::HmacDrbg engine_rng(fleet_engine_seed(load_.seed));
  engine::ProtocolEngine engine(server_.engine_profile, &engine_rng);
  engine.load_program("ccmp-in", engine::ccmp_inbound_program());

  const std::size_t n = load_.num_clients;
  std::vector<std::unique_ptr<net::SocketEndpoint>> slots(n);
  // Replaced endpoints park here until the clients (and their possibly
  // still-attached old links) are gone.
  std::vector<std::unique_ptr<net::SocketEndpoint>> graveyard;
  std::vector<std::unique_ptr<SessionClient>> clients;
  clients.reserve(n);

  SocketClientReport report;

  // Arrival schedule: the sim generator draws one inter-arrival delta
  // per client in global id order; replay the same stream and keep our
  // block, so a multi-process run reproduces the sim fleet's arrivals.
  crypto::HmacDrbg arrival_rng(fleet_arrival_seed(load_.seed));
  std::vector<net::SimTime> arrivals(n);
  net::SimTime arrival = 0;
  for (std::size_t g = 0; g < load_.first_client_id + n; ++g) {
    if (g >= load_.first_client_id) arrivals[g - load_.first_client_id] = arrival;
    arrival += load_.poisson_arrivals
                   ? load_exponential_us(
                         arrival_rng,
                         static_cast<double>(load_.mean_interarrival_us))
                   : load_.mean_interarrival_us;
  }

  std::size_t finished = 0;
  const net::SimTime start_us = reactor.queue().now();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t gid = load_.first_client_id + i;
    auto client = std::make_unique<SessionClient>(
        reactor.queue(), client_, static_cast<std::uint32_t>(gid), engine,
        fleet_client_seed(load_.seed, gid));
    client->set_on_finished([&finished](SessionClient&) { ++finished; });
    client->set_connect([this, &reactor, &arena, &slots, &graveyard, &report,
                         i, gid](SessionClient&) {
      if (slots[i]) {
        slots[i]->close_quiet();
        graveyard.push_back(std::move(slots[i]));
      }
      const std::size_t shard =
          shard_for(static_cast<std::uint32_t>(gid), ports_.size());
      auto ep = net::connect_endpoint(reactor, arena, load_.socket,
                                      ports_[shard]);
      ep->set_on_error(
          [&report](const std::string&) { ++report.bearer_errors; });
      auto link = std::make_unique<net::ReliableLink>(
          reactor.queue(), ep->tx(), ep->rx(), client_.link);
      slots[i] = std::move(ep);
      return link;
    });
    reactor.queue().schedule_at(net::sat_add_time(start_us, arrivals[i]),
                                [c = client.get()] { c->start(); });
    clients.push_back(std::move(client));
  }

  report.all_finished = reactor.run_until(
      [&finished, n] { return finished == n; }, load_.wall_budget_us);
  report.wall_s =
      static_cast<double>(reactor.queue().now() - start_us) / 1e6;

  // Snapshot while everything is still alive.
  std::vector<crypto::ConstBytes> lanes;
  lanes.reserve(clients.size());
  for (const auto& client : clients) {
    for (const SessionRecord& record : client->sessions()) {
      ++report.sessions_attempted;
      report.connection_attempts += static_cast<std::size_t>(record.attempts);
      if (record.completed) ++report.sessions_completed;
      if (record.failed) ++report.sessions_failed;
      if (!record.echo_ok) ++report.echo_mismatches;
    }
    report.client_digests.push_back(client->transcript_digest());
    lanes.push_back(client->transcript_digest());
  }
  report.fleet_digest = fold_fleet_digest(lanes);
  for (const auto& ep : graveyard) report.sockets += ep->stats();
  for (const auto& ep : slots)
    if (ep) report.sockets += ep->stats();
  report.arena = arena_usage(arena, load_.reserve_slabs);
  return report;
}

}  // namespace mapsec::server
