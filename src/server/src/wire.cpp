#include "mapsec/server/wire.hpp"

#include "mapsec/protocol/prf.hpp"

namespace mapsec::server {

crypto::Bytes make_msg(MsgKind kind, crypto::ConstBytes body) {
  crypto::Bytes msg;
  msg.reserve(1 + body.size());
  msg.push_back(static_cast<std::uint8_t>(kind));
  msg.insert(msg.end(), body.begin(), body.end());
  return msg;
}

BulkKeys derive_bulk_keys(crypto::ConstBytes master_secret,
                          crypto::ConstBytes session_id) {
  const crypto::Bytes block =
      protocol::tls_prf(master_secret, "mapsec bulk keys", session_id, 36);
  BulkKeys keys;
  keys.enc_key.assign(block.begin(), block.begin() + 16);
  keys.mac_key.assign(block.begin() + 16, block.begin() + 36);
  return keys;
}

engine::EngineSa make_bulk_sa(std::uint32_t spi, const BulkKeys& keys) {
  engine::EngineSa sa;
  sa.spi = spi;
  sa.cipher = protocol::BulkCipher::kAes128;
  sa.enc_key = keys.enc_key;
  sa.mac_key = keys.mac_key;
  return sa;
}

crypto::Bytes bulk_header(std::uint32_t spi, std::uint32_t seq) {
  crypto::Bytes header(8);
  crypto::store_be32(header.data(), spi);
  crypto::store_be32(header.data() + 4, seq);
  return header;
}

}  // namespace mapsec::server
