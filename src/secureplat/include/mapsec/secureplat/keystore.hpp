// Sealed key storage.
//
// Section 2's "secure storage" concern: "the security of sensitive
// information such as passwords, PINs, keys, certificates ... that may
// reside in secondary storage (e.g. flash memory)". The KeyStore models a
// device whose only root secret is an on-die master key (Figure 6's
// "HW-based key storage"): every secret written to flash is sealed —
// AES-128-CBC encrypted and HMAC-SHA256 authenticated under keys derived
// from the master key — and bound to a monotonic counter so that
// replaying an old flash image (rollback) is detected.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "mapsec/crypto/bytes.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::secureplat {

/// A sealed blob as it would sit in external flash.
struct SealedBlob {
  std::string name;
  std::uint64_t counter = 0;  // anti-rollback binding
  crypto::Bytes iv;
  crypto::Bytes ciphertext;
  crypto::Bytes tag;  // HMAC over name | counter | iv | ciphertext
};

/// Why an unseal failed.
enum class UnsealStatus { kOk, kBadTag, kRollback, kUnknownName };

/// The device-side key store. The master key never leaves the object
/// (modelling an on-die fuse/OTP key); the monotonic counter models a
/// tamper-resistant counter block.
class KeyStore {
 public:
  KeyStore(crypto::Bytes master_key, crypto::Rng* rng);

  /// Seal `secret` under `name`. Advances the monotonic counter and
  /// remembers it as the minimum acceptable counter for this name.
  SealedBlob seal(const std::string& name, crypto::ConstBytes secret);

  /// Unseal a blob. Rejects forged/corrupted blobs (kBadTag) and blobs
  /// older than the freshest seal of that name (kRollback).
  UnsealStatus unseal(const SealedBlob& blob, crypto::Bytes& secret_out) const;

  std::uint64_t monotonic_counter() const { return counter_; }

 private:
  crypto::Bytes enc_key_;   // derived: HMAC(master, "enc")
  crypto::Bytes mac_key_;   // derived: HMAC(master, "mac")
  crypto::Rng* rng_;
  std::uint64_t counter_ = 0;
  std::map<std::string, std::uint64_t> freshest_;

  crypto::Bytes mac_input(const SealedBlob& blob) const;
};

}  // namespace mapsec::secureplat
