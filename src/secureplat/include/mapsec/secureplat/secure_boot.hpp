// Secure boot chain.
//
// Section 4.1: "HW components such as secure RAM and secure ROM in
// conjunction with HW-based key storage and appropriate firmware can
// enable an optimized 'secure execution' environment where only trusted
// code can execute." The anchor of that guarantee is a boot chain in
// which each stage verifies the next before transferring control:
//
//   Boot ROM (immutable, holds the root public key)
//     -> second-stage loader (signed)
//         -> kernel (signed)
//             -> applications (signed)
//
// Every image carries a signed manifest (SHA-256 digest, version,
// rollback counter). Verification failures and rollback attempts halt the
// chain; the BootReport records exactly where and why — the observable a
// platform integrator needs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mapsec/crypto/rsa.hpp"

namespace mapsec::secureplat {

/// A bootable image with its signed manifest.
struct BootImage {
  std::string name;
  crypto::Bytes payload;        // the "code"
  std::uint32_t version = 0;    // anti-rollback version
  crypto::Bytes digest;         // SHA-256 of payload (in the manifest)
  crypto::Bytes signature;      // RSA-SHA256 over manifest fields

  /// The signed manifest serialization.
  crypto::Bytes manifest_tbs() const;
};

/// Sign an image (fills digest + signature).
BootImage make_boot_image(const std::string& name, crypto::ConstBytes payload,
                          std::uint32_t version,
                          const crypto::RsaPrivateKey& signer);

enum class BootStageStatus {
  kOk,
  kBadSignature,
  kDigestMismatch,
  kRollback,
  kMissing,
};

std::string boot_stage_status_name(BootStageStatus s);

struct BootStageReport {
  std::string image_name;
  BootStageStatus status = BootStageStatus::kMissing;
  std::uint32_t version = 0;
};

struct BootReport {
  bool booted = false;
  std::vector<BootStageReport> stages;
  /// Index of the failing stage, or stages.size() on success.
  std::size_t failed_stage = 0;
};

/// The immutable boot ROM: root of trust. Holds the root verification key
/// and the minimum-version (anti-rollback) registers, which monotonically
/// ratchet on successful boots.
class BootRom {
 public:
  explicit BootRom(crypto::RsaPublicKey root_key);

  /// Verify and "execute" a chain of images in order (loader, kernel,
  /// apps...). All images must be signed by the root key. On success the
  /// rollback registers advance to the booted versions.
  BootReport boot(const std::vector<BootImage>& chain);

  /// Current minimum acceptable version for a stage index.
  std::uint32_t min_version(std::size_t stage) const;

 private:
  BootStageStatus verify_image(const BootImage& image, std::size_t stage) const;

  crypto::RsaPublicKey root_key_;
  std::vector<std::uint32_t> min_versions_;
};

}  // namespace mapsec::secureplat
