// Signed application installation and a permission sandbox.
//
// Section 3.4: "the likelihood of software attacks tends to be high in
// systems such as mobile terminals, where application software is
// frequently downloaded from the Internet. The downloaded software may
// originate from a non-trusted source..." The countermeasures it lists —
// verifying operational correctness of code before and during run time,
// and protecting secrets from trojan applications — map here to:
//
//   * install-time signature verification against a publisher registry,
//   * per-publisher permission ceilings (an unknown publisher cannot get
//     the secure-storage permission no matter what its manifest asks),
//   * anti-downgrade version enforcement per application,
//   * launch-time re-hashing of the stored image (run-time integrity),
//   * a run-time permission check API for the OS services.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mapsec/crypto/rsa.hpp"

namespace mapsec::secureplat {

/// Permissions an application manifest may request.
enum class Permission : std::uint8_t {
  kNetwork = 1 << 0,
  kUserData = 1 << 1,
  kCrypto = 1 << 2,
  kSecureStorage = 1 << 3,  // access to sealed keys: most sensitive
};

using PermissionMask = std::uint8_t;

constexpr PermissionMask permission_bit(Permission p) {
  return static_cast<PermissionMask>(p);
}

/// A signed application package.
struct SignedPackage {
  std::string name;
  std::string publisher;
  std::uint32_t version = 0;
  PermissionMask requested = 0;
  crypto::Bytes code;
  crypto::Bytes signature;  // publisher RSA-SHA256 over tbs()

  crypto::Bytes tbs() const;
};

/// Build and sign a package.
SignedPackage make_package(const std::string& name,
                           const std::string& publisher,
                           std::uint32_t version, PermissionMask requested,
                           crypto::ConstBytes code,
                           const crypto::RsaPrivateKey& publisher_key);

enum class InstallStatus {
  kOk,
  kUnknownPublisher,
  kBadSignature,
  kPermissionExceedsTrust,
  kDowngrade,
};

std::string install_status_name(InstallStatus s);

/// The device's application manager.
class AppInstaller {
 public:
  /// Register a publisher with the maximum permissions its apps may hold.
  void trust_publisher(const std::string& name,
                       const crypto::RsaPublicKey& key,
                       PermissionMask ceiling);

  InstallStatus install(const SignedPackage& package);

  /// Launch = run-time integrity check: the stored image must still hash
  /// to the installed digest (catches post-install tampering of flash).
  bool launch(const std::string& name) const;

  /// OS-service permission check for a running app.
  bool has_permission(const std::string& name, Permission p) const;

  /// Simulate a flash-level attack on the stored image.
  void corrupt_installed_image(const std::string& name);

  std::size_t installed_count() const { return installed_.size(); }
  std::optional<std::uint32_t> installed_version(
      const std::string& name) const;

 private:
  struct Publisher {
    crypto::RsaPublicKey key;
    PermissionMask ceiling = 0;
  };
  struct Installed {
    std::uint32_t version = 0;
    PermissionMask granted = 0;
    crypto::Bytes image;
    crypto::Bytes digest;  // SHA-256 at install time
  };

  std::map<std::string, Publisher> publishers_;
  std::map<std::string, Installed> installed_;
};

}  // namespace mapsec::secureplat
