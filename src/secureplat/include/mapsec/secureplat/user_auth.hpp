// End-user authentication (Section 4.1's "weak link").
//
// "Most of today's devices rely on the authentication of the client
// device. The lack of end-user authentication is thus a weak link.
// Biometric technologies such as finger print recognition and voice
// recognition are emerging as important elements..."
//
// Two authenticators:
//   PinAuthenticator  — salted-hash PIN verification with a retry counter
//                       and lockout (the smart-card PIN discipline).
//   BiometricMatcher  — a feature-vector matcher with a decision
//                       threshold; genuine and impostor score
//                       distributions give the FAR/FRR trade-off curve
//                       that bench_secureplat sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "mapsec/crypto/bytes.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::secureplat {

enum class AuthResult { kGranted, kDenied, kLockedOut };

/// Salted-hash PIN verification with hardware-style retry limiting.
class PinAuthenticator {
 public:
  /// `max_attempts` consecutive failures lock the authenticator until
  /// reset_lockout() (e.g. a PUK flow).
  PinAuthenticator(crypto::ConstBytes pin, crypto::Rng* rng,
                   int max_attempts = 3);

  AuthResult verify(crypto::ConstBytes pin);

  int remaining_attempts() const { return remaining_; }
  bool locked_out() const { return remaining_ <= 0; }

  /// Administrative unlock + PIN change.
  void reset(crypto::ConstBytes new_pin);

 private:
  crypto::Bytes salt_;
  crypto::Bytes digest_;  // H(salt || pin)
  int max_attempts_;
  int remaining_;

  static crypto::Bytes hash_pin(crypto::ConstBytes salt,
                                crypto::ConstBytes pin);
};

/// A biometric template: a fixed-length feature vector (e.g. fingerprint
/// minutiae map projected to d dimensions).
using BiometricTemplate = std::vector<double>;

/// Threshold matcher over Euclidean distance, plus the sampling model
/// used to estimate FAR/FRR: genuine presentations are the enrolled
/// template plus N(0, genuine_noise) per dimension; impostors are fresh
/// uniform templates.
class BiometricMatcher {
 public:
  BiometricMatcher(BiometricTemplate enrolled, double threshold);

  bool match(const BiometricTemplate& probe) const;
  double distance(const BiometricTemplate& probe) const;
  double threshold() const { return threshold_; }
  void set_threshold(double t) { threshold_ = t; }

  /// Draw a genuine presentation (enrolled + per-dimension noise).
  BiometricTemplate sample_genuine(crypto::Rng& rng,
                                   double genuine_noise) const;

  /// Draw an impostor presentation (uniform in [0,1]^d).
  BiometricTemplate sample_impostor(crypto::Rng& rng) const;

  /// Enrolment helper: random template in [0,1]^d.
  static BiometricTemplate enroll(crypto::Rng& rng, std::size_t dims);

  /// Monte-Carlo FAR/FRR at the current threshold.
  struct ErrorRates {
    double far = 0;  // impostors accepted
    double frr = 0;  // genuines rejected
  };
  ErrorRates estimate_rates(crypto::Rng& rng, std::size_t trials,
                            double genuine_noise) const;

 private:
  BiometricTemplate enrolled_;
  double threshold_;
};

}  // namespace mapsec::secureplat
