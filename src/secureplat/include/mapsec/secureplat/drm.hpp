// Content protection / digital rights management.
//
// Figure 1 lists "content security" among the core concerns: "ensuring
// that any content that is downloaded or stored in the appliance is used
// in accordance with the terms set forth by the content provider (e.g.
// read only, no copying)". Section 3.4's software-attack measures include
// (iii) "enforcing that application content can remain secret (digital
// rights management)".
//
// The model: a provider packages content under a random AES content key
// and issues per-device licenses — the content key RSA-wrapped to the
// device, the usage rights signed by the provider. The device-side
// DrmAgent enforces the rights: play counting, expiry, and an export/copy
// bit. Content keys exist in the clear only inside the agent.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/crypto/rsa.hpp"

namespace mapsec::secureplat {

/// Usage rights granted by a license.
struct UsageRights {
  std::uint32_t max_plays = 0;  // 0 = unlimited
  std::uint64_t not_after = 0;  // 0 = no expiry (seconds since epoch)
  bool allow_export = false;    // may the raw content leave the device?
};

/// A packaged piece of content (ciphertext; key held by the provider).
struct PackagedContent {
  std::string content_id;
  crypto::Bytes iv;
  crypto::Bytes ciphertext;  // AES-128-CBC under the content key
};

/// A per-device license.
struct ContentLicense {
  std::string content_id;
  std::string device_id;
  UsageRights rights;
  crypto::Bytes wrapped_key;  // content key, RSA-encrypted to the device
  crypto::Bytes signature;    // provider RSA-SHA256 over the fields above

  crypto::Bytes tbs() const;
};

/// The licensor: packages content and issues licenses.
class ContentProvider {
 public:
  ContentProvider(crypto::RsaKeyPair signing_key, crypto::Rng* rng);

  /// Encrypt `content` under a fresh content key, remembering the key for
  /// later license issuance.
  PackagedContent package(const std::string& content_id,
                          crypto::ConstBytes content);

  /// Issue a license for `device` (identified by its public key).
  ContentLicense issue_license(const std::string& content_id,
                               const std::string& device_id,
                               const crypto::RsaPublicKey& device_key,
                               const UsageRights& rights);

  crypto::RsaPublicKey verification_key() const { return key_.pub; }

 private:
  crypto::RsaKeyPair key_;
  crypto::Rng* rng_;
  std::map<std::string, crypto::Bytes> content_keys_;
};

enum class DrmStatus {
  kOk,
  kNoLicense,
  kBadLicenseSignature,
  kWrongDevice,
  kExpired,
  kPlayCountExhausted,
  kExportForbidden,
  kDecryptFailed,
};

std::string drm_status_name(DrmStatus s);

/// The device-side enforcement point.
class DrmAgent {
 public:
  DrmAgent(std::string device_id, crypto::RsaKeyPair device_key,
           crypto::RsaPublicKey provider_key);

  /// Validate and store a license. Rejects bad signatures and licenses
  /// issued to another device.
  DrmStatus install_license(const ContentLicense& license);

  /// Decrypt for rendering, enforcing expiry and play counts. `now` is
  /// the device clock. On success the play counter advances.
  DrmStatus play(const PackagedContent& content, std::uint64_t now,
                 crypto::Bytes& plaintext_out);

  /// Raw export (copy to another device/medium): only with the export
  /// right; never advances play counts.
  DrmStatus export_content(const PackagedContent& content, std::uint64_t now,
                           crypto::Bytes& plaintext_out);

  /// Plays consumed so far for a content id.
  std::uint32_t plays_used(const std::string& content_id) const;

 private:
  struct InstalledLicense {
    ContentLicense license;
    std::uint32_t plays_used = 0;
  };

  DrmStatus check_and_unwrap(const PackagedContent& content,
                             std::uint64_t now, bool for_export,
                             const InstalledLicense** entry_out,
                             crypto::Bytes& key_out) const;

  std::string device_id_;
  crypto::RsaKeyPair device_key_;
  crypto::RsaPublicKey provider_key_;
  std::map<std::string, InstalledLicense> licenses_;
};

}  // namespace mapsec::secureplat
