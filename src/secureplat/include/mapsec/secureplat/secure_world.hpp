// Secure-execution-environment model (trusted / normal worlds).
//
// Section 4.1: "a secure execution mode can be used for critical security
// operations such as key storage/management and run-time security". This
// models the partitioned-SoC pattern (SecurCore/SmartMIPS-era secure
// modes, later formalised as TrustZone): memory regions tagged secure or
// normal, a world bit, an access-control matrix enforced on every memory
// access, and a monitor-call interface through which the normal world
// requests cryptographic services without ever seeing key material.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mapsec/crypto/bytes.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::secureplat {

enum class World { kNormal, kSecure };

/// A recorded access violation (the SoC's bus-fault log).
struct AccessFault {
  World accessor = World::kNormal;
  std::string region;
  bool write = false;
};

/// Memory with secure/normal region tagging and world-sensitive access
/// enforcement.
class PartitionedMemory {
 public:
  /// Define a region. Secure regions are inaccessible to the normal
  /// world; normal regions are accessible to both.
  void add_region(const std::string& name, std::size_t size, bool secure);

  /// Read/write from the given world. Violations return nullopt/false and
  /// are recorded in the fault log; they never return secret bytes.
  std::optional<crypto::Bytes> read(World world, const std::string& region,
                                    std::size_t offset, std::size_t len);
  bool write(World world, const std::string& region, std::size_t offset,
             crypto::ConstBytes data);

  const std::vector<AccessFault>& faults() const { return faults_; }

 private:
  struct Region {
    crypto::Bytes data;
    bool secure = false;
  };
  bool allowed(World world, const Region& r) const {
    return world == World::kSecure || !r.secure;
  }

  std::map<std::string, Region> regions_;
  std::vector<AccessFault> faults_;
};

/// Monitor-call services the secure world exposes.
enum class MonitorCall {
  kGenerateKey,   // create a named symmetric key inside secure RAM
  kMac,           // HMAC-SHA256 with a named key
  kEncrypt,       // AES-128-CBC encrypt with a named key
  kDecrypt,
  kGetKey,        // always refused: keys never cross the boundary
};

struct MonitorResult {
  bool ok = false;
  crypto::Bytes data;
  std::string error;
};

/// The trusted-execution environment: secure-world code plus the monitor
/// interface. World switches are counted (they are the performance cost
/// bench_secureplat measures against the paper's Section 4.1 layering).
class SecureWorld {
 public:
  SecureWorld(PartitionedMemory* memory, crypto::Rng* rng);

  /// Invoke a monitor call from the normal world. Performs the world
  /// switch, runs the service in the secure world, switches back.
  MonitorResult call(MonitorCall service, const std::string& key_name,
                     crypto::ConstBytes payload = {});

  std::uint64_t world_switches() const { return world_switches_; }

  /// Simulated cycle cost per world switch (save/restore of banked
  /// state); used by the platform benches.
  static constexpr double kWorldSwitchCycles = 200.0;

 private:
  PartitionedMemory* memory_;
  crypto::Rng* rng_;
  std::map<std::string, crypto::Bytes> keys_;  // lives in "secure RAM"
  std::uint64_t world_switches_ = 0;
};

}  // namespace mapsec::secureplat
