#include "mapsec/secureplat/user_auth.hpp"

#include <cmath>
#include <stdexcept>

#include "mapsec/crypto/sha256.hpp"

namespace mapsec::secureplat {

crypto::Bytes PinAuthenticator::hash_pin(crypto::ConstBytes salt,
                                         crypto::ConstBytes pin) {
  return crypto::Sha256::hash(crypto::cat(salt, pin));
}

PinAuthenticator::PinAuthenticator(crypto::ConstBytes pin, crypto::Rng* rng,
                                   int max_attempts)
    : max_attempts_(max_attempts), remaining_(max_attempts) {
  if (rng == nullptr) throw std::invalid_argument("PinAuthenticator: rng");
  if (max_attempts < 1)
    throw std::invalid_argument("PinAuthenticator: attempts >= 1");
  salt_ = rng->bytes(16);
  digest_ = hash_pin(salt_, pin);
}

AuthResult PinAuthenticator::verify(crypto::ConstBytes pin) {
  if (locked_out()) return AuthResult::kLockedOut;
  // Decrement before comparing: a glitch that aborts mid-verify must not
  // grant a free retry (the smart-card ordering rule).
  --remaining_;
  if (crypto::ct_equal(hash_pin(salt_, pin), digest_)) {
    remaining_ = max_attempts_;
    return AuthResult::kGranted;
  }
  return locked_out() ? AuthResult::kLockedOut : AuthResult::kDenied;
}

void PinAuthenticator::reset(crypto::ConstBytes new_pin) {
  digest_ = hash_pin(salt_, new_pin);
  remaining_ = max_attempts_;
}

BiometricMatcher::BiometricMatcher(BiometricTemplate enrolled,
                                   double threshold)
    : enrolled_(std::move(enrolled)), threshold_(threshold) {
  if (enrolled_.empty())
    throw std::invalid_argument("BiometricMatcher: empty template");
}

double BiometricMatcher::distance(const BiometricTemplate& probe) const {
  if (probe.size() != enrolled_.size())
    throw std::invalid_argument("BiometricMatcher: dimension mismatch");
  double sum = 0;
  for (std::size_t i = 0; i < probe.size(); ++i) {
    const double d = probe[i] - enrolled_[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

bool BiometricMatcher::match(const BiometricTemplate& probe) const {
  return distance(probe) <= threshold_;
}

namespace {
double uniform01(crypto::Rng& rng) {
  return static_cast<double>(rng.next_u64() >> 11) / 9007199254740992.0;
}
}  // namespace

BiometricTemplate BiometricMatcher::sample_genuine(crypto::Rng& rng,
                                                   double genuine_noise) const {
  BiometricTemplate out = enrolled_;
  for (auto& v : out) {
    // Sum of 12 uniforms - 6: a cheap approximate standard normal.
    double g = -6.0;
    for (int k = 0; k < 12; ++k) g += uniform01(rng);
    v += g * genuine_noise;
  }
  return out;
}

BiometricTemplate BiometricMatcher::sample_impostor(crypto::Rng& rng) const {
  BiometricTemplate out(enrolled_.size());
  for (auto& v : out) v = uniform01(rng);
  return out;
}

BiometricTemplate BiometricMatcher::enroll(crypto::Rng& rng,
                                           std::size_t dims) {
  BiometricTemplate out(dims);
  for (auto& v : out) v = uniform01(rng);
  return out;
}

BiometricMatcher::ErrorRates BiometricMatcher::estimate_rates(
    crypto::Rng& rng, std::size_t trials, double genuine_noise) const {
  std::size_t false_accepts = 0, false_rejects = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    if (match(sample_impostor(rng))) ++false_accepts;
    if (!match(sample_genuine(rng, genuine_noise))) ++false_rejects;
  }
  return {static_cast<double>(false_accepts) / static_cast<double>(trials),
          static_cast<double>(false_rejects) / static_cast<double>(trials)};
}

}  // namespace mapsec::secureplat
