#include "mapsec/secureplat/app_installer.hpp"

#include "mapsec/crypto/sha256.hpp"

namespace mapsec::secureplat {

crypto::Bytes SignedPackage::tbs() const {
  crypto::Bytes out = crypto::to_bytes(name);
  out.push_back(0);
  out.insert(out.end(), publisher.begin(), publisher.end());
  out.push_back(0);
  out.push_back(static_cast<std::uint8_t>(version >> 24));
  out.push_back(static_cast<std::uint8_t>(version >> 16));
  out.push_back(static_cast<std::uint8_t>(version >> 8));
  out.push_back(static_cast<std::uint8_t>(version));
  out.push_back(requested);
  const crypto::Bytes digest = crypto::Sha256::hash(code);
  out.insert(out.end(), digest.begin(), digest.end());
  return out;
}

SignedPackage make_package(const std::string& name,
                           const std::string& publisher,
                           std::uint32_t version, PermissionMask requested,
                           crypto::ConstBytes code,
                           const crypto::RsaPrivateKey& publisher_key) {
  SignedPackage pkg;
  pkg.name = name;
  pkg.publisher = publisher;
  pkg.version = version;
  pkg.requested = requested;
  pkg.code.assign(code.begin(), code.end());
  pkg.signature = crypto::rsa_sign_sha256(publisher_key, pkg.tbs());
  return pkg;
}

std::string install_status_name(InstallStatus s) {
  switch (s) {
    case InstallStatus::kOk: return "ok";
    case InstallStatus::kUnknownPublisher: return "unknown-publisher";
    case InstallStatus::kBadSignature: return "bad-signature";
    case InstallStatus::kPermissionExceedsTrust:
      return "permission-exceeds-trust";
    case InstallStatus::kDowngrade: return "downgrade";
  }
  return "?";
}

void AppInstaller::trust_publisher(const std::string& name,
                                   const crypto::RsaPublicKey& key,
                                   PermissionMask ceiling) {
  publishers_[name] = {key, ceiling};
}

InstallStatus AppInstaller::install(const SignedPackage& package) {
  const auto pub = publishers_.find(package.publisher);
  if (pub == publishers_.end()) return InstallStatus::kUnknownPublisher;
  if (!crypto::rsa_verify_sha256(pub->second.key, package.tbs(),
                                 package.signature))
    return InstallStatus::kBadSignature;
  if ((package.requested & ~pub->second.ceiling) != 0)
    return InstallStatus::kPermissionExceedsTrust;

  const auto existing = installed_.find(package.name);
  if (existing != installed_.end() &&
      package.version <= existing->second.version)
    return InstallStatus::kDowngrade;

  installed_[package.name] = {package.version, package.requested,
                              package.code,
                              crypto::Sha256::hash(package.code)};
  return InstallStatus::kOk;
}

bool AppInstaller::launch(const std::string& name) const {
  const auto it = installed_.find(name);
  if (it == installed_.end()) return false;
  // Run-time integrity: re-hash the stored image.
  return crypto::ct_equal(crypto::Sha256::hash(it->second.image),
                          it->second.digest);
}

bool AppInstaller::has_permission(const std::string& name,
                                  Permission p) const {
  const auto it = installed_.find(name);
  return it != installed_.end() &&
         (it->second.granted & permission_bit(p)) != 0;
}

void AppInstaller::corrupt_installed_image(const std::string& name) {
  const auto it = installed_.find(name);
  if (it == installed_.end() || it->second.image.empty()) return;
  it->second.image[it->second.image.size() / 2] ^= 0x01;
}

std::optional<std::uint32_t> AppInstaller::installed_version(
    const std::string& name) const {
  const auto it = installed_.find(name);
  if (it == installed_.end()) return std::nullopt;
  return it->second.version;
}

}  // namespace mapsec::secureplat
