#include "mapsec/secureplat/secure_world.hpp"

#include <stdexcept>

#include "mapsec/crypto/aes.hpp"
#include "mapsec/crypto/cipher.hpp"
#include "mapsec/crypto/hmac.hpp"

namespace mapsec::secureplat {

void PartitionedMemory::add_region(const std::string& name, std::size_t size,
                                   bool secure) {
  if (regions_.count(name))
    throw std::invalid_argument("PartitionedMemory: duplicate region");
  regions_[name] = Region{crypto::Bytes(size, 0), secure};
}

std::optional<crypto::Bytes> PartitionedMemory::read(World world,
                                                     const std::string& region,
                                                     std::size_t offset,
                                                     std::size_t len) {
  const auto it = regions_.find(region);
  if (it == regions_.end()) return std::nullopt;
  if (!allowed(world, it->second)) {
    faults_.push_back({world, region, false});
    return std::nullopt;
  }
  const auto& data = it->second.data;
  if (offset + len > data.size()) return std::nullopt;
  return crypto::Bytes(data.begin() + static_cast<std::ptrdiff_t>(offset),
                       data.begin() + static_cast<std::ptrdiff_t>(offset + len));
}

bool PartitionedMemory::write(World world, const std::string& region,
                              std::size_t offset, crypto::ConstBytes data) {
  const auto it = regions_.find(region);
  if (it == regions_.end()) return false;
  if (!allowed(world, it->second)) {
    faults_.push_back({world, region, true});
    return false;
  }
  auto& mem = it->second.data;
  if (offset + data.size() > mem.size()) return false;
  std::copy(data.begin(), data.end(),
            mem.begin() + static_cast<std::ptrdiff_t>(offset));
  return true;
}

SecureWorld::SecureWorld(PartitionedMemory* memory, crypto::Rng* rng)
    : memory_(memory), rng_(rng) {
  if (memory_ == nullptr || rng_ == nullptr)
    throw std::invalid_argument("SecureWorld: memory and rng required");
}

MonitorResult SecureWorld::call(MonitorCall service,
                                const std::string& key_name,
                                crypto::ConstBytes payload) {
  // Entry switch (normal -> secure) and exit switch (secure -> normal).
  world_switches_ += 2;
  MonitorResult result;

  switch (service) {
    case MonitorCall::kGenerateKey: {
      keys_[key_name] = rng_->bytes(16);
      result.ok = true;
      return result;
    }
    case MonitorCall::kGetKey: {
      // The defining property of the architecture.
      result.error = "keys never leave the secure world";
      return result;
    }
    default:
      break;
  }

  const auto it = keys_.find(key_name);
  if (it == keys_.end()) {
    result.error = "unknown key";
    return result;
  }

  switch (service) {
    case MonitorCall::kMac:
      result.data = crypto::HmacSha256::mac(it->second, payload);
      result.ok = true;
      return result;
    case MonitorCall::kEncrypt: {
      const crypto::Bytes iv = rng_->bytes(16);
      const auto cipher = crypto::make_block_cipher(crypto::Aes(it->second));
      result.data = crypto::cat(iv, crypto::cbc_encrypt(*cipher, iv, payload));
      result.ok = true;
      return result;
    }
    case MonitorCall::kDecrypt: {
      if (payload.size() < 32) {
        result.error = "ciphertext too short";
        return result;
      }
      const crypto::ConstBytes iv = payload.subspan(0, 16);
      const auto cipher = crypto::make_block_cipher(crypto::Aes(it->second));
      try {
        result.data = crypto::cbc_decrypt(*cipher, iv, payload.subspan(16));
        result.ok = true;
      } catch (const std::runtime_error&) {
        result.error = "decryption failed";
      }
      return result;
    }
    default:
      result.error = "unsupported service";
      return result;
  }
}

}  // namespace mapsec::secureplat
