#include "mapsec/secureplat/secure_boot.hpp"

#include "mapsec/crypto/sha256.hpp"

namespace mapsec::secureplat {

crypto::Bytes BootImage::manifest_tbs() const {
  crypto::Bytes out = crypto::to_bytes(name);
  out.push_back(0);  // name terminator
  out.push_back(static_cast<std::uint8_t>(version >> 24));
  out.push_back(static_cast<std::uint8_t>(version >> 16));
  out.push_back(static_cast<std::uint8_t>(version >> 8));
  out.push_back(static_cast<std::uint8_t>(version));
  out.insert(out.end(), digest.begin(), digest.end());
  return out;
}

BootImage make_boot_image(const std::string& name, crypto::ConstBytes payload,
                          std::uint32_t version,
                          const crypto::RsaPrivateKey& signer) {
  BootImage img;
  img.name = name;
  img.payload.assign(payload.begin(), payload.end());
  img.version = version;
  img.digest = crypto::Sha256::hash(payload);
  img.signature = crypto::rsa_sign_sha256(signer, img.manifest_tbs());
  return img;
}

std::string boot_stage_status_name(BootStageStatus s) {
  switch (s) {
    case BootStageStatus::kOk: return "ok";
    case BootStageStatus::kBadSignature: return "bad-signature";
    case BootStageStatus::kDigestMismatch: return "digest-mismatch";
    case BootStageStatus::kRollback: return "rollback";
    case BootStageStatus::kMissing: return "missing";
  }
  return "?";
}

BootRom::BootRom(crypto::RsaPublicKey root_key)
    : root_key_(std::move(root_key)) {}

std::uint32_t BootRom::min_version(std::size_t stage) const {
  return stage < min_versions_.size() ? min_versions_[stage] : 0;
}

BootStageStatus BootRom::verify_image(const BootImage& image,
                                      std::size_t stage) const {
  // Manifest signature first: an attacker can fake everything else.
  if (!crypto::rsa_verify_sha256(root_key_, image.manifest_tbs(),
                                 image.signature))
    return BootStageStatus::kBadSignature;
  // Then the payload digest against the (now trusted) manifest.
  if (!crypto::ct_equal(crypto::Sha256::hash(image.payload), image.digest))
    return BootStageStatus::kDigestMismatch;
  // Anti-rollback.
  if (image.version < min_version(stage)) return BootStageStatus::kRollback;
  return BootStageStatus::kOk;
}

BootReport BootRom::boot(const std::vector<BootImage>& chain) {
  BootReport report;
  report.stages.reserve(chain.size());
  for (std::size_t stage = 0; stage < chain.size(); ++stage) {
    BootStageReport sr;
    sr.image_name = chain[stage].name;
    sr.version = chain[stage].version;
    sr.status = verify_image(chain[stage], stage);
    report.stages.push_back(sr);
    if (sr.status != BootStageStatus::kOk) {
      report.booted = false;
      report.failed_stage = stage;
      return report;
    }
  }
  // Successful boot: ratchet the rollback registers.
  if (min_versions_.size() < chain.size()) min_versions_.resize(chain.size(), 0);
  for (std::size_t stage = 0; stage < chain.size(); ++stage)
    min_versions_[stage] = std::max(min_versions_[stage], chain[stage].version);
  report.booted = true;
  report.failed_stage = chain.size();
  return report;
}

}  // namespace mapsec::secureplat
