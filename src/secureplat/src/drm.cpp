#include "mapsec/secureplat/drm.hpp"

#include <stdexcept>

#include "mapsec/crypto/aes.hpp"
#include "mapsec/crypto/cipher.hpp"

namespace mapsec::secureplat {

namespace {

void put_str(crypto::Bytes& out, const std::string& s) {
  out.push_back(static_cast<std::uint8_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_u32(crypto::Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64(crypto::Bytes& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

}  // namespace

crypto::Bytes ContentLicense::tbs() const {
  crypto::Bytes out;
  put_str(out, content_id);
  put_str(out, device_id);
  put_u32(out, rights.max_plays);
  put_u64(out, rights.not_after);
  out.push_back(rights.allow_export ? 1 : 0);
  out.insert(out.end(), wrapped_key.begin(), wrapped_key.end());
  return out;
}

ContentProvider::ContentProvider(crypto::RsaKeyPair signing_key,
                                 crypto::Rng* rng)
    : key_(std::move(signing_key)), rng_(rng) {
  if (rng_ == nullptr)
    throw std::invalid_argument("ContentProvider: rng required");
}

PackagedContent ContentProvider::package(const std::string& content_id,
                                         crypto::ConstBytes content) {
  const crypto::Bytes content_key = rng_->bytes(16);
  content_keys_[content_id] = content_key;

  PackagedContent out;
  out.content_id = content_id;
  out.iv = rng_->bytes(16);
  const auto cipher = crypto::make_block_cipher(crypto::Aes(content_key));
  out.ciphertext = crypto::cbc_encrypt(*cipher, out.iv, content);
  return out;
}

ContentLicense ContentProvider::issue_license(
    const std::string& content_id, const std::string& device_id,
    const crypto::RsaPublicKey& device_key, const UsageRights& rights) {
  const auto it = content_keys_.find(content_id);
  if (it == content_keys_.end())
    throw std::invalid_argument("issue_license: unknown content id");

  ContentLicense lic;
  lic.content_id = content_id;
  lic.device_id = device_id;
  lic.rights = rights;
  lic.wrapped_key = crypto::rsa_encrypt_pkcs1(device_key, it->second, *rng_);
  lic.signature = crypto::rsa_sign_sha256(key_.priv, lic.tbs());
  return lic;
}

std::string drm_status_name(DrmStatus s) {
  switch (s) {
    case DrmStatus::kOk: return "ok";
    case DrmStatus::kNoLicense: return "no-license";
    case DrmStatus::kBadLicenseSignature: return "bad-license-signature";
    case DrmStatus::kWrongDevice: return "wrong-device";
    case DrmStatus::kExpired: return "expired";
    case DrmStatus::kPlayCountExhausted: return "play-count-exhausted";
    case DrmStatus::kExportForbidden: return "export-forbidden";
    case DrmStatus::kDecryptFailed: return "decrypt-failed";
  }
  return "?";
}

DrmAgent::DrmAgent(std::string device_id, crypto::RsaKeyPair device_key,
                   crypto::RsaPublicKey provider_key)
    : device_id_(std::move(device_id)),
      device_key_(std::move(device_key)),
      provider_key_(std::move(provider_key)) {}

DrmStatus DrmAgent::install_license(const ContentLicense& license) {
  if (!crypto::rsa_verify_sha256(provider_key_, license.tbs(),
                                 license.signature))
    return DrmStatus::kBadLicenseSignature;
  if (license.device_id != device_id_) return DrmStatus::kWrongDevice;
  licenses_[license.content_id] = {license, 0};
  return DrmStatus::kOk;
}

DrmStatus DrmAgent::check_and_unwrap(const PackagedContent& content,
                                     std::uint64_t now, bool for_export,
                                     const InstalledLicense** entry_out,
                                     crypto::Bytes& key_out) const {
  const auto it = licenses_.find(content.content_id);
  if (it == licenses_.end()) return DrmStatus::kNoLicense;
  const InstalledLicense& entry = it->second;
  const UsageRights& rights = entry.license.rights;

  if (rights.not_after != 0 && now > rights.not_after)
    return DrmStatus::kExpired;
  if (for_export && !rights.allow_export) return DrmStatus::kExportForbidden;
  if (!for_export && rights.max_plays != 0 &&
      entry.plays_used >= rights.max_plays)
    return DrmStatus::kPlayCountExhausted;

  const auto key = crypto::rsa_decrypt_pkcs1(device_key_.priv,
                                             entry.license.wrapped_key);
  if (!key || key->size() != 16) return DrmStatus::kDecryptFailed;
  key_out = *key;
  *entry_out = &entry;
  return DrmStatus::kOk;
}

DrmStatus DrmAgent::play(const PackagedContent& content, std::uint64_t now,
                         crypto::Bytes& plaintext_out) {
  const InstalledLicense* entry = nullptr;
  crypto::Bytes key;
  const DrmStatus status =
      check_and_unwrap(content, now, /*for_export=*/false, &entry, key);
  if (status != DrmStatus::kOk) return status;

  try {
    const auto cipher = crypto::make_block_cipher(crypto::Aes(key));
    plaintext_out = crypto::cbc_decrypt(*cipher, content.iv,
                                        content.ciphertext);
  } catch (const std::runtime_error&) {
    return DrmStatus::kDecryptFailed;
  }
  // Advance the play counter only after a successful decrypt.
  ++licenses_[content.content_id].plays_used;
  crypto::secure_wipe(key);
  return DrmStatus::kOk;
}

DrmStatus DrmAgent::export_content(const PackagedContent& content,
                                   std::uint64_t now,
                                   crypto::Bytes& plaintext_out) {
  const InstalledLicense* entry = nullptr;
  crypto::Bytes key;
  const DrmStatus status =
      check_and_unwrap(content, now, /*for_export=*/true, &entry, key);
  if (status != DrmStatus::kOk) return status;
  try {
    const auto cipher = crypto::make_block_cipher(crypto::Aes(key));
    plaintext_out = crypto::cbc_decrypt(*cipher, content.iv,
                                        content.ciphertext);
  } catch (const std::runtime_error&) {
    return DrmStatus::kDecryptFailed;
  }
  crypto::secure_wipe(key);
  return DrmStatus::kOk;
}

std::uint32_t DrmAgent::plays_used(const std::string& content_id) const {
  const auto it = licenses_.find(content_id);
  return it == licenses_.end() ? 0 : it->second.plays_used;
}

}  // namespace mapsec::secureplat
