#include "mapsec/secureplat/keystore.hpp"

#include <stdexcept>

#include "mapsec/crypto/aes.hpp"
#include "mapsec/crypto/cipher.hpp"
#include "mapsec/crypto/hmac.hpp"

namespace mapsec::secureplat {

KeyStore::KeyStore(crypto::Bytes master_key, crypto::Rng* rng) : rng_(rng) {
  if (master_key.size() < 16)
    throw std::invalid_argument("KeyStore: master key must be >= 16 bytes");
  if (rng_ == nullptr) throw std::invalid_argument("KeyStore: rng required");
  // Domain-separated subkeys so a compromise of one use never crosses over.
  enc_key_ = crypto::HmacSha256::mac(master_key, crypto::to_bytes("enc"));
  enc_key_.resize(16);  // AES-128
  mac_key_ = crypto::HmacSha256::mac(master_key, crypto::to_bytes("mac"));
  crypto::secure_wipe(master_key);
}

crypto::Bytes KeyStore::mac_input(const SealedBlob& blob) const {
  crypto::Bytes in = crypto::to_bytes(blob.name);
  in.push_back(0);
  std::uint8_t ctr[8];
  crypto::store_be64(ctr, blob.counter);
  in.insert(in.end(), ctr, ctr + 8);
  in.insert(in.end(), blob.iv.begin(), blob.iv.end());
  in.insert(in.end(), blob.ciphertext.begin(), blob.ciphertext.end());
  return in;
}

SealedBlob KeyStore::seal(const std::string& name, crypto::ConstBytes secret) {
  SealedBlob blob;
  blob.name = name;
  blob.counter = ++counter_;
  blob.iv = rng_->bytes(16);
  const auto cipher = crypto::make_block_cipher(crypto::Aes(enc_key_));
  blob.ciphertext = crypto::cbc_encrypt(*cipher, blob.iv, secret);
  blob.tag = crypto::HmacSha256::mac(mac_key_, mac_input(blob));
  freshest_[name] = blob.counter;
  return blob;
}

UnsealStatus KeyStore::unseal(const SealedBlob& blob,
                              crypto::Bytes& secret_out) const {
  // Authenticate before anything else — including before the rollback
  // check, so an attacker cannot probe counter state with forged blobs.
  if (blob.iv.size() != 16 ||
      !crypto::ct_equal(crypto::HmacSha256::mac(mac_key_, mac_input(blob)),
                        blob.tag))
    return UnsealStatus::kBadTag;
  const auto it = freshest_.find(blob.name);
  if (it == freshest_.end()) return UnsealStatus::kUnknownName;
  if (blob.counter < it->second) return UnsealStatus::kRollback;
  const auto cipher = crypto::make_block_cipher(crypto::Aes(enc_key_));
  secret_out = crypto::cbc_decrypt(*cipher, blob.iv, blob.ciphertext);
  return UnsealStatus::kOk;
}

}  // namespace mapsec::secureplat
