#include "mapsec/ticket/ticket.hpp"

#include <cstring>
#include <stdexcept>

#include "mapsec/crypto/aes.hpp"
#include "mapsec/crypto/ccm.hpp"
#include "mapsec/crypto/cipher.hpp"
#include "mapsec/crypto/sha256.hpp"

namespace mapsec::ticket {
namespace {

// Bound into the CCM AAD so a format change can never silently decrypt
// an old-format blob into new-format fields.
constexpr char kFormatLabel[] = "mapsec-ticket-v1";

void put_u16(crypto::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_u32(crypto::Bytes& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
}

void put_u64(crypto::Bytes& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
}

bool get_u16(crypto::ConstBytes in, std::size_t& off, std::uint16_t& v) {
  if (off + 2 > in.size()) return false;
  v = static_cast<std::uint16_t>((in[off] << 8) | in[off + 1]);
  off += 2;
  return true;
}

bool get_u64(crypto::ConstBytes in, std::size_t& off, std::uint64_t& v) {
  if (off + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[off + i];
  off += 8;
  return true;
}

bool get_blob16(crypto::ConstBytes in, std::size_t& off, crypto::Bytes& out) {
  std::uint16_t len = 0;
  if (!get_u16(in, off, len)) return false;
  if (off + len > in.size()) return false;
  out.assign(in.begin() + static_cast<std::ptrdiff_t>(off),
             in.begin() + static_cast<std::ptrdiff_t>(off + len));
  off += len;
  return true;
}

crypto::Bytes aad_for(std::uint32_t key_id) {
  crypto::Bytes aad(kFormatLabel, kFormatLabel + sizeof(kFormatLabel) - 1);
  put_u32(aad, key_id);
  return aad;
}

}  // namespace

crypto::Bytes client_binding_for(crypto::ConstBytes master_secret) {
  crypto::Bytes digest = crypto::Sha256::hash(master_secret);
  digest.resize(kBindingLen);
  return digest;
}

// ---- TicketKeyRing ---------------------------------------------------------

TicketKeyRing::TicketKeyRing(std::uint64_t seed, Config config,
                             std::uint64_t now_us)
    : keygen_(seed), config_(config), last_rotation_us_(now_us) {
  if (config_.decrypt_window == 0)
    throw std::invalid_argument("ticket: decrypt window must be >= 1");
  keys_.push_front(Key{next_id_++, derive_key(), now_us});
}

crypto::Bytes TicketKeyRing::derive_key() {
  return keygen_.bytes(kTicketKeyLen);
}

void TicketKeyRing::rotate(std::uint64_t now_us) {
  keys_.push_front(Key{next_id_++, derive_key(), now_us});
  while (keys_.size() > config_.decrypt_window) keys_.pop_back();
  last_rotation_us_ = now_us;
  ++stats_.rotations;
}

std::size_t TicketKeyRing::maybe_rotate(std::uint64_t now_us) {
  if (config_.rotation_interval_us == 0) return 0;
  std::size_t rotated = 0;
  while (now_us - last_rotation_us_ >= config_.rotation_interval_us &&
         rotated < config_.decrypt_window) {
    rotate(last_rotation_us_ + config_.rotation_interval_us);
    ++rotated;
  }
  // After a quiet gap longer than window*interval every pre-gap key is
  // retired anyway; snap the schedule forward instead of looping.
  if (now_us - last_rotation_us_ >= config_.rotation_interval_us)
    last_rotation_us_ = now_us;
  return rotated;
}

const TicketKeyRing::Key* TicketKeyRing::key_for(std::uint32_t id) {
  for (const Key& k : keys_)
    if (k.id == id) return &k;
  ++stats_.stale_key_lookups;
  return nullptr;
}

std::size_t TicketKeyRing::state_bytes() const {
  return keys_.size() * (sizeof(Key) + kTicketKeyLen);
}

// ---- TicketCodec -----------------------------------------------------------

const char* open_failure_name(OpenFailure f) {
  switch (f) {
    case OpenFailure::kNone: return "none";
    case OpenFailure::kMalformed: return "malformed";
    case OpenFailure::kOversize: return "oversize";
    case OpenFailure::kStaleKey: return "stale_key";
    case OpenFailure::kMacFailure: return "mac_failure";
    case OpenFailure::kBadBinding: return "bad_binding";
    case OpenFailure::kExpired: return "expired";
  }
  return "unknown";
}

TicketCodec::TicketCodec(TicketKeyRing& ring) : TicketCodec(ring, Config()) {}

TicketCodec::TicketCodec(TicketKeyRing& ring, Config config)
    : ring_(ring), config_(config) {}

crypto::Bytes TicketCodec::seal(const SessionTicket& t, crypto::Rng& rng) {
  crypto::Bytes body;
  body.reserve(t.master_secret.size() + t.client_binding.size() + 16);
  put_u16(body, static_cast<std::uint16_t>(t.master_secret.size()));
  body.insert(body.end(), t.master_secret.begin(), t.master_secret.end());
  put_u16(body, t.suite);
  put_u64(body, t.issued_at_us);
  put_u16(body, static_cast<std::uint16_t>(t.client_binding.size()));
  body.insert(body.end(), t.client_binding.begin(), t.client_binding.end());

  const TicketKeyRing::Key& key = ring_.sealing_key();
  const crypto::BlockCipherAdapter<crypto::Aes> cipher{crypto::Aes(key.key)};
  const crypto::Bytes nonce = rng.bytes(crypto::kCcmNonceLen);

  crypto::Bytes wire;
  wire.reserve(kKeyIdLen + nonce.size() + body.size() + kTagLen);
  put_u32(wire, key.id);
  wire.insert(wire.end(), nonce.begin(), nonce.end());
  const crypto::Bytes sealed =
      crypto::ccm_seal(cipher, nonce, aad_for(key.id), body, kTagLen);
  wire.insert(wire.end(), sealed.begin(), sealed.end());
  ++stats_.sealed;
  return wire;
}

std::optional<SessionTicket> TicketCodec::open(crypto::ConstBytes wire,
                                               std::uint64_t now_us,
                                               OpenFailure* why) {
  const auto fail = [&](OpenFailure f,
                        std::uint64_t Stats::*counter) -> std::optional<SessionTicket> {
    ++(stats_.*counter);
    if (why) *why = f;
    return std::nullopt;
  };
  if (why) *why = OpenFailure::kNone;

  if (wire.size() > config_.max_wire_len)
    return fail(OpenFailure::kOversize, &Stats::oversize);
  if (wire.size() < kKeyIdLen + crypto::kCcmNonceLen + kTagLen)
    return fail(OpenFailure::kMalformed, &Stats::malformed);

  std::uint32_t key_id = 0;
  for (std::size_t i = 0; i < kKeyIdLen; ++i) key_id = (key_id << 8) | wire[i];
  const TicketKeyRing::Key* key = ring_.key_for(key_id);
  if (key == nullptr) return fail(OpenFailure::kStaleKey, &Stats::stale_key);

  const crypto::ConstBytes nonce = wire.subspan(kKeyIdLen, crypto::kCcmNonceLen);
  const crypto::ConstBytes sealed = wire.subspan(kKeyIdLen + crypto::kCcmNonceLen);
  const crypto::BlockCipherAdapter<crypto::Aes> cipher{crypto::Aes(key->key)};
  const std::optional<crypto::Bytes> body =
      crypto::ccm_open(cipher, nonce, aad_for(key_id), sealed, kTagLen);
  if (!body) return fail(OpenFailure::kMacFailure, &Stats::mac_failures);

  SessionTicket t;
  std::size_t off = 0;
  std::uint16_t suite = 0;
  if (!get_blob16(*body, off, t.master_secret) ||
      !get_u16(*body, off, suite) || !get_u64(*body, off, t.issued_at_us) ||
      !get_blob16(*body, off, t.client_binding) || off != body->size())
    return fail(OpenFailure::kMalformed, &Stats::malformed);
  t.suite = suite;

  if (!crypto::ct_equal(t.client_binding,
                        client_binding_for(t.master_secret)))
    return fail(OpenFailure::kBadBinding, &Stats::bad_binding);
  if (config_.lifetime_us != 0 && now_us >= t.issued_at_us &&
      now_us - t.issued_at_us > config_.lifetime_us)
    return fail(OpenFailure::kExpired, &Stats::expired);

  ++stats_.opened;
  return t;
}

}  // namespace mapsec::ticket
