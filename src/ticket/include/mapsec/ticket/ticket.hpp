// Stateless encrypted session tickets with rotating server keys.
//
// The paper's processing-gap argument makes full handshakes the thing a
// mobile appliance cannot afford, so resumption dominates the serving
// economics — but a server-side session cache stores master-secret state
// per client, and at millions of users that memory is the scaling wall
// (and LRU eviction thrash a DoS surface). A session ticket inverts the
// trade: the server seals everything it needs to resume — master secret,
// suite, issue time, client binding — into an opaque blob the *client*
// stores, so resumption costs the server zero cache bytes: one AES-CCM
// open and a key-block derivation, no public-key op, no lookup.
//
// Sealing keys live in a `TicketKeyRing` that rotates on `net::SimTime`:
// the key id travels in the clear ahead of the ciphertext, and the ring
// keeps an N-deep decrypt window of predecessor keys so a rotation never
// strands an honest client holding a ticket sealed moments earlier.
// Server resumption state is O(ring depth), independent of user count.
//
// This library depends only on mapsec::crypto — suites and clocks appear
// as raw integers so the protocol and server layers can both build on it
// without cycles.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "mapsec/crypto/bytes.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::ticket {

/// Everything the server must recover to resume a session statelessly.
struct SessionTicket {
  crypto::Bytes master_secret;
  std::uint16_t suite = 0;            ///< cipher-suite wire id
  std::uint64_t issued_at_us = 0;     ///< sim time at issuance
  crypto::Bytes client_binding;       ///< see client_binding_for()
};

constexpr std::size_t kKeyIdLen = 4;
constexpr std::size_t kTicketKeyLen = 16;  ///< AES-128 sealing keys
constexpr std::size_t kBindingLen = 8;
constexpr std::size_t kTagLen = 8;         ///< CCM tag (802.11 profile)

/// Binding value sealed into the ticket: a short digest of the master
/// secret. An attacker who steals only the opaque blob cannot forge a
/// matching Finished exchange (that proof lives in the handshake); the
/// binding is the codec-level self-check that a decrypted ticket is
/// internally consistent and not a splice of two valid tickets.
crypto::Bytes client_binding_for(crypto::ConstBytes master_secret);

/// Rotating set of ticket sealing keys. Keys are derived deterministically
/// from a seed DRBG (the whole simulation is a pure function of its
/// seeds); ids increase monotonically and travel in the clear, so lookup
/// is O(depth) with no trial decryption.
class TicketKeyRing {
 public:
  struct Config {
    /// Keys kept decryptable: the sealing key plus (window-1)
    /// predecessors. Tickets under older keys are refused as stale.
    std::size_t decrypt_window = 3;
    /// maybe_rotate() rotates when this much sim time has passed since
    /// the last rotation. 0 disables interval rotation (manual only).
    std::uint64_t rotation_interval_us = 0;
  };

  struct Key {
    std::uint32_t id = 0;
    crypto::Bytes key;
    std::uint64_t created_at_us = 0;
  };

  struct Stats {
    std::uint64_t rotations = 0;
    std::uint64_t stale_key_lookups = 0;  ///< key id fell out of the window
  };

  TicketKeyRing(std::uint64_t seed, Config config, std::uint64_t now_us = 0);

  /// Install a fresh sealing key, retiring the oldest key beyond the
  /// decrypt window. Honest clients holding tickets under any windowed
  /// predecessor keep resuming.
  void rotate(std::uint64_t now_us);

  /// Interval-driven rotation: rotates (possibly several times after a
  /// long quiet gap — at most `decrypt_window` times, further catch-up
  /// would only retire keys already gone) when `rotation_interval_us`
  /// has elapsed. Returns the number of rotations performed.
  std::size_t maybe_rotate(std::uint64_t now_us);

  const Key& sealing_key() const { return keys_.front(); }

  /// Key for a clear-text id, or nullptr (counted stale) when the id has
  /// rotated out of the window or was never issued.
  const Key* key_for(std::uint32_t id);

  std::size_t depth() const { return keys_.size(); }

  /// Bytes of server-side resumption state this ring pins: O(depth),
  /// independent of how many clients hold tickets.
  std::size_t state_bytes() const;

  const Stats& stats() const { return stats_; }

 private:
  crypto::Bytes derive_key();

  crypto::HmacDrbg keygen_;
  Config config_;
  std::deque<Key> keys_;  ///< front = current sealing key
  std::uint32_t next_id_ = 1;
  std::uint64_t last_rotation_us_ = 0;
  Stats stats_;
};

/// Why an open() failed — surfaced so the server can count DoS-shaped
/// garbage (malformed/oversize) separately from honest staleness.
enum class OpenFailure {
  kNone,
  kMalformed,   ///< too short to parse, or inner encoding inconsistent
  kOversize,    ///< wire blob over max_wire_len; refused before decrypting
  kStaleKey,    ///< key id outside the ring's decrypt window
  kMacFailure,  ///< CCM tag verification failed
  kBadBinding,  ///< decrypted binding != client_binding_for(master)
  kExpired,     ///< older than lifetime_us at open time
};

const char* open_failure_name(OpenFailure f);

/// Seals and opens tickets under a TicketKeyRing.
///
/// Wire format:  key_id(4, big-endian) | nonce(13) | ccm(body) | tag(8)
/// Sealed body:  master_len u16 | master | suite u16 | issued_at u64 |
///               binding_len u16 | binding
/// The CCM AAD binds the format version string and the clear-text key id,
/// so a blob re-labelled with a different key id fails authentication.
class TicketCodec {
 public:
  struct Config {
    /// Tickets older than this are refused at open(). 0 = no expiry.
    std::uint64_t lifetime_us = 0;
    /// Wire blobs longer than this are refused before any crypto — a
    /// flood of oversize tickets must cost the server ~nothing.
    std::size_t max_wire_len = 512;
  };

  struct Stats {
    std::uint64_t sealed = 0;
    std::uint64_t opened = 0;        ///< successful opens
    std::uint64_t malformed = 0;
    std::uint64_t oversize = 0;
    std::uint64_t stale_key = 0;
    std::uint64_t mac_failures = 0;
    std::uint64_t bad_binding = 0;
    std::uint64_t expired = 0;

    std::uint64_t open_failures() const {
      return malformed + oversize + stale_key + mac_failures + bad_binding +
             expired;
    }
  };

  explicit TicketCodec(TicketKeyRing& ring);
  TicketCodec(TicketKeyRing& ring, Config config);

  /// Seal under the ring's current sealing key. `rng` supplies the nonce.
  crypto::Bytes seal(const SessionTicket& t, crypto::Rng& rng);

  /// Decrypt, authenticate, and validate a wire blob. Returns nullopt on
  /// any failure (category in `*why` and in stats()); the caller falls
  /// back to a full handshake — a bad ticket must never kill the
  /// connection.
  std::optional<SessionTicket> open(crypto::ConstBytes wire,
                                    std::uint64_t now_us,
                                    OpenFailure* why = nullptr);

  const Stats& stats() const { return stats_; }
  TicketKeyRing& ring() { return ring_; }
  const TicketKeyRing& ring() const { return ring_; }
  const Config& config() const { return config_; }

 private:
  TicketKeyRing& ring_;
  Config config_;
  Stats stats_;
};

}  // namespace mapsec::ticket
