#include "mapsec/protocol/suites.hpp"

#include <array>
#include <stdexcept>

#include "mapsec/crypto/hmac.hpp"

namespace mapsec::protocol {

namespace {

const std::array<SuiteInfo, 9>& table() {
  static const std::array<SuiteInfo, 9> kTable = {{
      {CipherSuite::kRsa3DesEdeCbcSha, "RSA_WITH_3DES_EDE_CBC_SHA",
       KeyExchange::kRsa, BulkKind::kBlock, BulkCipher::kDes3, 24, 8,
       MacAlgo::kHmacSha1, 20},
      {CipherSuite::kRsaAes128CbcSha, "RSA_WITH_AES_128_CBC_SHA",
       KeyExchange::kRsa, BulkKind::kBlock, BulkCipher::kAes128, 16, 16,
       MacAlgo::kHmacSha1, 20},
      {CipherSuite::kDheRsa3DesEdeCbcSha, "DHE_RSA_WITH_3DES_EDE_CBC_SHA",
       KeyExchange::kDheRsa, BulkKind::kBlock, BulkCipher::kDes3, 24, 8,
       MacAlgo::kHmacSha1, 20},
      {CipherSuite::kDheRsaAes128CbcSha, "DHE_RSA_WITH_AES_128_CBC_SHA",
       KeyExchange::kDheRsa, BulkKind::kBlock, BulkCipher::kAes128, 16, 16,
       MacAlgo::kHmacSha1, 20},
      {CipherSuite::kRsaRc4128Sha, "RSA_WITH_RC4_128_SHA", KeyExchange::kRsa,
       BulkKind::kStream, BulkCipher::kRc4, 16, 0, MacAlgo::kHmacSha1, 20},
      {CipherSuite::kRsaRc4128Md5, "RSA_WITH_RC4_128_MD5", KeyExchange::kRsa,
       BulkKind::kStream, BulkCipher::kRc4, 16, 0, MacAlgo::kHmacMd5, 16},
      {CipherSuite::kRsaDesCbcSha, "RSA_WITH_DES_CBC_SHA", KeyExchange::kRsa,
       BulkKind::kBlock, BulkCipher::kDes, 8, 8, MacAlgo::kHmacSha1, 20},
      {CipherSuite::kRsaRc2Cbc128Md5, "RSA_WITH_RC2_CBC_128_MD5",
       KeyExchange::kRsa, BulkKind::kBlock, BulkCipher::kRc2, 16, 8,
       MacAlgo::kHmacMd5, 16},
      // AEAD suite: AES-CCM with an 8-byte tag (the 802.11i profile the
      // engine's CCMP path already implements). block_len sizes the
      // derived IV seed; the MAC algo/len price the CCM tag, and the
      // record layer never runs a separate HMAC. Opt-in: excluded from
      // all_suites() so the default offer stays stable.
      {CipherSuite::kRsaAes128Ccm8, "RSA_WITH_AES_128_CCM_8",
       KeyExchange::kRsa, BulkKind::kAead, BulkCipher::kAes128, 16, 16,
       MacAlgo::kHmacSha1, 8},
  }};
  return kTable;
}

}  // namespace

const SuiteInfo& suite_info(CipherSuite id) {
  for (const auto& s : table())
    if (s.id == id) return s;
  throw std::invalid_argument("suite_info: unknown cipher suite");
}

std::vector<CipherSuite> all_suites() {
  std::vector<CipherSuite> out;
  out.reserve(table().size());
  for (const auto& s : table())
    if (s.kind != BulkKind::kAead) out.push_back(s.id);
  return out;
}

crypto::Bytes suite_mac(MacAlgo algo, crypto::ConstBytes key,
                        crypto::ConstBytes data) {
  switch (algo) {
    case MacAlgo::kHmacMd5: return crypto::HmacMd5::mac(key, data);
    case MacAlgo::kHmacSha1: return crypto::HmacSha1::mac(key, data);
  }
  throw std::invalid_argument("suite_mac: unknown MAC algorithm");
}

std::size_t mac_length(MacAlgo algo) {
  return algo == MacAlgo::kHmacMd5 ? 16 : 20;
}

std::unique_ptr<crypto::BlockCipher> make_suite_cipher(
    BulkCipher cipher, crypto::ConstBytes key) {
  switch (cipher) {
    case BulkCipher::kDes: return crypto::make_block_cipher(crypto::Des(key));
    case BulkCipher::kDes3: return crypto::make_block_cipher(crypto::Des3(key));
    case BulkCipher::kAes128: return crypto::make_block_cipher(crypto::Aes(key));
    case BulkCipher::kRc2: return crypto::make_block_cipher(crypto::Rc2(key));
    case BulkCipher::kRc4:
      throw std::invalid_argument("make_suite_cipher: RC4 is a stream cipher");
  }
  throw std::invalid_argument("make_suite_cipher: unknown cipher");
}

}  // namespace mapsec::protocol
