#include "mapsec/protocol/datagram.hpp"

#include <stdexcept>

#include "mapsec/crypto/hmac.hpp"

namespace mapsec::protocol {

void DatagramRecordCodec::activate(const SuiteInfo& suite,
                                   crypto::ConstBytes enc_key,
                                   crypto::ConstBytes mac_key,
                                   crypto::ConstBytes iv_seed) {
  if (suite.kind != BulkKind::kBlock)
    throw std::invalid_argument(
        "DatagramRecordCodec: stream suites cannot survive datagram loss "
        "(keystream position is delivery-dependent); WTLS profiles use "
        "block ciphers");
  suite_ = &suite;
  enc_key_.assign(enc_key.begin(), enc_key.end());
  mac_key_.assign(mac_key.begin(), mac_key.end());
  iv_seed_.assign(iv_seed.begin(), iv_seed.end());
  block_ = make_suite_cipher(suite.cipher, enc_key_);
  send_seq_ = 0;
  highest_seq_ = 0;
  window_ = 0;
  any_received_ = false;
  active_ = true;
}

crypto::Bytes DatagramRecordCodec::record_iv(std::uint64_t seq) const {
  std::uint8_t seq_bytes[8];
  crypto::store_be64(seq_bytes, seq);
  const crypto::Bytes full =
      crypto::HmacSha1::mac(iv_seed_, crypto::ConstBytes{seq_bytes, 8});
  return crypto::Bytes(
      full.begin(),
      full.begin() + static_cast<std::ptrdiff_t>(suite_->block_len));
}

crypto::Bytes DatagramRecordCodec::compute_mac(
    std::uint64_t seq, RecordType type, crypto::ConstBytes payload) const {
  crypto::Bytes header(11);
  crypto::store_be64(header.data(), seq);
  header[8] = static_cast<std::uint8_t>(type);
  header[9] = static_cast<std::uint8_t>(payload.size() >> 8);
  header[10] = static_cast<std::uint8_t>(payload.size());
  return suite_mac(suite_->mac, mac_key_, crypto::cat(header, payload));
}

crypto::Bytes DatagramRecordCodec::seal(RecordType type,
                                        ProtocolVersion version,
                                        crypto::ConstBytes payload) {
  if (!active_) throw std::runtime_error("datagram codec not active");
  const std::uint64_t seq = ++send_seq_;
  const crypto::Bytes mac = compute_mac(seq, type, payload);
  const crypto::Bytes body =
      crypto::cbc_encrypt(*block_, record_iv(seq), crypto::cat(payload, mac));
  if (body.size() > 0xFFFF)
    throw std::invalid_argument("datagram record too large");

  crypto::Bytes wire(13 + body.size());
  wire[0] = static_cast<std::uint8_t>(type);
  wire[1] = static_cast<std::uint8_t>(static_cast<std::uint16_t>(version) >> 8);
  wire[2] = static_cast<std::uint8_t>(static_cast<std::uint16_t>(version));
  crypto::store_be64(wire.data() + 3, seq);
  wire[11] = static_cast<std::uint8_t>(body.size() >> 8);
  wire[12] = static_cast<std::uint8_t>(body.size());
  std::copy(body.begin(), body.end(), wire.begin() + 13);
  return wire;
}

bool DatagramRecordCodec::replay_check_and_update(std::uint64_t seq) {
  if (!any_received_ || seq > highest_seq_) {
    const std::uint64_t shift = any_received_ ? seq - highest_seq_ : 1;
    window_ = shift >= 64 ? 0 : window_ << shift;
    window_ |= 1;
    highest_seq_ = seq;
    any_received_ = true;
    return true;
  }
  const std::uint64_t offset = highest_seq_ - seq;
  if (offset >= 64) return false;
  const std::uint64_t bit = 1ull << offset;
  if (window_ & bit) return false;
  window_ |= bit;
  return true;
}

std::optional<Record> DatagramRecordCodec::open(crypto::ConstBytes wire) {
  if (!active_) throw std::runtime_error("datagram codec not active");
  if (wire.size() < 13) {
    ++stats_.malformed;
    return std::nullopt;
  }
  const auto type = static_cast<RecordType>(wire[0]);
  const std::uint64_t seq = crypto::load_be64(wire.data() + 3);
  const std::size_t len = (std::size_t{wire[11]} << 8) | wire[12];
  if (wire.size() != 13 + len) {
    ++stats_.malformed;
    return std::nullopt;
  }

  crypto::Bytes fragment;
  try {
    fragment = crypto::cbc_decrypt(*block_, record_iv(seq), wire.subspan(13));
  } catch (const std::runtime_error&) {
    ++stats_.bad_mac;  // padding failure: treat as authentication failure
    return std::nullopt;
  }
  if (fragment.size() < suite_->mac_len) {
    ++stats_.malformed;
    return std::nullopt;
  }
  const std::size_t plen = fragment.size() - suite_->mac_len;
  const crypto::ConstBytes payload{fragment.data(), plen};
  const crypto::ConstBytes tag{fragment.data() + plen, suite_->mac_len};
  if (!crypto::ct_equal(compute_mac(seq, type, payload), tag)) {
    ++stats_.bad_mac;
    return std::nullopt;
  }
  // Authenticate first, then replay-check, so forged packets cannot
  // poison the window.
  if (!replay_check_and_update(seq)) {
    ++stats_.replayed;
    return std::nullopt;
  }
  ++stats_.accepted;
  return Record{type, crypto::Bytes(payload.begin(), payload.end())};
}

}  // namespace mapsec::protocol
