#include "mapsec/protocol/bearer.hpp"

#include <stdexcept>

namespace mapsec::protocol {

GsmLink::GsmLink(crypto::Bytes kc) : kc_(std::move(kc)) {
  if (kc_.size() != 8)
    throw std::invalid_argument("GsmLink: Kc is 8 bytes");
}

GsmFrame GsmLink::send(crypto::ConstBytes payload, GsmCipherMode mode) {
  GsmFrame frame;
  frame.frame_number = counter_++ & 0x3FFFFF;  // 22-bit wrap
  frame.mode = mode;
  if (mode == GsmCipherMode::kA51) {
    frame.body = crypto::a51_crypt(kc_, frame.frame_number, payload);
  } else {
    frame.body.assign(payload.begin(), payload.end());
  }
  return frame;
}

crypto::Bytes GsmLink::receive(const GsmFrame& frame) const {
  if (frame.mode == GsmCipherMode::kA51)
    return crypto::a51_crypt(kc_, frame.frame_number, frame.body);
  return frame.body;
}

BearerPathTrace bearer_path_transfer(GsmLink& link,
                                     crypto::ConstBytes payload,
                                     GsmCipherMode mode) {
  BearerPathTrace trace;
  const GsmFrame frame = link.send(payload, mode);
  trace.over_the_air = frame.body;
  // The base station is the bearer-security endpoint: it decrypts.
  trace.at_base_station = link.receive(frame);
  // Everything past it travels as the base station saw it.
  trace.delivered_to_server = trace.at_base_station;
  return trace;
}

}  // namespace mapsec::protocol
