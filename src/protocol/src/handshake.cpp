#include "mapsec/protocol/handshake.hpp"

#include <cassert>
#include <deque>

#include "mapsec/crypto/mont_cache.hpp"
#include "mapsec/crypto/sha1.hpp"
#include "mapsec/protocol/prf.hpp"
#include "mapsec/ticket/ticket.hpp"

namespace mapsec::protocol {

namespace {

enum class MsgType : std::uint8_t {
  kHelloRequest = 0,       // server -> client: please renegotiate
  kClientHello = 1,
  kServerHello = 2,
  kNewSessionTicket = 4,   // server -> client: opaque stateless ticket
  kCertificate = 11,
  kServerKeyExchange = 12,
  kCertificateRequest = 13,
  kServerHelloDone = 14,
  kCertificateVerify = 15,
  kClientKeyExchange = 16,
  kFinished = 20,
};

constexpr std::size_t kRandomLen = 32;
constexpr std::size_t kPremasterLen = 48;
constexpr std::size_t kVerifyDataLen = 12;
constexpr std::size_t kSessionIdLen = 16;

// ---- handshake-message framing ---------------------------------------------

crypto::Bytes frame_message(MsgType type, crypto::ConstBytes body) {
  crypto::Bytes out;
  out.reserve(4 + body.size());
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(static_cast<std::uint8_t>(body.size() >> 16));
  out.push_back(static_cast<std::uint8_t>(body.size() >> 8));
  out.push_back(static_cast<std::uint8_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

struct Message {
  MsgType type{};
  crypto::Bytes body;
  crypto::Bytes raw;  // full framed bytes, for the transcript
};

std::vector<Message> parse_messages(crypto::ConstBytes payload) {
  std::vector<Message> out;
  std::size_t off = 0;
  while (off < payload.size()) {
    if (payload.size() - off < 4)
      throw HandshakeError("handshake: truncated message header");
    const auto type = static_cast<MsgType>(payload[off]);
    const std::size_t len = (std::size_t{payload[off + 1]} << 16) |
                            (std::size_t{payload[off + 2]} << 8) |
                            payload[off + 3];
    if (payload.size() - off - 4 < len)
      throw HandshakeError("handshake: truncated message body");
    Message m;
    m.type = type;
    m.body.assign(payload.begin() + static_cast<std::ptrdiff_t>(off + 4),
                  payload.begin() + static_cast<std::ptrdiff_t>(off + 4 + len));
    m.raw.assign(payload.begin() + static_cast<std::ptrdiff_t>(off),
                 payload.begin() + static_cast<std::ptrdiff_t>(off + 4 + len));
    out.push_back(std::move(m));
    off += 4 + len;
  }
  return out;
}

void put_u16(crypto::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get_u16(crypto::ConstBytes b, std::size_t off) {
  return static_cast<std::uint16_t>((b[off] << 8) | b[off + 1]);
}

void put_blob16(crypto::Bytes& out, crypto::ConstBytes blob) {
  if (blob.size() > 0xFFFF) throw HandshakeError("blob too large");
  put_u16(out, static_cast<std::uint16_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

crypto::Bytes get_blob16(crypto::ConstBytes b, std::size_t& off) {
  if (b.size() < off + 2) throw HandshakeError("truncated blob length");
  const std::size_t len = get_u16(b, off);
  off += 2;
  if (b.size() < off + len) throw HandshakeError("truncated blob");
  crypto::Bytes out(b.begin() + static_cast<std::ptrdiff_t>(off),
                    b.begin() + static_cast<std::ptrdiff_t>(off + len));
  off += len;
  return out;
}

// Certificate-message body: count(1) | { len24 | cert-encoding }*
crypto::Bytes encode_cert_list(const std::vector<Certificate>& chain) {
  crypto::Bytes body;
  body.push_back(static_cast<std::uint8_t>(chain.size()));
  for (const auto& cert : chain) {
    const crypto::Bytes enc = cert.encode();
    body.push_back(static_cast<std::uint8_t>(enc.size() >> 16));
    body.push_back(static_cast<std::uint8_t>(enc.size() >> 8));
    body.push_back(static_cast<std::uint8_t>(enc.size()));
    body.insert(body.end(), enc.begin(), enc.end());
  }
  return body;
}

std::vector<Certificate> decode_cert_list(crypto::ConstBytes body) {
  if (body.empty()) throw HandshakeError("Certificate: empty body");
  std::size_t off = 0;
  const std::size_t count = body[off++];
  std::vector<Certificate> chain;
  for (std::size_t i = 0; i < count; ++i) {
    if (body.size() < off + 3) throw HandshakeError("Certificate: truncated");
    const std::size_t len = (std::size_t{body[off]} << 16) |
                            (std::size_t{body[off + 1]} << 8) | body[off + 2];
    off += 3;
    if (body.size() < off + len)
      throw HandshakeError("Certificate: truncated body");
    auto cert =
        Certificate::decode(crypto::ConstBytes{body.data() + off, len});
    if (!cert) throw HandshakeError("Certificate: undecodable");
    chain.push_back(std::move(*cert));
    off += len;
  }
  if (off != body.size()) throw HandshakeError("Certificate: trailing bytes");
  return chain;
}

// ServerKeyExchange signed-parameter block: the DH params bound to both
// nonces, so they cannot be replayed across sessions.
crypto::Bytes ske_signed_content(crypto::ConstBytes client_random,
                                 crypto::ConstBytes server_random,
                                 const crypto::DhGroup& group,
                                 const crypto::BigInt& server_public) {
  crypto::Bytes out = crypto::cat(client_random, server_random);
  put_blob16(out, group.p.to_bytes_be());
  put_blob16(out, group.g.to_bytes_be());
  put_blob16(out, server_public.to_bytes_be());
  return out;
}

// ---- shared endpoint state ---------------------------------------------------

struct Common {
  explicit Common(HandshakeConfig cfg) : config(std::move(cfg)) {
    if (config.rng == nullptr)
      throw std::invalid_argument("HandshakeConfig: rng is required");
    summary.version = config.version;
  }

  HandshakeConfig config;
  RecordCodec read_codec;
  RecordCodec write_codec;
  crypto::Bytes transcript;
  crypto::Bytes client_random;
  crypto::Bytes server_random;
  crypto::Bytes master;
  const SuiteInfo* suite = nullptr;
  KeyBlock keys;
  HandshakeSummary summary;
  bool done = false;
  bool renegotiating = false;  // mid-session second handshake in progress
  bool pending_read_cipher = false;  // CCS received -> next records encrypted

  /// Wrap one handshake message into a record, tracking transcript and
  /// wire accounting.
  crypto::Bytes send_handshake(MsgType type, crypto::ConstBytes body) {
    const crypto::Bytes msg = frame_message(type, body);
    transcript.insert(transcript.end(), msg.begin(), msg.end());
    const crypto::Bytes wire =
        write_codec.seal(RecordType::kHandshake, config.version, msg);
    summary.bytes_sent += wire.size();
    return wire;
  }

  crypto::Bytes send_ccs_and_activate(bool is_client) {
    const std::uint8_t one = 1;
    const crypto::Bytes wire = write_codec.seal(
        RecordType::kChangeCipherSpec, config.version, {&one, 1});
    summary.bytes_sent += wire.size();
    activate_write(is_client);
    return wire;
  }

  void derive_keys() {
    keys = derive_key_block(master, client_random, server_random,
                            suite->mac_len, suite->key_len,
                            // Stream suites have no IV but we still derive
                            // an IV-seed block for the record codec.
                            suite->block_len == 0 ? 16 : suite->block_len);
  }

  void activate_write(bool is_client) {
    if (is_client) {
      write_codec.activate(*suite, keys.client_enc_key, keys.client_mac_key,
                           keys.client_iv);
    } else {
      write_codec.activate(*suite, keys.server_enc_key, keys.server_mac_key,
                           keys.server_iv);
    }
  }

  void activate_read(bool is_client) {
    if (is_client) {
      read_codec.activate(*suite, keys.server_enc_key, keys.server_mac_key,
                          keys.server_iv);
    } else {
      read_codec.activate(*suite, keys.client_enc_key, keys.client_mac_key,
                          keys.client_iv);
    }
  }

  crypto::Bytes finished_verify_data(bool client_label) const {
    return tls_prf(master,
                   client_label ? "client finished" : "server finished",
                   crypto::Sha1::hash(transcript), kVerifyDataLen);
  }

  crypto::Bytes make_finished(bool client_label) {
    return finished_verify_data(client_label);
  }

  void check_finished(const Message& msg, bool client_label) {
    // Expected value uses the transcript *before* this Finished message.
    const crypto::Bytes expected = finished_verify_data(client_label);
    if (!crypto::ct_equal(expected, msg.body))
      throw HandshakeError("handshake: Finished verification failed");
  }

  void note_received(const Message& msg) {
    transcript.insert(transcript.end(), msg.raw.begin(), msg.raw.end());
  }

  void setup_datagram_codecs(bool is_client, DatagramRecordCodec& tx,
                             DatagramRecordCodec& rx) {
    if (!done) throw HandshakeError("setup_datagram: handshake not complete");
    if (suite->kind != BulkKind::kBlock)
      throw HandshakeError("setup_datagram: block-cipher suite required");
    if (is_client) {
      tx.activate(*suite, keys.client_enc_key, keys.client_mac_key,
                  keys.client_iv);
      rx.activate(*suite, keys.server_enc_key, keys.server_mac_key,
                  keys.server_iv);
    } else {
      tx.activate(*suite, keys.server_enc_key, keys.server_mac_key,
                  keys.server_iv);
      rx.activate(*suite, keys.client_enc_key, keys.client_mac_key,
                  keys.client_iv);
    }
  }

  /// Reset the per-handshake negotiation state for a renegotiation. The
  /// active record codecs are untouched — the new handshake runs through
  /// them until its ChangeCipherSpec swaps in the fresh key block.
  void begin_renegotiation() {
    renegotiating = true;
    transcript.clear();
    summary.resumed = false;
    summary.ticket_resumed = false;
    summary.client_authenticated = false;
  }

  /// Mark a handshake (first or renegotiated) complete.
  void complete() {
    done = true;
    if (renegotiating) {
      renegotiating = false;
      ++summary.renegotiations;
    }
  }

  crypto::Bytes app_send(crypto::ConstBytes payload) {
    if (!done) throw HandshakeError("send_data: handshake not complete");
    // The renegotiation initiator quiesces its sends; records already in
    // flight under the old keys still drain through app_recv, in order.
    if (renegotiating)
      throw HandshakeError("send_data: renegotiation in progress");
    return write_codec.seal(RecordType::kApplicationData, config.version,
                            payload);
  }

  std::vector<crypto::Bytes> app_recv(crypto::ConstBytes wire) {
    if (!done) throw HandshakeError("recv_data: handshake not complete");
    std::vector<crypto::Bytes> records;
    const std::size_t used = split_records(wire, records);
    if (used != wire.size())
      throw HandshakeError("recv_data: trailing partial record");
    std::vector<crypto::Bytes> out;
    for (const auto& rec : records) {
      Record r = read_codec.open(rec);
      if (r.type != RecordType::kApplicationData)
        throw HandshakeError("recv_data: unexpected record type");
      out.push_back(std::move(r.payload));
    }
    return out;
  }
};

/// Open all records in `inbound` in order, invoking `on_msg` for each
/// handshake message as it is decrypted. ChangeCipherSpec activates the
/// read cipher in-stream, so a handler that derives keys from an earlier
/// message (ClientKeyExchange / resumed ServerHello) makes the following
/// encrypted Finished decryptable.
template <typename Handler>
void process_flight(Common& c, crypto::ConstBytes inbound, bool is_client,
                    Handler&& on_msg) {
  c.summary.bytes_received += inbound.size();
  std::vector<crypto::Bytes> records;
  const std::size_t used = split_records(inbound, records);
  if (used != inbound.size())
    throw HandshakeError("handshake: trailing partial record");
  for (const auto& rec : records) {
    Record r = c.read_codec.open(rec);
    switch (r.type) {
      case RecordType::kChangeCipherSpec:
        c.activate_read(is_client);
        break;
      case RecordType::kHandshake: {
        auto parsed = parse_messages(r.payload);
        for (auto& m : parsed) on_msg(m);
        break;
      }
      case RecordType::kAlert:
        throw HandshakeError("handshake: peer sent alert");
      case RecordType::kApplicationData:
        throw HandshakeError("handshake: application data before Finished");
    }
  }
}

}  // namespace

// ---- SessionCache ------------------------------------------------------------

void SessionCache::store(const crypto::Bytes& session_id, Entry entry) {
  entries_[session_id] = std::move(entry);
}

const SessionCache::Entry* SessionCache::lookup(
    const crypto::Bytes& session_id) {
  const auto it = entries_.find(session_id);
  return it == entries_.end() ? nullptr : &it->second;
}

// ---- PkJob -------------------------------------------------------------------

PkResult run_pk_job(const PkJob& job, crypto::MontCache* cache) {
  PkResult result;
  result.kind = job.kind;
  switch (job.kind) {
    case PkJob::Kind::kRsaDecrypt:
      if (job.private_key == nullptr)
        throw HandshakeError("run_pk_job: decrypt without a private key");
      result.decrypted =
          crypto::rsa_decrypt_pkcs1(*job.private_key, job.input, cache);
      break;
    case PkJob::Kind::kRsaSign:
      if (job.private_key == nullptr)
        throw HandshakeError("run_pk_job: sign without a private key");
      result.signature =
          crypto::rsa_sign_sha1(*job.private_key, job.input, cache);
      break;
    case PkJob::Kind::kRsaVerify:
      result.valid = crypto::rsa_verify_sha1(job.public_key, job.input,
                                             job.signature, cache);
      break;
  }
  return result;
}

std::vector<PkResult> run_pk_jobs(const std::vector<const PkJob*>& jobs,
                                  crypto::MontCache* cache) {
  std::vector<PkResult> results(jobs.size());
  // Split every decrypt/sign around its private operation (the
  // prepare/finish halves are the exact code run_pk_job executes), gather
  // the private ops into one interleaved CRT batch, then finish each.
  std::vector<crypto::RsaPrivateBatchOp> ops;
  std::vector<std::size_t> op_slot;  // ops[k] belongs to jobs[op_slot[k]]
  ops.reserve(jobs.size());
  op_slot.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const PkJob& job = *jobs[i];
    PkResult& result = results[i];
    result.kind = job.kind;
    switch (job.kind) {
      case PkJob::Kind::kRsaDecrypt: {
        if (job.private_key == nullptr)
          throw HandshakeError("run_pk_job: decrypt without a private key");
        crypto::BigInt c;
        if (!crypto::rsa_decrypt_pkcs1_prepare(*job.private_key, job.input,
                                               &c)) {
          result.decrypted = std::nullopt;
          break;
        }
        ops.push_back({job.private_key, std::move(c), nullptr});
        op_slot.push_back(i);
        break;
      }
      case PkJob::Kind::kRsaSign:
        if (job.private_key == nullptr)
          throw HandshakeError("run_pk_job: sign without a private key");
        ops.push_back({job.private_key,
                       crypto::rsa_sign_sha1_prepare(*job.private_key,
                                                     job.input),
                       nullptr});
        op_slot.push_back(i);
        break;
      case PkJob::Kind::kRsaVerify:
        result.valid = crypto::rsa_verify_sha1(job.public_key, job.input,
                                               job.signature, cache);
        break;
    }
  }
  const std::vector<crypto::BigInt> ms =
      crypto::rsa_private_op_crt_batch(ops, cache);
  for (std::size_t k = 0; k < ops.size(); ++k) {
    const PkJob& job = *jobs[op_slot[k]];
    PkResult& result = results[op_slot[k]];
    if (job.kind == PkJob::Kind::kRsaDecrypt) {
      result.decrypted =
          crypto::rsa_decrypt_pkcs1_finish(*job.private_key, ms[k]);
    } else {
      result.signature = crypto::rsa_sign_sha1_finish(*job.private_key, ms[k]);
    }
  }
  return results;
}

// ---- TlsClient ----------------------------------------------------------------

struct TlsClient::Impl {
  explicit Impl(HandshakeConfig cfg) : c(std::move(cfg)) {}

  enum class State { kStart, kWaitServerFlight, kWaitServerFinale, kDone };

  Common c;
  State state = State::kStart;
  crypto::Bytes resume_id;
  crypto::Bytes resume_master;
  CipherSuite resume_suite = CipherSuite::kRsa3DesEdeCbcSha;
  bool resumption_requested = false;
  crypto::Bytes offer_ticket;   // opaque blob offered in the ClientHello
  bool ticket_offered = false;  // stateless resumption requested
  crypto::Bytes fresh_ticket;   // NewSessionTicket from the latest handshake
  crypto::RsaPublicKey server_key;
  crypto::DhGroup server_group;      // from ServerKeyExchange (DHE)
  crypto::BigInt server_dh_public;
  bool have_ske = false;
  bool cert_requested = false;

  crypto::Bytes start() {
    c.client_random = c.config.rng->bytes(kRandomLen);
    crypto::Bytes body;
    put_u16(body, static_cast<std::uint16_t>(c.config.version));
    body.insert(body.end(), c.client_random.begin(), c.client_random.end());
    body.push_back(static_cast<std::uint8_t>(resume_id.size()));
    body.insert(body.end(), resume_id.begin(), resume_id.end());
    put_u16(body, static_cast<std::uint16_t>(c.config.offered_suites.size()));
    for (const CipherSuite s : c.config.offered_suites)
      put_u16(body, static_cast<std::uint16_t>(s));
    // Optional trailing ticket extension: present when the client offers
    // a ticket (stateless resumption) or merely wants one issued (empty
    // blob). Servers without ticket support parse the suites and stop, so
    // the extension is invisible to them.
    if (ticket_offered || c.config.request_session_ticket)
      put_blob16(body, offer_ticket);
    state = State::kWaitServerFlight;
    return c.send_handshake(MsgType::kClientHello, body);
  }

  void handle_server_hello(const Message& m) {
    if (m.body.size() < 2 + kRandomLen + 1)
      throw HandshakeError("ServerHello: truncated");
    std::size_t off = 0;
    const std::uint16_t version = get_u16(m.body, off);
    off += 2;
    if (version != static_cast<std::uint16_t>(c.config.version))
      throw HandshakeError("ServerHello: version mismatch");
    c.server_random.assign(
        m.body.begin() + static_cast<std::ptrdiff_t>(off),
        m.body.begin() + static_cast<std::ptrdiff_t>(off + kRandomLen));
    off += kRandomLen;
    const std::size_t sid_len = m.body[off++];
    if (m.body.size() < off + sid_len + 3)
      throw HandshakeError("ServerHello: truncated tail");
    c.summary.session_id.assign(
        m.body.begin() + static_cast<std::ptrdiff_t>(off),
        m.body.begin() + static_cast<std::ptrdiff_t>(off + sid_len));
    off += sid_len;
    const auto chosen = static_cast<CipherSuite>(get_u16(m.body, off));
    off += 2;
    const bool resumed = m.body[off] != 0;

    bool offered = false;
    for (const CipherSuite s : c.config.offered_suites)
      if (s == chosen) offered = true;
    if (!offered) throw HandshakeError("ServerHello: suite was not offered");
    c.suite = &suite_info(chosen);
    c.summary.suite = chosen;
    c.summary.key_exchange = c.suite->kx;
    c.summary.resumed = resumed;
    c.summary.ticket_resumed = false;
    if (resumed) {
      if (chosen != resume_suite)
        throw HandshakeError("ServerHello: resumed suite changed");
      if (resumption_requested && c.summary.session_id == resume_id) {
        // Stateful resumption: the server found our id in its cache.
      } else if (ticket_offered) {
        // Stateless resumption: the server recovered the session from our
        // ticket and minted a FRESH session id (it has no memory of the
        // old one; the new id feeds the bulk-key derivation).
        c.summary.ticket_resumed = true;
      } else {
        throw HandshakeError("ServerHello: unsolicited resumption");
      }
      c.master = resume_master;
      c.derive_keys();
    }
  }

  void handle_new_session_ticket(const Message& m) {
    std::size_t off = 0;
    fresh_ticket = get_blob16(m.body, off);
    if (off != m.body.size())
      throw HandshakeError("NewSessionTicket: trailing bytes");
    c.note_received(m);
  }

  void handle_certificate(const Message& m) {
    const std::vector<Certificate> chain = decode_cert_list(m.body);
    const CertVerifyResult result =
        verify_chain(chain, c.config.trusted_roots, c.config.now);
    // Each signature check is an RSA public op on the client.
    c.summary.rsa_public_ops += static_cast<int>(chain.size());
    if (result != CertVerifyResult::kOk)
      throw HandshakeError("Certificate: chain invalid (" +
                           cert_verify_result_name(result) + ")");
    server_key = chain.front().public_key;
  }

  void handle_server_key_exchange(const Message& m) {
    if (c.suite->kx != KeyExchange::kDheRsa)
      throw HandshakeError("SKE: unexpected for RSA key exchange");
    std::size_t off = 0;
    server_group.p = crypto::BigInt::from_bytes_be(get_blob16(m.body, off));
    server_group.g = crypto::BigInt::from_bytes_be(get_blob16(m.body, off));
    server_dh_public = crypto::BigInt::from_bytes_be(get_blob16(m.body, off));
    const crypto::Bytes sig = get_blob16(m.body, off);
    if (off != m.body.size()) throw HandshakeError("SKE: trailing bytes");
    // The signature binds the ephemeral parameters to both nonces.
    const crypto::Bytes signed_content = ske_signed_content(
        c.client_random, c.server_random, server_group, server_dh_public);
    c.summary.rsa_public_ops += 1;
    if (!crypto::rsa_verify_sha1(server_key, signed_content, sig))
      throw HandshakeError("SKE: bad parameter signature");
    have_ske = true;
  }

  /// Key agreement: returns the premaster secret and appends the CKE
  /// message to `out`.
  crypto::Bytes key_exchange_premaster(crypto::Bytes& out) {
    if (c.suite->kx == KeyExchange::kRsa) {
      // Premaster: version || 46 random bytes, RSA-encrypted to the server.
      crypto::Bytes premaster;
      premaster.reserve(kPremasterLen);
      put_u16(premaster, static_cast<std::uint16_t>(c.config.version));
      const crypto::Bytes rand = c.config.rng->bytes(kPremasterLen - 2);
      premaster.insert(premaster.end(), rand.begin(), rand.end());

      const crypto::Bytes encrypted =
          rsa_encrypt_pkcs1(server_key, premaster, *c.config.rng);
      c.summary.rsa_public_ops += 1;

      crypto::Bytes cke;
      put_blob16(cke, encrypted);
      const crypto::Bytes wire =
          c.send_handshake(MsgType::kClientKeyExchange, cke);
      out.insert(out.end(), wire.begin(), wire.end());
      return premaster;
    }
    // DHE: generate the client ephemeral in the server's group, send the
    // public value, agree on the shared secret.
    if (!have_ske) throw HandshakeError("DHE suite but no SKE received");
    const crypto::DhKeyPair mine =
        crypto::dh_generate(server_group, *c.config.rng);
    const crypto::BigInt premaster_z =
        crypto::dh_shared_secret(server_group, mine.private_key,
                                 server_dh_public);
    c.summary.dh_ops += 2;  // keygen + agreement
    crypto::Bytes cke;
    put_blob16(cke, mine.public_key.to_bytes_be());
    const crypto::Bytes wire =
        c.send_handshake(MsgType::kClientKeyExchange, cke);
    out.insert(out.end(), wire.begin(), wire.end());
    return premaster_z.to_bytes_be();
  }

  crypto::Bytes full_handshake_reply() {
    crypto::Bytes out;

    // Client certificate (empty list when we have no credentials).
    const bool have_creds = !c.config.client_cert_chain.empty() &&
                            c.config.client_private_key != nullptr;
    if (cert_requested) {
      const crypto::Bytes wire = c.send_handshake(
          MsgType::kCertificate,
          encode_cert_list(have_creds ? c.config.client_cert_chain
                                      : std::vector<Certificate>{}));
      out.insert(out.end(), wire.begin(), wire.end());
    }

    const crypto::Bytes premaster = key_exchange_premaster(out);
    c.master =
        derive_master_secret(premaster, c.client_random, c.server_random);
    c.derive_keys();

    // Prove possession of the client key over the transcript so far.
    if (cert_requested && have_creds) {
      const crypto::Bytes sig =
          crypto::rsa_sign_sha1(*c.config.client_private_key, c.transcript);
      c.summary.rsa_private_ops += 1;
      crypto::Bytes body;
      put_blob16(body, sig);
      const crypto::Bytes wire =
          c.send_handshake(MsgType::kCertificateVerify, body);
      out.insert(out.end(), wire.begin(), wire.end());
    }

    const crypto::Bytes ccs = c.send_ccs_and_activate(/*is_client=*/true);
    out.insert(out.end(), ccs.begin(), ccs.end());
    const crypto::Bytes fin =
        c.send_handshake(MsgType::kFinished, c.make_finished(true));
    out.insert(out.end(), fin.begin(), fin.end());
    state = State::kWaitServerFinale;
    return out;
  }

  crypto::Bytes on_server_flight(crypto::ConstBytes inbound) {
    bool seen_hello = false, seen_cert = false, seen_done = false;
    bool seen_server_finished = false;
    process_flight(c, inbound, /*is_client=*/true, [&](const Message& m) {
      if (!seen_hello) {
        if (m.type != MsgType::kServerHello)
          throw HandshakeError("expected ServerHello");
        handle_server_hello(m);  // resumed path derives keys here
        c.note_received(m);
        seen_hello = true;
        return;
      }
      if (c.summary.resumed) {
        if (m.type == MsgType::kNewSessionTicket && !seen_server_finished) {
          handle_new_session_ticket(m);  // re-issued under the current key
          return;
        }
        if (m.type != MsgType::kFinished)
          throw HandshakeError("resumption: expected server Finished");
        c.check_finished(m, /*client_label=*/false);
        c.note_received(m);
        seen_server_finished = true;
        return;
      }
      switch (m.type) {
        case MsgType::kCertificate:
          handle_certificate(m);
          c.note_received(m);
          seen_cert = true;
          break;
        case MsgType::kServerKeyExchange:
          if (!seen_cert) throw HandshakeError("SKE before Certificate");
          handle_server_key_exchange(m);
          c.note_received(m);
          break;
        case MsgType::kCertificateRequest:
          c.note_received(m);
          cert_requested = true;
          break;
        case MsgType::kServerHelloDone:
          c.note_received(m);
          seen_done = true;
          break;
        default:
          throw HandshakeError("unexpected message in server flight");
      }
    });
    if (!seen_hello) throw HandshakeError("expected ServerHello");

    if (c.summary.resumed) {
      if (!seen_server_finished)
        throw HandshakeError("resumption: missing server Finished");
      crypto::Bytes out = c.send_ccs_and_activate(/*is_client=*/true);
      const crypto::Bytes fin =
          c.send_handshake(MsgType::kFinished, c.make_finished(true));
      out.insert(out.end(), fin.begin(), fin.end());
      c.complete();
      state = State::kDone;
      return out;
    }

    if (!seen_cert || !seen_done)
      throw HandshakeError("expected Certificate + ServerHelloDone");
    return full_handshake_reply();
  }

  crypto::Bytes on_server_finale(crypto::ConstBytes inbound) {
    bool seen_finished = false;
    process_flight(c, inbound, /*is_client=*/true, [&](const Message& m) {
      if (m.type == MsgType::kNewSessionTicket && !seen_finished) {
        handle_new_session_ticket(m);
        return;
      }
      if (m.type != MsgType::kFinished || seen_finished)
        throw HandshakeError("expected server Finished");
      c.check_finished(m, /*client_label=*/false);
      c.note_received(m);
      seen_finished = true;
    });
    if (!seen_finished) throw HandshakeError("expected server Finished");
    c.complete();
    state = State::kDone;
    return {};
  }

  crypto::Bytes start_renegotiate(const RenegotiateOptions& options) {
    if (!c.done || state != State::kDone)
      throw HandshakeError("renegotiate: no established session");
    if (!c.config.allow_renegotiation)
      throw HandshakeError("renegotiate: not allowed by configuration");
    if (c.renegotiating)
      throw HandshakeError("renegotiate: already in progress");
    c.begin_renegotiation();
    have_ske = false;
    cert_requested = false;
    if (!options.offered_suites.empty())
      c.config.offered_suites = options.offered_suites;
    // Resumption basis for the rekey: the ticket issued this session when
    // we hold one (stateless), the current session id otherwise.
    resumption_requested = false;
    ticket_offered = false;
    resume_id.clear();
    offer_ticket.clear();
    if (options.attempt_resume) {
      resume_master = c.master;
      resume_suite = c.summary.suite;
      if (!fresh_ticket.empty()) {
        offer_ticket = fresh_ticket;
        ticket_offered = true;
      } else {
        resume_id = c.summary.session_id;
        resumption_requested = true;
      }
    }
    state = State::kStart;
    return start();
  }

  /// Post-handshake flight while established: the only message a client
  /// accepts is the server's HelloRequest, which (renegotiation being
  /// allowed) triggers a client-initiated renegotiation offering the
  /// current session for resumption. HelloRequest is never part of a
  /// transcript.
  crypto::Bytes on_post_handshake(crypto::ConstBytes inbound) {
    if (!c.config.allow_renegotiation)
      throw HandshakeError("client: handshake already complete");
    bool hello_request = false;
    process_flight(c, inbound, /*is_client=*/true, [&](const Message& m) {
      if (m.type != MsgType::kHelloRequest || !m.body.empty())
        throw HandshakeError("client: unexpected post-handshake message");
      hello_request = true;
    });
    if (!hello_request) return {};
    return start_renegotiate(RenegotiateOptions{});
  }
};

TlsClient::TlsClient(HandshakeConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

TlsClient::~TlsClient() = default;

void TlsClient::set_resume_session(crypto::ConstBytes session_id,
                                   crypto::ConstBytes master_secret,
                                   CipherSuite suite) {
  impl_->resume_id.assign(session_id.begin(), session_id.end());
  impl_->resume_master.assign(master_secret.begin(), master_secret.end());
  impl_->resume_suite = suite;
  impl_->resumption_requested = true;
}

void TlsClient::set_resume_ticket(crypto::ConstBytes ticket,
                                  crypto::ConstBytes master_secret,
                                  CipherSuite suite) {
  impl_->offer_ticket.assign(ticket.begin(), ticket.end());
  impl_->resume_master.assign(master_secret.begin(), master_secret.end());
  impl_->resume_suite = suite;
  impl_->ticket_offered = true;
}

const crypto::Bytes& TlsClient::session_ticket() const {
  return impl_->fresh_ticket;
}

bool TlsClient::has_session_ticket() const {
  return !impl_->fresh_ticket.empty();
}

crypto::Bytes TlsClient::start_renegotiate(const RenegotiateOptions& options) {
  return impl_->start_renegotiate(options);
}

bool TlsClient::renegotiating() const { return impl_->c.renegotiating; }

crypto::Bytes TlsClient::process(crypto::ConstBytes inbound) {
  switch (impl_->state) {
    case Impl::State::kStart:
      if (!inbound.empty())
        throw HandshakeError("client: unexpected data before start");
      return impl_->start();
    case Impl::State::kWaitServerFlight:
      return impl_->on_server_flight(inbound);
    case Impl::State::kWaitServerFinale:
      return impl_->on_server_finale(inbound);
    case Impl::State::kDone:
      return impl_->on_post_handshake(inbound);
  }
  return {};
}

bool TlsClient::established() const { return impl_->c.done; }

const HandshakeSummary& TlsClient::summary() const {
  return impl_->c.summary;
}

crypto::Bytes TlsClient::send_data(crypto::ConstBytes payload) {
  return impl_->c.app_send(payload);
}

std::vector<crypto::Bytes> TlsClient::recv_data(crypto::ConstBytes wire) {
  return impl_->c.app_recv(wire);
}

void TlsClient::setup_datagram(DatagramRecordCodec& tx,
                               DatagramRecordCodec& rx) {
  impl_->c.setup_datagram_codecs(/*is_client=*/true, tx, rx);
}

const crypto::Bytes& TlsClient::master_secret() const {
  return impl_->c.master;
}

// ---- TlsServer ----------------------------------------------------------------

struct TlsServer::Impl {
  Impl(HandshakeConfig cfg, SessionCache* cache_in)
      : c(std::move(cfg)), cache(cache_in) {
    if (c.config.cert_chain.empty() || c.config.private_key == nullptr)
      throw std::invalid_argument("TlsServer: certificate chain and key required");
  }

  enum class State { kWaitClientHello, kWaitClientFlight, kWaitClientFinale, kDone };

  /// Which continuation a pending PkJob resumes into (async_pk mode).
  enum class PkWait : std::uint8_t {
    kNone,
    kSkeSign,     // DHE ServerKeyExchange signature, mid server flight
    kCkeDecrypt,  // ClientKeyExchange premaster decrypt, mid client flight
    kCertVerify,  // CertificateVerify check, mid client flight
  };

  Common c;
  SessionCache* cache;
  State state = State::kWaitClientHello;
  crypto::BigInt dhe_private;          // server ephemeral (DHE suites)
  std::vector<Certificate> client_chain;
  bool client_cert_seen = false;
  bool client_verify_seen = false;

  // Asynchronous-mode continuation state. The suspended flight's partial
  // output is held back (the client expects whole flights in one
  // process() call), and the not-yet-opened records of the inbound flight
  // wait in `pending_records` — they must stay sealed because the
  // encrypted Finished is only decryptable after the CKE decrypt derives
  // the keys and the in-stream CCS activates the read cipher.
  std::optional<PkJob> pending_job;
  PkWait pk_wait = PkWait::kNone;
  Message suspended_msg;       // CKE/CV message awaiting its PkResult
  crypto::Bytes partial_out;   // server-flight bytes already produced
  crypto::BigInt ske_public;   // DHE ephemeral public value (SKE resume)
  std::deque<crypto::Bytes> pending_records;  // sealed records, in order
  std::deque<Message> pending_msgs;           // parsed, unhandled messages
  bool seen_cke = false;
  bool seen_finished = false;

  // Ticket extension of the ClientHello being processed: the offered
  // blob (may be empty = issuance request only) and whether the
  // extension was present at all.
  crypto::Bytes hello_ticket;
  bool hello_wants_ticket = false;

  bool async_pk() const { return c.config.async_pk; }

  void suspend(PkJob job, PkWait wait, Message msg = {}) {
    pending_job = std::move(job);
    pk_wait = wait;
    suspended_msg = std::move(msg);
  }

  crypto::Bytes server_hello(CipherSuite chosen, bool resumed) {
    crypto::Bytes body;
    put_u16(body, static_cast<std::uint16_t>(c.config.version));
    c.server_random = c.config.rng->bytes(kRandomLen);
    body.insert(body.end(), c.server_random.begin(), c.server_random.end());
    body.push_back(static_cast<std::uint8_t>(c.summary.session_id.size()));
    body.insert(body.end(), c.summary.session_id.begin(),
                c.summary.session_id.end());
    put_u16(body, static_cast<std::uint16_t>(chosen));
    body.push_back(resumed ? 1 : 0);
    return c.send_handshake(MsgType::kServerHello, body);
  }

  crypto::Bytes certificate_message() {
    return c.send_handshake(MsgType::kCertificate,
                            encode_cert_list(c.config.cert_chain));
  }

  /// ServerKeyExchange message from an already computed signature. The
  /// ephemeral (ske_public/dhe_private) and the rsa_private_ops count are
  /// established by the caller, so the synchronous and asynchronous paths
  /// produce byte-identical transcripts.
  crypto::Bytes ske_message(const crypto::Bytes& sig) {
    crypto::Bytes body;
    put_blob16(body, c.config.dhe_group.p.to_bytes_be());
    put_blob16(body, c.config.dhe_group.g.to_bytes_be());
    put_blob16(body, ske_public.to_bytes_be());
    put_blob16(body, sig);
    return c.send_handshake(MsgType::kServerKeyExchange, body);
  }

  /// The rest of the server flight after the (possibly deferred) SKE:
  /// optional CertificateRequest, then ServerHelloDone.
  crypto::Bytes server_flight_tail() {
    crypto::Bytes out;
    if (c.config.request_client_auth) {
      const crypto::Bytes req =
          c.send_handshake(MsgType::kCertificateRequest, {});
      out.insert(out.end(), req.begin(), req.end());
    }
    const crypto::Bytes done = c.send_handshake(MsgType::kServerHelloDone, {});
    out.insert(out.end(), done.begin(), done.end());
    state = State::kWaitClientFlight;
    return out;
  }

  crypto::Bytes on_client_hello(crypto::ConstBytes inbound) {
    std::vector<Message> msgs;
    process_flight(c, inbound, /*is_client=*/false,
                   [&](const Message& m) { msgs.push_back(m); });
    if (msgs.size() != 1 || msgs[0].type != MsgType::kClientHello)
      throw HandshakeError("expected ClientHello");
    const Message& m = msgs[0];
    if (m.body.size() < 2 + kRandomLen + 1)
      throw HandshakeError("ClientHello: truncated");
    std::size_t off = 0;
    const std::uint16_t version = get_u16(m.body, off);
    off += 2;
    if (version != static_cast<std::uint16_t>(c.config.version))
      throw HandshakeError("ClientHello: version mismatch");
    c.client_random.assign(
        m.body.begin() + static_cast<std::ptrdiff_t>(off),
        m.body.begin() + static_cast<std::ptrdiff_t>(off + kRandomLen));
    off += kRandomLen;
    const std::size_t sid_len = m.body[off++];
    if (m.body.size() < off + sid_len + 2)
      throw HandshakeError("ClientHello: truncated session id");
    const crypto::Bytes requested_sid(
        m.body.begin() + static_cast<std::ptrdiff_t>(off),
        m.body.begin() + static_cast<std::ptrdiff_t>(off + sid_len));
    off += sid_len;
    const std::size_t suite_count = get_u16(m.body, off);
    off += 2;
    if (m.body.size() < off + 2 * suite_count)
      throw HandshakeError("ClientHello: truncated suite list");
    std::vector<CipherSuite> offered;
    for (std::size_t i = 0; i < suite_count; ++i) {
      offered.push_back(static_cast<CipherSuite>(get_u16(m.body, off)));
      off += 2;
    }
    // Optional trailing ticket extension (empty blob = issuance request).
    hello_ticket.clear();
    hello_wants_ticket = false;
    if (off < m.body.size()) {
      std::size_t ext_off = off;
      hello_ticket = get_blob16(m.body, ext_off);
      if (ext_off != m.body.size())
        throw HandshakeError("ClientHello: trailing bytes");
      hello_wants_ticket = true;
    }
    c.note_received(m);

    // A renegotiation may be pinned to a full handshake (fresh master) by
    // policy — e.g. after suspected key compromise.
    const bool resumption_allowed =
        !c.renegotiating || c.config.resume_on_renegotiate;

    // Stateless resumption: decrypt+MAC only — no cache bytes, no
    // public-key op (the async_pk machinery is never engaged here). Tried
    // before the cache and before the degraded-mode refusal, so ticket
    // holders keep resuming while an overloaded server sheds full
    // handshakes. Any open failure (stale key beyond the ring's window,
    // bad MAC, expiry, garbage) falls through to a full handshake — a bad
    // ticket must never kill the connection.
    if (resumption_allowed && c.config.ticket_codec != nullptr &&
        !hello_ticket.empty()) {
      if (std::optional<ticket::SessionTicket> t =
              c.config.ticket_codec->open(hello_ticket,
                                          c.config.ticket_now_us)) {
        const auto suite = static_cast<CipherSuite>(t->suite);
        bool still_offered = false;
        for (const CipherSuite s : offered)
          if (s == suite) still_offered = true;
        if (still_offered) return resume_ticket(*t, suite);
      }
    }

    // Stateful resumption path.
    if (resumption_allowed && cache != nullptr && !requested_sid.empty()) {
      if (const auto* entry = cache->lookup(requested_sid)) {
        bool still_offered = false;
        for (const CipherSuite s : offered)
          if (s == entry->suite) still_offered = true;
        if (still_offered) return resume(requested_sid, *entry);
      }
    }

    // Degraded mode: the refusal happens here, before the certificate
    // flight and long before the RSA private operation, so a shed full
    // handshake costs the server only the ClientHello parse.
    if (c.config.resumption_only)
      throw HandshakeError("full handshake refused: resumption only");

    // Suite selection: first of *our* preference list the client offered.
    CipherSuite chosen{};
    bool found = false;
    for (const CipherSuite mine : c.config.offered_suites) {
      for (const CipherSuite theirs : offered) {
        if (mine == theirs) {
          chosen = mine;
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (!found) throw HandshakeError("no common cipher suite");
    c.suite = &suite_info(chosen);
    c.summary.suite = chosen;
    c.summary.key_exchange = c.suite->kx;
    c.summary.session_id = c.config.rng->bytes(kSessionIdLen);

    crypto::Bytes out = server_hello(chosen, /*resumed=*/false);
    const crypto::Bytes certs = certificate_message();
    out.insert(out.end(), certs.begin(), certs.end());
    if (c.suite->kx == KeyExchange::kDheRsa) {
      // Fresh ephemeral per connection: forward secrecy.
      const crypto::DhKeyPair eph =
          crypto::dh_generate(c.config.dhe_group, *c.config.rng);
      dhe_private = eph.private_key;
      ske_public = eph.public_key;
      c.summary.dh_ops += 1;
      const crypto::Bytes signed_content =
          ske_signed_content(c.client_random, c.server_random,
                             c.config.dhe_group, ske_public);
      if (async_pk()) {
        // Hold the partial flight and yield the private-key signature.
        partial_out = std::move(out);
        PkJob job;
        job.kind = PkJob::Kind::kRsaSign;
        job.private_key = c.config.private_key;
        job.input = signed_content;
        suspend(std::move(job), PkWait::kSkeSign);
        return {};
      }
      const crypto::Bytes sig =
          crypto::rsa_sign_sha1(*c.config.private_key, signed_content);
      c.summary.rsa_private_ops += 1;
      const crypto::Bytes ske = ske_message(sig);
      out.insert(out.end(), ske.begin(), ske.end());
    }
    const crypto::Bytes tail = server_flight_tail();
    out.insert(out.end(), tail.begin(), tail.end());
    return out;
  }

  /// NewSessionTicket message when the client asked for one and we can
  /// issue (empty otherwise). Always sealed under the ring's CURRENT key:
  /// re-issuance on every handshake — including ticket resumptions — is
  /// what keeps a rotating ring from ever stranding an honest client.
  crypto::Bytes issue_ticket() {
    if (c.config.ticket_codec == nullptr || !hello_wants_ticket) return {};
    ticket::SessionTicket t;
    t.master_secret = c.master;
    t.suite = static_cast<std::uint16_t>(c.summary.suite);
    t.issued_at_us = c.config.ticket_now_us;
    t.client_binding = ticket::client_binding_for(c.master);
    crypto::Bytes body;
    put_blob16(body, c.config.ticket_codec->seal(t, *c.config.rng));
    return c.send_handshake(MsgType::kNewSessionTicket, body);
  }

  /// Abbreviated-handshake server flight: ServerHello(resumed) + optional
  /// NewSessionTicket + CCS + Finished. Caller has set suite/master/sid.
  crypto::Bytes abbreviated_flight(CipherSuite suite) {
    crypto::Bytes out = server_hello(suite, /*resumed=*/true);
    c.derive_keys();
    const crypto::Bytes nst = issue_ticket();
    out.insert(out.end(), nst.begin(), nst.end());
    const crypto::Bytes ccs = c.send_ccs_and_activate(/*is_client=*/false);
    out.insert(out.end(), ccs.begin(), ccs.end());
    const crypto::Bytes fin =
        c.send_handshake(MsgType::kFinished, c.make_finished(false));
    out.insert(out.end(), fin.begin(), fin.end());
    state = State::kWaitClientFinale;
    return out;
  }

  crypto::Bytes resume(const crypto::Bytes& sid,
                       const SessionCache::Entry& entry) {
    c.suite = &suite_info(entry.suite);
    c.summary.suite = entry.suite;
    c.summary.resumed = true;
    c.summary.ticket_resumed = false;
    c.summary.session_id = sid;
    c.master = entry.master_secret;
    return abbreviated_flight(entry.suite);
  }

  crypto::Bytes resume_ticket(const ticket::SessionTicket& t,
                              CipherSuite suite) {
    c.suite = &suite_info(suite);
    c.summary.suite = suite;
    c.summary.resumed = true;
    c.summary.ticket_resumed = true;
    // The server kept no state, so the old session id means nothing; mint
    // a fresh one (it salts the bulk-key derivation and is echoed in the
    // ServerHello for the client to adopt).
    c.summary.session_id = c.config.rng->bytes(kSessionIdLen);
    c.master = t.master_secret;
    return abbreviated_flight(suite);
  }

  void handle_client_certificate(const Message& m) {
    client_chain = decode_cert_list(m.body);
    client_cert_seen = true;
    if (client_chain.empty()) {
      // Client declined. Policy decides.
      if (c.config.require_client_auth)
        throw HandshakeError("client certificate required");
      return;
    }
    const CertVerifyResult result =
        verify_chain(client_chain, c.config.trusted_roots, c.config.now);
    c.summary.rsa_public_ops += static_cast<int>(client_chain.size());
    if (result != CertVerifyResult::kOk)
      throw HandshakeError("client certificate chain invalid (" +
                           cert_verify_result_name(result) + ")");
  }

  /// CertificateVerify epilogue shared by the sync and async paths; runs
  /// after the verification outcome is known.
  void finish_certificate_verify(const Message& m, bool valid) {
    c.summary.rsa_public_ops += 1;
    if (!valid) throw HandshakeError("CertificateVerify: bad signature");
    c.summary.client_authenticated = true;
    client_verify_seen = true;
    c.note_received(m);
  }

  /// RSA ClientKeyExchange epilogue shared by the sync and async paths;
  /// runs after the private-key decrypt produced `decrypted`.
  void finish_cke_rsa(const Message& cke,
                      const std::optional<crypto::Bytes>& decrypted) {
    c.summary.rsa_private_ops += 1;
    if (!decrypted || decrypted->size() != kPremasterLen ||
        get_u16(*decrypted, 0) != static_cast<std::uint16_t>(c.config.version))
      throw HandshakeError("CKE: bad premaster");
    finish_cke(cke, *decrypted);
  }

  void finish_cke(const Message& cke, const crypto::Bytes& premaster) {
    c.note_received(cke);
    c.master =
        derive_master_secret(premaster, c.client_random, c.server_random);
    c.derive_keys();
    seen_cke = true;
    // Keys are now in place, so the CCS record that follows in this same
    // flight can activate the read cipher and the encrypted Finished will
    // decrypt.
  }

  /// Handle one message of the client flight. Returns false when the
  /// handshake suspended on a PkJob (async_pk mode) — the message is
  /// parked in `suspended_msg` and resume_pk() finishes it.
  bool handle_client_flight_msg(Message& m) {
    switch (m.type) {
      case MsgType::kCertificate:
        if (seen_cke || client_cert_seen)
          throw HandshakeError("Certificate out of order");
        if (!c.config.request_client_auth)
          throw HandshakeError("unsolicited client certificate");
        handle_client_certificate(m);
        c.note_received(m);
        return true;
      case MsgType::kClientKeyExchange: {
        if (seen_cke) throw HandshakeError("duplicate CKE");
        if (c.config.request_client_auth && !client_cert_seen)
          throw HandshakeError("expected client Certificate before CKE");
        std::size_t off = 0;
        const crypto::Bytes payload = get_blob16(m.body, off);
        if (off != m.body.size()) throw HandshakeError("CKE: trailing bytes");
        if (c.suite->kx == KeyExchange::kRsa) {
          if (async_pk()) {
            PkJob job;
            job.kind = PkJob::Kind::kRsaDecrypt;
            job.private_key = c.config.private_key;
            job.input = payload;
            suspend(std::move(job), PkWait::kCkeDecrypt, std::move(m));
            return false;
          }
          finish_cke_rsa(m, rsa_decrypt_pkcs1(*c.config.private_key, payload));
          return true;
        }
        const crypto::BigInt client_public =
            crypto::BigInt::from_bytes_be(payload);
        const crypto::Bytes premaster =
            crypto::dh_shared_secret(c.config.dhe_group, dhe_private,
                                     client_public)
                .to_bytes_be();
        c.summary.dh_ops += 1;
        finish_cke(m, premaster);
        return true;
      }
      case MsgType::kCertificateVerify: {
        if (!seen_cke || client_verify_seen)
          throw HandshakeError("CertificateVerify out of order");
        if (client_chain.empty())
          throw HandshakeError("CertificateVerify without a certificate");
        std::size_t off = 0;
        const crypto::Bytes sig = get_blob16(m.body, off);
        if (off != m.body.size()) throw HandshakeError("CV: trailing bytes");
        // Signature covers the transcript up to (not including) this
        // message.
        if (async_pk()) {
          PkJob job;
          job.kind = PkJob::Kind::kRsaVerify;
          job.public_key = client_chain.front().public_key;
          job.input = c.transcript;
          job.signature = sig;
          suspend(std::move(job), PkWait::kCertVerify, std::move(m));
          return false;
        }
        finish_certificate_verify(
            m, crypto::rsa_verify_sha1(client_chain.front().public_key,
                                       c.transcript, sig));
        return true;
      }
      case MsgType::kFinished:
        if (!seen_cke || seen_finished)
          throw HandshakeError("Finished out of order");
        if (c.config.require_client_auth && !c.summary.client_authenticated)
          throw HandshakeError("client authentication required");
        if (!client_chain.empty() && !client_verify_seen)
          throw HandshakeError(
              "client certificate without proof of possession");
        c.check_finished(m, /*client_label=*/true);
        c.note_received(m);
        seen_finished = true;
        return true;
      default:
        throw HandshakeError("unexpected message in client flight");
    }
  }

  /// Open and handle the parked records/messages of the client flight in
  /// order. Returns the server finale once the flight is fully consumed,
  /// or an empty value if the handshake suspended on a PkJob.
  crypto::Bytes drain_client_flight() {
    for (;;) {
      while (!pending_msgs.empty()) {
        Message m = std::move(pending_msgs.front());
        pending_msgs.pop_front();
        if (!handle_client_flight_msg(m)) return {};
      }
      if (pending_records.empty()) break;
      const crypto::Bytes rec = std::move(pending_records.front());
      pending_records.pop_front();
      Record r = c.read_codec.open(rec);
      switch (r.type) {
        case RecordType::kChangeCipherSpec:
          c.activate_read(/*is_client=*/false);
          break;
        case RecordType::kHandshake: {
          auto parsed = parse_messages(r.payload);
          for (auto& m : parsed) pending_msgs.push_back(std::move(m));
          break;
        }
        case RecordType::kAlert:
          throw HandshakeError("handshake: peer sent alert");
        case RecordType::kApplicationData:
          throw HandshakeError("handshake: application data before Finished");
      }
    }
    return finish_client_flight();
  }

  crypto::Bytes finish_client_flight() {
    if (!seen_cke || !seen_finished)
      throw HandshakeError("expected ClientKeyExchange + Finished");

    crypto::Bytes out = issue_ticket();
    const crypto::Bytes ccs = c.send_ccs_and_activate(/*is_client=*/false);
    out.insert(out.end(), ccs.begin(), ccs.end());
    const crypto::Bytes fin =
        c.send_handshake(MsgType::kFinished, c.make_finished(false));
    out.insert(out.end(), fin.begin(), fin.end());

    if (cache != nullptr)
      cache->store(c.summary.session_id, {c.master, c.summary.suite});
    c.complete();
    state = State::kDone;
    return out;
  }

  crypto::Bytes on_client_flight(crypto::ConstBytes inbound) {
    c.summary.bytes_received += inbound.size();
    std::vector<crypto::Bytes> records;
    const std::size_t used = split_records(inbound, records);
    if (used != inbound.size())
      throw HandshakeError("handshake: trailing partial record");
    for (auto& rec : records) pending_records.push_back(std::move(rec));
    return drain_client_flight();
  }

  /// Complete the suspended operation with its result and continue the
  /// interrupted flight exactly where the synchronous path would have.
  crypto::Bytes resume_pk(const PkResult& result) {
    if (!pending_job)
      throw HandshakeError("resume_pk: no pending operation");
    if (result.kind != pending_job->kind)
      throw HandshakeError("resume_pk: result kind mismatch");
    const PkWait wait = pk_wait;
    pending_job.reset();
    pk_wait = PkWait::kNone;
    switch (wait) {
      case PkWait::kSkeSign: {
        c.summary.rsa_private_ops += 1;
        crypto::Bytes out = std::move(partial_out);
        partial_out.clear();
        const crypto::Bytes ske = ske_message(result.signature);
        out.insert(out.end(), ske.begin(), ske.end());
        const crypto::Bytes tail = server_flight_tail();
        out.insert(out.end(), tail.begin(), tail.end());
        return out;
      }
      case PkWait::kCkeDecrypt: {
        const Message m = std::move(suspended_msg);
        suspended_msg = {};
        finish_cke_rsa(m, result.decrypted);
        return drain_client_flight();
      }
      case PkWait::kCertVerify: {
        const Message m = std::move(suspended_msg);
        suspended_msg = {};
        finish_certificate_verify(m, result.valid);
        return drain_client_flight();
      }
      case PkWait::kNone:
        break;
    }
    throw HandshakeError("resume_pk: no pending operation");
  }

  crypto::Bytes on_client_finale(crypto::ConstBytes inbound) {
    bool seen_finished = false;
    process_flight(c, inbound, /*is_client=*/false, [&](const Message& m) {
      if (m.type != MsgType::kFinished || seen_finished)
        throw HandshakeError("expected client Finished");
      c.check_finished(m, /*client_label=*/true);
      c.note_received(m);
      seen_finished = true;
    });
    if (!seen_finished) throw HandshakeError("expected client Finished");
    c.complete();
    state = State::kDone;
    return {};
  }

  /// Server-initiated renegotiation: a HelloRequest sealed under the
  /// current write cipher. Deliberately NOT send_handshake — HelloRequest
  /// belongs to no transcript. No state changes here; the renegotiation
  /// proper begins when the client's ClientHello arrives.
  crypto::Bytes request_renegotiate() {
    if (!c.done || state != State::kDone)
      throw HandshakeError("renegotiate: no established session");
    if (!c.config.allow_renegotiation)
      throw HandshakeError("renegotiate: not allowed by configuration");
    const crypto::Bytes msg = frame_message(MsgType::kHelloRequest, {});
    const crypto::Bytes wire =
        c.write_codec.seal(RecordType::kHandshake, c.config.version, msg);
    c.summary.bytes_sent += wire.size();
    return wire;
  }

  /// A flight arriving on an established session: renegotiation entry
  /// (when allowed) — reset the per-handshake state and treat the flight
  /// as a fresh ClientHello through the live record layer.
  crypto::Bytes on_post_handshake(crypto::ConstBytes inbound) {
    if (!c.config.allow_renegotiation)
      throw HandshakeError("server: handshake already complete");
    c.begin_renegotiation();
    client_chain.clear();
    client_cert_seen = false;
    client_verify_seen = false;
    seen_cke = false;
    seen_finished = false;
    pending_records.clear();
    pending_msgs.clear();
    partial_out.clear();
    state = State::kWaitClientHello;
    return on_client_hello(inbound);
  }
};

TlsServer::TlsServer(HandshakeConfig config, SessionCache* cache)
    : impl_(std::make_unique<Impl>(std::move(config), cache)) {}

TlsServer::~TlsServer() = default;

crypto::Bytes TlsServer::process(crypto::ConstBytes inbound) {
  if (impl_->pending_job)
    throw HandshakeError("server: flight received while pk operation pending");
  switch (impl_->state) {
    case Impl::State::kWaitClientHello:
      return impl_->on_client_hello(inbound);
    case Impl::State::kWaitClientFlight:
      return impl_->on_client_flight(inbound);
    case Impl::State::kWaitClientFinale:
      return impl_->on_client_finale(inbound);
    case Impl::State::kDone:
      return impl_->on_post_handshake(inbound);
  }
  return {};
}

crypto::Bytes TlsServer::request_renegotiate() {
  return impl_->request_renegotiate();
}

bool TlsServer::renegotiating() const { return impl_->c.renegotiating; }

bool TlsServer::established() const { return impl_->c.done; }

const HandshakeSummary& TlsServer::summary() const {
  return impl_->c.summary;
}

crypto::Bytes TlsServer::send_data(crypto::ConstBytes payload) {
  return impl_->c.app_send(payload);
}

std::vector<crypto::Bytes> TlsServer::recv_data(crypto::ConstBytes wire) {
  return impl_->c.app_recv(wire);
}

void TlsServer::setup_datagram(DatagramRecordCodec& tx,
                               DatagramRecordCodec& rx) {
  impl_->c.setup_datagram_codecs(/*is_client=*/false, tx, rx);
}

const crypto::Bytes& TlsServer::master_secret() const {
  return impl_->c.master;
}

bool TlsServer::pk_pending() const { return impl_->pending_job.has_value(); }

const PkJob& TlsServer::pending_pk_job() const {
  if (!impl_->pending_job)
    throw HandshakeError("pending_pk_job: no pending operation");
  return *impl_->pending_job;
}

crypto::Bytes TlsServer::resume_pk(const PkResult& result) {
  return impl_->resume_pk(result);
}

// ---- driver -------------------------------------------------------------------

HandshakeStep step_handshake(HandshakeEndpoint& endpoint,
                             crypto::ConstBytes inbound) {
  HandshakeStep step;
  if (!endpoint.established()) step.output = endpoint.process(inbound);
  step.established = endpoint.established();
  step.pk_pending = endpoint.pk_pending();
  return step;
}

namespace {

/// In-memory driver support for async_pk servers: execute pending jobs
/// inline so the endpoint behaves exactly like its synchronous twin.
HandshakeStep service_pending_pk(HandshakeEndpoint& endpoint,
                                 HandshakeStep step) {
  auto* server = dynamic_cast<TlsServer*>(&endpoint);
  while (server != nullptr && server->pk_pending()) {
    const PkResult result = run_pk_job(server->pending_pk_job());
    const crypto::Bytes more = server->resume_pk(result);
    step.output.insert(step.output.end(), more.begin(), more.end());
    step.established = server->established();
    step.pk_pending = server->pk_pending();
  }
  return step;
}

}  // namespace

void run_handshake(HandshakeEndpoint& client, HandshakeEndpoint& server,
                   std::vector<TappedFlight>* tap) {
  crypto::Bytes to_server = step_handshake(client, {}).output;
  int rounds = 0;
  while (!(client.established() && server.established())) {
    if (++rounds > 8) throw HandshakeError("run_handshake: no progress");
    if (tap && !to_server.empty()) tap->push_back({true, to_server});
    const HandshakeStep reply =
        service_pending_pk(server, step_handshake(server, to_server));
    if (reply.output.empty() && reply.established && client.established())
      break;
    if (tap && !reply.output.empty()) tap->push_back({false, reply.output});
    if (client.established() && reply.output.empty()) break;
    to_server = step_handshake(client, reply.output).output;
  }
}

}  // namespace mapsec::protocol
