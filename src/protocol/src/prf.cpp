#include "mapsec/protocol/prf.hpp"

#include "mapsec/crypto/hmac.hpp"

namespace mapsec::protocol {

namespace {

template <typename H>
crypto::Bytes p_hash(crypto::ConstBytes secret, crypto::ConstBytes seed,
                     std::size_t out_len) {
  crypto::Bytes out;
  out.reserve(out_len + H::kDigestSize);
  // A(0) = seed; A(i) = HMAC(secret, A(i-1));
  // output = HMAC(secret, A(1) || seed) || HMAC(secret, A(2) || seed) ...
  // One keyed context serves the whole expansion (reset() between MACs).
  crypto::Hmac<H> prf(secret);
  std::uint8_t a[H::kDigestSize];
  std::uint8_t chunk[H::kDigestSize];
  prf.update(seed);
  prf.finish_into(a);  // A(1)
  while (out.size() < out_len) {
    prf.reset();
    prf.update(crypto::ConstBytes{a, H::kDigestSize});
    prf.update(seed);
    prf.finish_into(chunk);
    out.insert(out.end(), chunk, chunk + H::kDigestSize);
    prf.reset();
    prf.update(crypto::ConstBytes{a, H::kDigestSize});
    prf.finish_into(a);  // A(i+1)
  }
  out.resize(out_len);
  return out;
}

}  // namespace

crypto::Bytes p_md5(crypto::ConstBytes secret, crypto::ConstBytes seed,
                    std::size_t out_len) {
  return p_hash<crypto::Md5>(secret, seed, out_len);
}

crypto::Bytes p_sha1(crypto::ConstBytes secret, crypto::ConstBytes seed,
                     std::size_t out_len) {
  return p_hash<crypto::Sha1>(secret, seed, out_len);
}

crypto::Bytes tls_prf(crypto::ConstBytes secret, std::string_view label,
                      crypto::ConstBytes seed, std::size_t out_len) {
  // Split the secret into two (overlapping if odd) halves.
  const std::size_t half = (secret.size() + 1) / 2;
  const crypto::ConstBytes s1{secret.data(), half};
  const crypto::ConstBytes s2{secret.data() + secret.size() - half, half};
  const crypto::Bytes label_seed =
      crypto::cat(crypto::to_bytes(label), seed);
  crypto::Bytes out = p_md5(s1, label_seed, out_len);
  crypto::xor_into(out, p_sha1(s2, label_seed, out_len));
  return out;
}

crypto::Bytes derive_master_secret(crypto::ConstBytes premaster,
                                   crypto::ConstBytes client_random,
                                   crypto::ConstBytes server_random) {
  return tls_prf(premaster, "master secret",
                 crypto::cat(client_random, server_random), 48);
}

KeyBlock derive_key_block(crypto::ConstBytes master_secret,
                          crypto::ConstBytes client_random,
                          crypto::ConstBytes server_random,
                          std::size_t mac_len, std::size_t key_len,
                          std::size_t iv_len) {
  const std::size_t total = 2 * (mac_len + key_len + iv_len);
  const crypto::Bytes block =
      tls_prf(master_secret, "key expansion",
              crypto::cat(server_random, client_random), total);
  KeyBlock kb;
  std::size_t off = 0;
  const auto take = [&](std::size_t n) {
    crypto::Bytes part(block.begin() + static_cast<std::ptrdiff_t>(off),
                       block.begin() + static_cast<std::ptrdiff_t>(off + n));
    off += n;
    return part;
  };
  kb.client_mac_key = take(mac_len);
  kb.server_mac_key = take(mac_len);
  kb.client_enc_key = take(key_len);
  kb.server_enc_key = take(key_len);
  kb.client_iv = take(iv_len);
  kb.server_iv = take(iv_len);
  return kb;
}

}  // namespace mapsec::protocol
