#include "mapsec/protocol/wep.hpp"

#include <stdexcept>

#include "mapsec/crypto/crc32.hpp"
#include "mapsec/crypto/rc4.hpp"

namespace mapsec::protocol {

namespace {

crypto::Bytes per_frame_key(crypto::ConstBytes key,
                            const std::array<std::uint8_t, 3>& iv) {
  crypto::Bytes k;
  k.reserve(3 + key.size());
  k.insert(k.end(), iv.begin(), iv.end());
  k.insert(k.end(), key.begin(), key.end());
  return k;
}

}  // namespace

WepFrame wep_encapsulate(crypto::ConstBytes key,
                         const std::array<std::uint8_t, 3>& iv,
                         crypto::ConstBytes payload) {
  if (key.size() != 5 && key.size() != 13)
    throw std::invalid_argument("WEP key must be 5 or 13 bytes");
  crypto::Bytes plaintext(payload.begin(), payload.end());
  const std::uint32_t icv = crypto::crc32(payload);
  plaintext.push_back(static_cast<std::uint8_t>(icv));
  plaintext.push_back(static_cast<std::uint8_t>(icv >> 8));
  plaintext.push_back(static_cast<std::uint8_t>(icv >> 16));
  plaintext.push_back(static_cast<std::uint8_t>(icv >> 24));

  crypto::Rc4 rc4(per_frame_key(key, iv));
  WepFrame frame;
  frame.iv = iv;
  frame.body = rc4.process(plaintext);
  return frame;
}

std::optional<crypto::Bytes> wep_decapsulate(crypto::ConstBytes key,
                                             const WepFrame& frame) {
  if (key.size() != 5 && key.size() != 13)
    throw std::invalid_argument("WEP key must be 5 or 13 bytes");
  if (frame.body.size() < 4) return std::nullopt;
  crypto::Rc4 rc4(per_frame_key(key, frame.iv));
  const crypto::Bytes plaintext = rc4.process(frame.body);
  const std::size_t n = plaintext.size() - 4;
  const std::uint32_t got = std::uint32_t{plaintext[n]} |
                            (std::uint32_t{plaintext[n + 1]} << 8) |
                            (std::uint32_t{plaintext[n + 2]} << 16) |
                            (std::uint32_t{plaintext[n + 3]} << 24);
  if (got != crypto::crc32(crypto::ConstBytes{plaintext.data(), n}))
    return std::nullopt;
  return crypto::Bytes(plaintext.begin(),
                       plaintext.begin() + static_cast<std::ptrdiff_t>(n));
}

WepSender::WepSender(crypto::Bytes key, WepIvPolicy policy, crypto::Rng* rng)
    : key_(std::move(key)), policy_(policy), rng_(rng) {
  if (policy_ == WepIvPolicy::kRandom && rng_ == nullptr)
    throw std::invalid_argument("WepSender: random IV policy needs an rng");
}

WepFrame WepSender::send(crypto::ConstBytes payload) {
  std::array<std::uint8_t, 3> iv{};
  if (policy_ == WepIvPolicy::kSequential) {
    iv[0] = static_cast<std::uint8_t>(counter_);
    iv[1] = static_cast<std::uint8_t>(counter_ >> 8);
    iv[2] = static_cast<std::uint8_t>(counter_ >> 16);
  } else {
    rng_->fill(iv);
  }
  ++counter_;
  return wep_encapsulate(key_, iv, payload);
}

}  // namespace mapsec::protocol
