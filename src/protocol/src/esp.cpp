#include "mapsec/protocol/esp.hpp"

#include <stdexcept>

#include "mapsec/crypto/hmac.hpp"

namespace mapsec::protocol {

namespace {

crypto::Bytes icv(crypto::ConstBytes mac_key, crypto::ConstBytes data) {
  crypto::Bytes full = crypto::HmacSha1::mac(mac_key, data);
  full.resize(kEspIcvLen);
  return full;
}

}  // namespace

EspSender::EspSender(EspSa sa, crypto::Rng* rng)
    : sa_(std::move(sa)), rng_(rng),
      cipher_(make_suite_cipher(sa_.cipher, sa_.enc_key)) {
  if (rng_ == nullptr) throw std::invalid_argument("EspSender: rng required");
}

crypto::Bytes EspSender::protect(crypto::ConstBytes payload) {
  ++seq_;
  const std::size_t bs = cipher_->block_size();
  const crypto::Bytes iv = rng_->bytes(bs);
  const crypto::Bytes ciphertext = cbc_encrypt(*cipher_, iv, payload);

  crypto::Bytes packet;
  packet.reserve(8 + iv.size() + ciphertext.size() + kEspIcvLen);
  packet.push_back(static_cast<std::uint8_t>(sa_.spi >> 24));
  packet.push_back(static_cast<std::uint8_t>(sa_.spi >> 16));
  packet.push_back(static_cast<std::uint8_t>(sa_.spi >> 8));
  packet.push_back(static_cast<std::uint8_t>(sa_.spi));
  packet.push_back(static_cast<std::uint8_t>(seq_ >> 24));
  packet.push_back(static_cast<std::uint8_t>(seq_ >> 16));
  packet.push_back(static_cast<std::uint8_t>(seq_ >> 8));
  packet.push_back(static_cast<std::uint8_t>(seq_));
  packet.insert(packet.end(), iv.begin(), iv.end());
  packet.insert(packet.end(), ciphertext.begin(), ciphertext.end());

  const crypto::Bytes tag = icv(sa_.mac_key, packet);
  packet.insert(packet.end(), tag.begin(), tag.end());
  return packet;
}

EspReceiver::EspReceiver(EspSa sa)
    : sa_(std::move(sa)),
      cipher_(make_suite_cipher(sa_.cipher, sa_.enc_key)) {}

bool EspReceiver::replay_check_and_update(std::uint32_t seq) {
  if (seq == 0) return false;
  if (seq > highest_seq_) {
    const std::uint32_t shift = seq - highest_seq_;
    window_ = shift >= 64 ? 0 : window_ << shift;
    window_ |= 1;  // bit 0 = highest
    highest_seq_ = seq;
    return true;
  }
  const std::uint32_t offset = highest_seq_ - seq;
  if (offset >= 64) return false;  // too old
  const std::uint64_t bit = 1ull << offset;
  if (window_ & bit) return false;  // replay
  window_ |= bit;
  return true;
}

std::optional<crypto::Bytes> EspReceiver::unprotect(
    crypto::ConstBytes packet) {
  const std::size_t bs = cipher_->block_size();
  if (packet.size() < 8 + bs + bs + kEspIcvLen) {
    ++stats_.malformed;
    return std::nullopt;
  }
  const std::uint32_t spi = (std::uint32_t{packet[0]} << 24) |
                            (std::uint32_t{packet[1]} << 16) |
                            (std::uint32_t{packet[2]} << 8) | packet[3];
  const std::uint32_t seq = (std::uint32_t{packet[4]} << 24) |
                            (std::uint32_t{packet[5]} << 16) |
                            (std::uint32_t{packet[6]} << 8) | packet[7];
  if (spi != sa_.spi) {
    ++stats_.malformed;
    return std::nullopt;
  }

  const std::size_t body_len = packet.size() - kEspIcvLen;
  const crypto::ConstBytes authed{packet.data(), body_len};
  const crypto::ConstBytes tag{packet.data() + body_len, kEspIcvLen};
  if (!crypto::ct_equal(icv(sa_.mac_key, authed), tag)) {
    ++stats_.bad_icv;
    return std::nullopt;
  }

  if (!replay_check_and_update(seq)) {
    ++stats_.replayed;
    return std::nullopt;
  }

  const crypto::ConstBytes iv{packet.data() + 8, bs};
  const crypto::ConstBytes ciphertext{packet.data() + 8 + bs,
                                      body_len - 8 - bs};
  try {
    crypto::Bytes payload = cbc_decrypt(*cipher_, iv, ciphertext);
    ++stats_.accepted;
    return payload;
  } catch (const std::runtime_error&) {
    ++stats_.malformed;
    return std::nullopt;
  }
}

}  // namespace mapsec::protocol
