#include "mapsec/protocol/evolution.hpp"

#include <algorithm>
#include <set>

namespace mapsec::protocol {

const std::vector<ProtocolMilestone>& protocol_evolution() {
  static const std::vector<ProtocolMilestone> kTimeline = {
      // ---- wired: SSL/TLS lineage -------------------------------------
      {"SSL/TLS", "SSL 2.0", ProtocolDomain::kWired, 1995, 2,
       "first deployed SSL release (Netscape)"},
      {"SSL/TLS", "SSL 3.0", ProtocolDomain::kWired, 1996, 11,
       "redesign fixing SSL 2.0 weaknesses; cipher-suite negotiation"},
      {"SSL/TLS", "TLS 1.0 (RFC 2246)", ProtocolDomain::kWired, 1999, 1,
       "IETF standardisation; HMAC-based record protection, PRF"},
      {"SSL/TLS", "AES suites (RFC 3268)", ProtocolDomain::kWired, 2002, 6,
       "TLS revised to accommodate AES, the proposed DES replacement"},
      // ---- wired: IPSec lineage ----------------------------------------
      {"IPSec", "RFC 1825-1829", ProtocolDomain::kWired, 1995, 8,
       "first IPSec architecture: AH and ESP"},
      {"IPSec", "RFC 2401-2412", ProtocolDomain::kWired, 1998, 11,
       "revised architecture; IKE key management; mandatory HMAC"},
      {"IPSec", "AES drafts", ProtocolDomain::kWired, 2002, 3,
       "AES-CBC cipher drafts for ESP in IETF last call"},
      // ---- wireless: WTLS / WAP lineage --------------------------------
      {"WTLS", "WAP 1.0 WTLS", ProtocolDomain::kWireless, 1998, 4,
       "transport-layer security for WAP, adapted from TLS for datagrams"},
      {"WTLS", "WAP 1.1 WTLS", ProtocolDomain::kWireless, 1999, 6,
       "revision after initial deployment feedback"},
      {"WTLS", "WAP 1.2.1 WTLS", ProtocolDomain::kWireless, 2000, 6,
       "fixes for published WTLS cryptanalysis (Saarinen attacks)"},
      {"WAP", "WAP 2.0 (TLS profile)", ProtocolDomain::kWireless, 2002, 1,
       "end-to-end TLS replaces gateway re-encryption"},
      // ---- wireless: MET lineage ----------------------------------------
      {"MET", "MeT 1.0 PTD definition", ProtocolDomain::kWireless, 2001, 2,
       "Mobile Electronic Transactions personal trusted device spec"},
      {"MET", "MeT 1.1", ProtocolDomain::kWireless, 2002, 2,
       "revised PTD definition and security framework"},
  };
  return kTimeline;
}

std::vector<ProtocolMilestone> family_history(const std::string& family) {
  std::vector<ProtocolMilestone> out;
  for (const auto& m : protocol_evolution())
    if (m.family == family) out.push_back(m);
  return out;
}

std::vector<std::string> protocol_families() {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const auto& m : protocol_evolution())
    if (seen.insert(m.family).second) out.push_back(m.family);
  return out;
}

double revisions_per_year(const std::string& family) {
  const auto history = family_history(family);
  if (history.size() < 2) return 0.0;
  const auto date = [](const ProtocolMilestone& m) {
    return m.year + (m.month == 0 ? 0.5 : (m.month - 0.5) / 12.0);
  };
  const double span = date(history.back()) - date(history.front());
  if (span <= 0) return 0.0;
  return static_cast<double>(history.size() - 1) / span;
}

}  // namespace mapsec::protocol
