#include "mapsec/protocol/record.hpp"

#include <stdexcept>

#include "mapsec/crypto/ccm.hpp"
#include "mapsec/crypto/hmac.hpp"

namespace mapsec::protocol {

void RecordCodec::activate(const SuiteInfo& suite, crypto::ConstBytes enc_key,
                           crypto::ConstBytes mac_key,
                           crypto::ConstBytes iv_seed) {
  suite_ = &suite;
  mac_key_.assign(mac_key.begin(), mac_key.end());
  iv_seed_.assign(iv_seed.begin(), iv_seed.end());
  if (suite.kind == BulkKind::kStream) {
    stream_.emplace(enc_key);
    block_.reset();
  } else {  // kBlock and kAead both key a block cipher (AEAD: AES for CCM)
    block_ = make_suite_cipher(suite.cipher, enc_key);
    stream_.reset();
  }
  seq_ = 0;
  active_ = true;
}

crypto::Bytes RecordCodec::record_iv(std::uint64_t seq) const {
  std::uint8_t seq_bytes[8];
  crypto::store_be64(seq_bytes, seq);
  const crypto::Bytes full =
      crypto::HmacSha1::mac(iv_seed_, crypto::ConstBytes{seq_bytes, 8});
  return crypto::Bytes(full.begin(),
                       full.begin() + static_cast<std::ptrdiff_t>(
                                          suite_->block_len));
}

crypto::Bytes RecordCodec::mac_header(std::uint64_t seq, RecordType type,
                                      std::size_t plen) {
  crypto::Bytes header(11);
  crypto::store_be64(header.data(), seq);
  header[8] = static_cast<std::uint8_t>(type);
  header[9] = static_cast<std::uint8_t>(plen >> 8);
  header[10] = static_cast<std::uint8_t>(plen);
  return header;
}

crypto::Bytes RecordCodec::compute_mac(std::uint64_t seq, RecordType type,
                                       crypto::ConstBytes payload) const {
  return suite_mac(suite_->mac, mac_key_,
                   crypto::cat(mac_header(seq, type, payload.size()), payload));
}

crypto::Bytes RecordCodec::aead_nonce(std::uint64_t seq) const {
  // 13-byte CCM nonce: 5 bytes of per-direction salt (from the derived IV
  // seed) followed by the big-endian sequence number — deterministic and
  // never repeating under one key block.
  crypto::Bytes nonce(crypto::kCcmNonceLen);
  std::copy(iv_seed_.begin(), iv_seed_.begin() + 5, nonce.begin());
  crypto::store_be64(nonce.data() + 5, seq);
  return nonce;
}

crypto::Bytes RecordCodec::seal(RecordType type, ProtocolVersion version,
                                crypto::ConstBytes payload) {
  crypto::Bytes body;
  if (!active_) {
    body.assign(payload.begin(), payload.end());
  } else if (suite_->kind == BulkKind::kAead) {
    // CCM seals and authenticates in one pass: the record header that a
    // MAC suite would HMAC is the AAD, the tag replaces the HMAC.
    body = crypto::ccm_seal(*block_, aead_nonce(seq_),
                            mac_header(seq_, type, payload.size()), payload,
                            suite_->mac_len);
    ++seq_;
  } else {
    const crypto::Bytes mac = compute_mac(seq_, type, payload);
    const crypto::Bytes fragment = crypto::cat(payload, mac);
    if (suite_->kind == BulkKind::kBlock) {
      body = crypto::cbc_encrypt(*block_, record_iv(seq_), fragment);
    } else {
      body = stream_->process(fragment);
    }
    ++seq_;
  }
  if (body.size() > 0xFFFF)
    throw std::invalid_argument("RecordCodec::seal: record too large");
  crypto::Bytes wire(5 + body.size());
  wire[0] = static_cast<std::uint8_t>(type);
  wire[1] = static_cast<std::uint8_t>(static_cast<std::uint16_t>(version) >> 8);
  wire[2] = static_cast<std::uint8_t>(static_cast<std::uint16_t>(version));
  wire[3] = static_cast<std::uint8_t>(body.size() >> 8);
  wire[4] = static_cast<std::uint8_t>(body.size());
  std::copy(body.begin(), body.end(), wire.begin() + 5);
  return wire;
}

Record RecordCodec::open(crypto::ConstBytes wire) {
  if (wire.size() < 5) throw std::runtime_error("record: truncated header");
  const auto type = static_cast<RecordType>(wire[0]);
  const std::size_t len = (std::size_t{wire[3]} << 8) | wire[4];
  if (wire.size() != 5 + len)
    throw std::runtime_error("record: length mismatch");
  const crypto::ConstBytes body = wire.subspan(5);

  if (!active_) return {type, crypto::Bytes(body.begin(), body.end())};

  if (suite_->kind == BulkKind::kAead) {
    if (body.size() < suite_->mac_len)
      throw std::runtime_error("record: fragment shorter than AEAD tag");
    const std::size_t plen = body.size() - suite_->mac_len;
    std::optional<crypto::Bytes> payload = crypto::ccm_open(
        *block_, aead_nonce(seq_), mac_header(seq_, type, plen), body,
        suite_->mac_len);
    if (!payload)
      throw std::runtime_error("record: AEAD verification failed");
    ++seq_;
    return {type, std::move(*payload)};
  }

  crypto::Bytes fragment;
  if (suite_->kind == BulkKind::kBlock) {
    fragment = crypto::cbc_decrypt(*block_, record_iv(seq_), body);
  } else {
    fragment = stream_->process(body);
  }
  if (fragment.size() < suite_->mac_len)
    throw std::runtime_error("record: fragment shorter than MAC");
  const std::size_t plen = fragment.size() - suite_->mac_len;
  const crypto::ConstBytes payload{fragment.data(), plen};
  const crypto::ConstBytes tag{fragment.data() + plen, suite_->mac_len};
  const crypto::Bytes expected = compute_mac(seq_, type, payload);
  if (!crypto::ct_equal(expected, tag))
    throw std::runtime_error("record: MAC verification failed");
  ++seq_;
  return {type, crypto::Bytes(payload.begin(), payload.end())};
}

std::size_t RecordCodec::overhead(std::size_t n) const {
  if (!active_) return 5;
  if (suite_->kind == BulkKind::kStream || suite_->kind == BulkKind::kAead)
    return 5 + suite_->mac_len;
  const std::size_t fragment = n + suite_->mac_len;
  const std::size_t padded =
      (fragment / suite_->block_len + 1) * suite_->block_len;
  return 5 + padded - n;
}

std::size_t split_records(crypto::ConstBytes stream,
                          std::vector<crypto::Bytes>& out) {
  std::size_t off = 0;
  while (stream.size() - off >= 5) {
    const std::size_t len =
        (std::size_t{stream[off + 3]} << 8) | stream[off + 4];
    if (stream.size() - off < 5 + len) break;
    out.emplace_back(stream.begin() + static_cast<std::ptrdiff_t>(off),
                     stream.begin() + static_cast<std::ptrdiff_t>(off + 5 + len));
    off += 5 + len;
  }
  return off;
}

}  // namespace mapsec::protocol
