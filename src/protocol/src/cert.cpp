#include "mapsec/protocol/cert.hpp"

#include <stdexcept>

namespace mapsec::protocol {

namespace {

void put_u16(crypto::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(crypto::Bytes& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

void put_u64(crypto::Bytes& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_blob(crypto::Bytes& out, crypto::ConstBytes blob) {
  if (blob.size() > 0xFFFF)
    throw std::invalid_argument("certificate field too large");
  put_u16(out, static_cast<std::uint16_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

void put_str(crypto::Bytes& out, const std::string& s) {
  put_blob(out, crypto::to_bytes(s));
}

/// Cursor-based reader; all methods throw std::runtime_error on underrun
/// so decode() can translate to nullopt in one place.
struct Reader {
  crypto::ConstBytes data;
  std::size_t off = 0;

  void need(std::size_t n) const {
    if (data.size() - off < n) throw std::runtime_error("cert: truncated");
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v =
        static_cast<std::uint16_t>((data[off] << 8) | data[off + 1]);
    off += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  crypto::Bytes blob() {
    const std::size_t n = u16();
    need(n);
    crypto::Bytes out(data.begin() + static_cast<std::ptrdiff_t>(off),
                      data.begin() + static_cast<std::ptrdiff_t>(off + n));
    off += n;
    return out;
  }
  std::string str() {
    const crypto::Bytes b = blob();
    return std::string(b.begin(), b.end());
  }
};

}  // namespace

crypto::Bytes Certificate::tbs() const {
  crypto::Bytes out;
  put_str(out, subject);
  put_str(out, issuer);
  put_blob(out, public_key.n.to_bytes_be());
  put_blob(out, public_key.e.to_bytes_be());
  put_u32(out, serial);
  put_u64(out, not_before);
  put_u64(out, not_after);
  return out;
}

crypto::Bytes Certificate::encode() const {
  crypto::Bytes out = tbs();
  put_blob(out, signature);
  return out;
}

std::optional<Certificate> Certificate::decode(crypto::ConstBytes wire) {
  try {
    Reader r{wire};
    Certificate c;
    c.subject = r.str();
    c.issuer = r.str();
    c.public_key.n = crypto::BigInt::from_bytes_be(r.blob());
    c.public_key.e = crypto::BigInt::from_bytes_be(r.blob());
    c.serial = r.u32();
    c.not_before = r.u64();
    c.not_after = r.u64();
    c.signature = r.blob();
    if (r.off != wire.size()) return std::nullopt;
    return c;
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

CertificateAuthority::CertificateAuthority(std::string name,
                                           crypto::RsaKeyPair key,
                                           std::uint64_t not_before,
                                           std::uint64_t not_after)
    : name_(std::move(name)), key_(std::move(key)) {
  root_.subject = name_;
  root_.issuer = name_;
  root_.public_key = key_.pub;
  root_.serial = 1;
  root_.not_before = not_before;
  root_.not_after = not_after;
  root_.signature = crypto::rsa_sign_sha256(key_.priv, root_.tbs());
}

Certificate CertificateAuthority::issue(const std::string& subject,
                                        const crypto::RsaPublicKey& subject_key,
                                        std::uint64_t not_before,
                                        std::uint64_t not_after) {
  Certificate c;
  c.subject = subject;
  c.issuer = name_;
  c.public_key = subject_key;
  c.serial = next_serial_++;
  c.not_before = not_before;
  c.not_after = not_after;
  c.signature = crypto::rsa_sign_sha256(key_.priv, c.tbs());
  return c;
}

std::string cert_verify_result_name(CertVerifyResult r) {
  switch (r) {
    case CertVerifyResult::kOk: return "ok";
    case CertVerifyResult::kUnknownIssuer: return "unknown-issuer";
    case CertVerifyResult::kBadSignature: return "bad-signature";
    case CertVerifyResult::kExpired: return "expired";
    case CertVerifyResult::kNotYetValid: return "not-yet-valid";
    case CertVerifyResult::kEmptyChain: return "empty-chain";
  }
  return "?";
}

CertVerifyResult verify_chain(const std::vector<Certificate>& chain,
                              const std::vector<Certificate>& trusted_roots,
                              std::uint64_t now) {
  if (chain.empty()) return CertVerifyResult::kEmptyChain;

  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Certificate& cert = chain[i];
    if (now < cert.not_before) return CertVerifyResult::kNotYetValid;
    if (now > cert.not_after) return CertVerifyResult::kExpired;

    // Find the issuer: next element of the chain, or a trusted root.
    const Certificate* issuer = nullptr;
    if (i + 1 < chain.size() && chain[i + 1].subject == cert.issuer) {
      issuer = &chain[i + 1];
    } else {
      for (const auto& root : trusted_roots) {
        if (root.subject == cert.issuer) {
          issuer = &root;
          break;
        }
      }
    }
    if (issuer == nullptr) return CertVerifyResult::kUnknownIssuer;
    if (!crypto::rsa_verify_sha256(issuer->public_key, cert.tbs(),
                                   cert.signature))
      return CertVerifyResult::kBadSignature;
    // If the issuer is a trusted root we are done.
    for (const auto& root : trusted_roots)
      if (root.subject == issuer->subject) return CertVerifyResult::kOk;
  }
  // Walked the whole chain without reaching a trusted root.
  return CertVerifyResult::kUnknownIssuer;
}

}  // namespace mapsec::protocol
