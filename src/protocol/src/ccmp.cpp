#include "mapsec/protocol/ccmp.hpp"

#include <stdexcept>

namespace mapsec::protocol {

crypto::Bytes ccmp_nonce(std::uint64_t pn) {
  crypto::Bytes nonce(crypto::kCcmNonceLen, 0);
  for (int i = 0; i < 6; ++i)
    nonce[static_cast<std::size_t>(12 - i)] =
        static_cast<std::uint8_t>(pn >> (8 * i));
  return nonce;
}

CcmpSender::CcmpSender(crypto::ConstBytes key16) {
  if (key16.size() != 16)
    throw std::invalid_argument("CCMP uses a 128-bit key");
  cipher_ = crypto::make_block_cipher(crypto::Aes(key16));
}

CcmpFrame CcmpSender::protect(crypto::ConstBytes header,
                              crypto::ConstBytes payload) {
  CcmpFrame frame;
  frame.header.assign(header.begin(), header.end());
  frame.pn = ++pn_;
  if (frame.pn >= (1ull << 48))
    throw std::runtime_error("CCMP: PN space exhausted; rekey required");
  frame.body =
      crypto::ccm_seal(*cipher_, ccmp_nonce(frame.pn), header, payload, 8);
  return frame;
}

CcmpReceiver::CcmpReceiver(crypto::ConstBytes key16) {
  if (key16.size() != 16)
    throw std::invalid_argument("CCMP uses a 128-bit key");
  cipher_ = crypto::make_block_cipher(crypto::Aes(key16));
}

std::optional<crypto::Bytes> CcmpReceiver::unprotect(const CcmpFrame& frame) {
  // Replay first: PNs must strictly increase.
  if (frame.pn <= last_pn_) {
    ++stats_.replayed;
    return std::nullopt;
  }
  auto plaintext = crypto::ccm_open(*cipher_, ccmp_nonce(frame.pn),
                                    frame.header, frame.body, 8);
  if (!plaintext) {
    ++stats_.bad_mic;
    return std::nullopt;
  }
  last_pn_ = frame.pn;
  ++stats_.accepted;
  return plaintext;
}

}  // namespace mapsec::protocol
