// Minimal X.509-flavoured certificates for the handshake's server
// authentication (the paper's Section 2: "authenticating the server and
// client, transmitting certificates, establishing session keys").
//
// The encoding is a simple length-prefixed structure, not DER; the trust
// semantics (issuer chains, validity windows, signature verification up to
// a trusted root) are the real ones.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mapsec/crypto/rsa.hpp"

namespace mapsec::protocol {

struct Certificate {
  std::string subject;
  std::string issuer;
  crypto::RsaPublicKey public_key;
  std::uint32_t serial = 0;
  std::uint64_t not_before = 0;  // seconds since epoch
  std::uint64_t not_after = 0;
  crypto::Bytes signature;  // RSA-SHA256 over tbs()

  /// The to-be-signed serialization (everything except the signature).
  crypto::Bytes tbs() const;

  /// Full wire encoding / decoding.
  crypto::Bytes encode() const;
  static std::optional<Certificate> decode(crypto::ConstBytes wire);

  bool is_self_signed() const { return subject == issuer; }
};

/// A certificate authority: a named RSA key that can issue certificates.
class CertificateAuthority {
 public:
  CertificateAuthority(std::string name, crypto::RsaKeyPair key,
                       std::uint64_t not_before, std::uint64_t not_after);

  /// The CA's self-signed root certificate.
  const Certificate& root() const { return root_; }

  /// Issue an end-entity certificate.
  Certificate issue(const std::string& subject,
                    const crypto::RsaPublicKey& subject_key,
                    std::uint64_t not_before, std::uint64_t not_after);

 private:
  std::string name_;
  crypto::RsaKeyPair key_;
  Certificate root_;
  std::uint32_t next_serial_ = 2;
};

/// Why a chain failed to verify.
enum class CertVerifyResult {
  kOk,
  kUnknownIssuer,
  kBadSignature,
  kExpired,
  kNotYetValid,
  kEmptyChain,
};

std::string cert_verify_result_name(CertVerifyResult r);

/// Verify `chain` (leaf first) against `trusted_roots` at time `now`.
CertVerifyResult verify_chain(const std::vector<Certificate>& chain,
                              const std::vector<Certificate>& trusted_roots,
                              std::uint64_t now);

}  // namespace mapsec::protocol
