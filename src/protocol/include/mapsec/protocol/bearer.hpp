// GSM-style bearer channel: network-access-domain security and its
// structural limits.
//
// Section 2: "Many of these protocols address only network access domain
// security, i.e., securing the link between a wireless client and the
// access point, base station, or gateway." This module models exactly
// that: a GSM link encrypting with A5/1 per frame between handset and
// base station — and *terminating* there. The base station (and any WAP
// gateway behind it) sees plaintext; there is no integrity protection;
// the cipher can be downgraded by the network side. Each limitation is
// observable through the API, motivating the paper's conclusion that
// bearer security "need[s] to be complemented through the use of security
// mechanisms at higher protocol layers."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mapsec/crypto/a51.hpp"

namespace mapsec::protocol {

/// Ciphering mode, chosen by the *network*, not the handset — the
/// downgrade vector (A5/0 is "no encryption", as deployed networks
/// could and did select).
enum class GsmCipherMode { kA50None, kA51 };

/// One air-interface frame.
struct GsmFrame {
  std::uint32_t frame_number = 0;  // 22-bit counter
  GsmCipherMode mode = GsmCipherMode::kA51;
  crypto::Bytes body;
};

/// The handset/base-station shared cipher endpoint.
class GsmLink {
 public:
  /// `kc` is the 64-bit session key from GSM authentication.
  explicit GsmLink(crypto::Bytes kc);

  /// Handset side: protect a payload (mode per the network's order).
  GsmFrame send(crypto::ConstBytes payload, GsmCipherMode mode);

  /// Receiving side: recover the payload. Always succeeds structurally —
  /// GSM has no integrity check, so corrupted or forged frames produce
  /// garbage, not errors.
  crypto::Bytes receive(const GsmFrame& frame) const;

  std::uint32_t frames_sent() const { return counter_; }

 private:
  crypto::Bytes kc_;
  std::uint32_t counter_ = 0;
};

/// The paper's end-to-end picture: handset -> base station -> gateway ->
/// server. Bearer encryption covers only the first hop; this pipeline
/// records what each node observes, making the exposure auditable.
struct BearerPathTrace {
  crypto::Bytes over_the_air;        // what an eavesdropper of the radio sees
  crypto::Bytes at_base_station;     // after bearer decryption
  crypto::Bytes delivered_to_server; // what reaches the far end
};

/// Run one uplink payload through the bearer path.
BearerPathTrace bearer_path_transfer(GsmLink& link, crypto::ConstBytes payload,
                                     GsmCipherMode mode);

}  // namespace mapsec::protocol
