// Security-protocol evolution registry — the data behind Figure 2.
//
// Figure 2 tracks the wired protocols (IPSec, SSL/TLS) and the wireless
// ones (WTLS, MET) through their revisions, making the paper's point that
// "security protocols are not only diverse but also are continuously
// evolving" — the flexibility requirement of Section 3.1. The registry
// records each milestone with its date and what changed, and provides the
// aggregations the figure displays.
#pragma once

#include <string>
#include <vector>

namespace mapsec::protocol {

enum class ProtocolDomain { kWired, kWireless };

struct ProtocolMilestone {
  std::string family;    // "SSL/TLS", "IPSec", "WTLS", "MET", "WAP"
  std::string version;   // "SSL 2.0", "RFC 2246", ...
  ProtocolDomain domain;
  int year = 0;
  int month = 0;         // 1-12, 0 if unknown
  std::string change;    // what the revision did
};

/// The Figure 2 timeline, in chronological order.
const std::vector<ProtocolMilestone>& protocol_evolution();

/// Milestones of one family, chronological.
std::vector<ProtocolMilestone> family_history(const std::string& family);

/// Families present in the registry.
std::vector<std::string> protocol_families();

/// Revisions per year for a family — the "constant modification" rate the
/// paper highlights (e.g. TLS's June 2002 AES revision).
double revisions_per_year(const std::string& family);

}  // namespace mapsec::protocol
