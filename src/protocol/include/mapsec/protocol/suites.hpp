// Cipher-suite inventory for the handshake protocol.
//
// Section 3.1: "an RSA key exchange based SSL cipher suite would need to
// support 3-DES, RC4, RC2 or DES, along with the appropriate message
// authentication algorithm (SHA-1 or MD5) ... it is desirable to support
// all the allowed combinations so as to inter-operate with the widest
// possible range of peers." This table is that combination space, plus the
// AES suite that the June 2002 TLS revision added (Figure 2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mapsec/crypto/bytes.hpp"
#include "mapsec/crypto/cipher.hpp"

namespace mapsec::protocol {

/// Suite identifiers (values follow the TLS registry where one exists).
enum class CipherSuite : std::uint16_t {
  kRsaRc4128Md5 = 0x0004,
  kRsaRc4128Sha = 0x0005,
  kRsaDesCbcSha = 0x0009,
  kRsa3DesEdeCbcSha = 0x000A,
  kDheRsa3DesEdeCbcSha = 0x0016,
  kRsaAes128CbcSha = 0x002F,
  kDheRsaAes128CbcSha = 0x0033,
  kRsaRc2Cbc128Md5 = 0xFF01,  // private-range id for the RC2 suite
  kRsaAes128Ccm8 = 0xFFC0,    // private-range id for the AEAD (CCM) suite
};

enum class BulkKind : std::uint8_t { kStream, kBlock, kAead };
enum class BulkCipher : std::uint8_t { kRc4, kDes, kDes3, kAes128, kRc2 };
enum class MacAlgo : std::uint8_t { kHmacMd5, kHmacSha1 };

/// Key-exchange method. RSA transports the premaster under the server's
/// long-term key; DHE-RSA agrees on it with signed ephemeral
/// Diffie-Hellman (forward secrecy — a session key outlives the theft of
/// the device or server key, squarely the paper's loss/theft threat).
enum class KeyExchange : std::uint8_t { kRsa, kDheRsa };

/// Static properties of a suite.
struct SuiteInfo {
  CipherSuite id;
  std::string name;
  KeyExchange kx;
  BulkKind kind;
  BulkCipher cipher;
  std::size_t key_len;    // bulk key bytes
  std::size_t block_len;  // block/IV bytes (0 for stream)
  MacAlgo mac;
  std::size_t mac_len;    // HMAC tag bytes; AEAD suites: CCM tag bytes
};

/// Look up a suite (throws std::invalid_argument for unknown ids).
const SuiteInfo& suite_info(CipherSuite id);

/// All classic suites, strongest-preference first (the library default
/// offer). The AEAD suite is deliberately not in the default offer — CCM
/// record protection is an opt-in capability (renegotiation can move a
/// session aead<->non-aead), and keeping the default ClientHello stable
/// keeps every seeded transcript in the suite bit-identical.
std::vector<CipherSuite> all_suites();

/// Compute an HMAC tag with the suite's MAC algorithm.
crypto::Bytes suite_mac(MacAlgo algo, crypto::ConstBytes key,
                        crypto::ConstBytes data);

/// Digest size of a MAC algorithm.
std::size_t mac_length(MacAlgo algo);

/// Instantiate the suite's block cipher with `key` (block suites only).
std::unique_ptr<crypto::BlockCipher> make_suite_cipher(BulkCipher cipher,
                                                       crypto::ConstBytes key);

}  // namespace mapsec::protocol
