// Record layer: authenticated encryption of protocol messages.
//
// Wire format (big-endian):
//   type(1) | version(2) | length(2) | body(length)
//
// Under an active cipher state, body = Enc(plaintext || MAC) where
//   MAC = HMAC(mac_key, seq(8) || type(1) || plen(2) || plaintext)
// with an implicit 64-bit sequence number per direction. Block suites use
// CBC with a per-record IV derived from the sequence number (IV_i =
// MAC(iv_key, seq)[0..block), a deterministic, non-repeating choice that
// avoids the chained-IV weakness of SSL 3.0). Stream suites keep RC4 state
// across records, as SSL does. AEAD suites replace MAC-then-encrypt
// entirely: body = CCM(plaintext) || tag, with the would-be MAC header as
// the AAD and nonce = salt(5) || seq(8) from the derived IV seed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "mapsec/crypto/rc4.hpp"
#include "mapsec/protocol/suites.hpp"

namespace mapsec::protocol {

enum class RecordType : std::uint8_t {
  kHandshake = 22,
  kChangeCipherSpec = 20,
  kAlert = 21,
  kApplicationData = 23,
};

/// Protocol version constants (Figure 2's lineage).
enum class ProtocolVersion : std::uint16_t {
  kSsl30 = 0x0300,
  kTls10 = 0x0301,
  kWtls1 = 0x0100,
};

struct Record {
  RecordType type;
  crypto::Bytes payload;
};

/// One direction's cipher state + sequence number.
class RecordCodec {
 public:
  /// Null state: records pass in the clear (handshake phase).
  RecordCodec() = default;

  /// Activate a cipher state.
  void activate(const SuiteInfo& suite, crypto::ConstBytes enc_key,
                crypto::ConstBytes mac_key, crypto::ConstBytes iv_seed);

  bool active() const { return active_; }
  std::uint64_t sequence() const { return seq_; }

  /// Protect a payload into a full wire record.
  crypto::Bytes seal(RecordType type, ProtocolVersion version,
                     crypto::ConstBytes payload);

  /// Parse and (if active) decrypt+verify a wire record.
  /// Throws std::runtime_error on malformed input or MAC failure.
  Record open(crypto::ConstBytes wire);

  /// Bytes of overhead seal() adds to a payload of `n` bytes (MAC +
  /// padding); used by the platform workload calibration benches.
  std::size_t overhead(std::size_t n) const;

 private:
  static crypto::Bytes mac_header(std::uint64_t seq, RecordType type,
                                  std::size_t plen);
  crypto::Bytes record_iv(std::uint64_t seq) const;
  crypto::Bytes compute_mac(std::uint64_t seq, RecordType type,
                            crypto::ConstBytes payload) const;
  crypto::Bytes aead_nonce(std::uint64_t seq) const;

  bool active_ = false;
  const SuiteInfo* suite_ = nullptr;
  std::unique_ptr<crypto::BlockCipher> block_;
  std::optional<crypto::Rc4> stream_;
  crypto::Bytes mac_key_;
  crypto::Bytes iv_seed_;
  std::uint64_t seq_ = 0;
};

/// Split a byte stream into complete records (returns the number of bytes
/// consumed; remaining bytes are an incomplete record).
std::size_t split_records(crypto::ConstBytes stream,
                          std::vector<crypto::Bytes>& out);

}  // namespace mapsec::protocol
