// SSL/TLS-style handshake state machines (client and server), with the
// WTLS profile and abbreviated (session-resumption) handshakes.
//
// This is the protocol whose connection set-up cost drives the latency
// axis of the paper's Figure 3: ClientHello/ServerHello negotiation over
// the Section 3.1 suite space, server authentication by certificate
// chain, RSA key transport of the premaster secret, key derivation, and
// Finished-message verification of the transcript. Session resumption
// (the WTLS-friendly abbreviated handshake) skips the RSA operation —
// exactly the optimisation a MIPS-starved handset needs.
//
// Endpoints are incremental message processors: feed one complete inbound
// flight to process(), transmit whatever it returns, repeat. Two drivers
// are provided: step_handshake() advances one endpoint by one flight (the
// building block for event-driven callers that receive flights from a
// transport, e.g. mapsec::server), and run_handshake() drives two
// endpoints to completion in memory for tests and benchmarks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "mapsec/crypto/dh.hpp"
#include "mapsec/crypto/rng.hpp"
#include "mapsec/crypto/rsa.hpp"
#include "mapsec/protocol/cert.hpp"
#include "mapsec/protocol/datagram.hpp"
#include "mapsec/protocol/record.hpp"
#include "mapsec/protocol/suites.hpp"

namespace mapsec::ticket {
class TicketCodec;
}

namespace mapsec::protocol {

class HandshakeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Server-side cache of resumable sessions (session id -> master secret +
/// suite). The base class is an unbounded map; implementations with an
/// eviction policy (e.g. mapsec::server::BoundedSessionCache, LRU + TTL)
/// override the virtuals. `lookup` is non-const because policy caches
/// update recency/expiry state on the read path.
class SessionCache {
 public:
  struct Entry {
    crypto::Bytes master_secret;
    CipherSuite suite = CipherSuite::kRsa3DesEdeCbcSha;
  };

  virtual ~SessionCache() = default;

  virtual void store(const crypto::Bytes& session_id, Entry entry);
  /// nullptr when absent (or expired/evicted, for bounded caches).
  virtual const Entry* lookup(const crypto::Bytes& session_id);
  virtual std::size_t size() const { return entries_.size(); }
  virtual void clear() { entries_.clear(); }

 private:
  std::map<crypto::Bytes, Entry> entries_;
};

/// One public-key operation extracted from a suspended server handshake —
/// the unit of work the paper's crypto accelerator takes off the host
/// (mapsec::engine::OffloadEngine executes these on a worker pool). The
/// job is a pure function of its fields: run_pk_job() on any thread (with
/// any MontCache) produces a bit-identical PkResult.
struct PkJob {
  enum class Kind : std::uint8_t {
    kRsaDecrypt,  // ClientKeyExchange premaster decrypt (server private key)
    kRsaSign,     // DHE ServerKeyExchange parameter signature
    kRsaVerify,   // CertificateVerify check (client's public key)
  };

  Kind kind = Kind::kRsaDecrypt;
  const crypto::RsaPrivateKey* private_key = nullptr;  // decrypt/sign
  crypto::RsaPublicKey public_key;                     // verify
  crypto::Bytes input;      // ciphertext / content-to-sign / signed content
  crypto::Bytes signature;  // verify: signature under test
};

/// Outcome of a PkJob, fed back via TlsServer::resume_pk().
struct PkResult {
  PkJob::Kind kind = PkJob::Kind::kRsaDecrypt;
  std::optional<crypto::Bytes> decrypted;  // kRsaDecrypt (nullopt = bad pad)
  crypto::Bytes signature;                 // kRsaSign
  bool valid = false;                      // kRsaVerify
};

/// Execute a job. Deterministic and side-effect free; safe to run on any
/// thread. `cache`, when provided, reuses per-modulus Montgomery contexts
/// (outputs identical either way).
PkResult run_pk_job(const PkJob& job, crypto::MontCache* cache = nullptr);

/// Execute a batch of jobs with their private-key exponentiations
/// interleaved through one multi-exponentiation
/// (crypto::rsa_private_op_crt_batch) — the accelerator's batched data
/// plane. Verify jobs run inline (public op, nothing to batch).
/// results[i] == run_pk_job(*jobs[i], cache) bit for bit, for any batch
/// size and any dispatch backend.
std::vector<PkResult> run_pk_jobs(const std::vector<const PkJob*>& jobs,
                                  crypto::MontCache* cache = nullptr);

/// What both sides agree on once established.
struct HandshakeSummary {
  CipherSuite suite = CipherSuite::kRsa3DesEdeCbcSha;
  KeyExchange key_exchange = KeyExchange::kRsa;
  bool resumed = false;         // latest handshake was abbreviated
  bool ticket_resumed = false;  // ... and the resumption came from a ticket
  bool client_authenticated = false;
  ProtocolVersion version = ProtocolVersion::kTls10;
  std::size_t bytes_sent = 0;      // wire bytes this endpoint transmitted
  std::size_t bytes_received = 0;  // wire bytes this endpoint consumed
  int rsa_private_ops = 0;         // performed by this endpoint (cumulative)
  int rsa_public_ops = 0;
  int dh_ops = 0;                  // modexp agreements/keygens
  int renegotiations = 0;          // completed mid-session renegotiations
  crypto::Bytes session_id;
};

/// Shared configuration. A client needs `trusted_roots`; a server needs
/// `cert_chain` + `private_key` (plus `trusted_roots` when it
/// authenticates clients). `rng` must outlive the endpoint.
struct HandshakeConfig {
  ProtocolVersion version = ProtocolVersion::kTls10;
  std::vector<CipherSuite> offered_suites = all_suites();
  crypto::Rng* rng = nullptr;
  std::uint64_t now = 0;  // certificate-validation clock

  // Server credentials.
  std::vector<Certificate> cert_chain;
  const crypto::RsaPrivateKey* private_key = nullptr;

  // Trust anchors (client: verifies the server chain; server: verifies
  // the client chain when client auth is on).
  std::vector<Certificate> trusted_roots;

  // Client credentials, presented when the server asks (Section 2's
  // mutual authentication).
  std::vector<Certificate> client_cert_chain;
  const crypto::RsaPrivateKey* client_private_key = nullptr;

  // Server-side client-authentication policy.
  bool request_client_auth = false;  // send CertificateRequest
  bool require_client_auth = false;  // fail if the client sends no cert

  // Server-side degraded-mode policy: refuse ClientHellos that cannot
  // resume a cached session, BEFORE any certificate transmission or RSA
  // work. An overloaded server (mapsec::server admission control) flips
  // this on so the cheap abbreviated handshake stays available while
  // the expensive full handshake is shed.
  bool resumption_only = false;

  // Ephemeral-DH group for DHE suites.
  crypto::DhGroup dhe_group = crypto::DhGroup::oakley_group2();

  // Server-side asynchronous public-key mode. When set, the server
  // SUSPENDS instead of executing a private-key (or CertificateVerify)
  // operation inline: process() returns an empty flight, pk_pending()
  // turns true, and the caller runs the extracted PkJob wherever it likes
  // (inline, or on an OffloadEngine worker) before feeding the PkResult
  // to resume_pk(), which returns the flight the synchronous path would
  // have produced. Transcripts and outputs are byte-identical to the
  // synchronous mode.
  bool async_pk = false;

  // ---- stateless session tickets (mapsec::ticket) ----
  // Server: when set, ticket-bearing ClientHellos resume statelessly
  // (one AES-CCM open, zero cache bytes, no public-key op — the async_pk
  // machinery is never engaged on this path) and completed handshakes
  // that requested a ticket get a NewSessionTicket. Not owned; must
  // outlive the endpoint.
  mapsec::ticket::TicketCodec* ticket_codec = nullptr;
  // Server: issue/expiry clock for tickets (sim µs — distinct from `now`,
  // the certificate-validation wall clock).
  std::uint64_t ticket_now_us = 0;
  // Client: ask the server for a NewSessionTicket (also implied by
  // offering one via set_resume_ticket()).
  bool request_session_ticket = false;

  // ---- mid-session rekey / renegotiation ----
  // Both sides: allow a second handshake through the established record
  // layer (client start_renegotiate(), server request_renegotiate() /
  // HelloRequest). Off by default: an endpoint that does not expect
  // renegotiation treats a post-handshake flight as an error, as before.
  bool allow_renegotiation = false;
  // Server: let a renegotiation resume (sid cache or ticket) — a pure
  // rekey, same master + fresh key block. When false the server ignores
  // resumption offers during renegotiation and forces a full handshake
  // (fresh master), e.g. after suspected key compromise.
  bool resume_on_renegotiate = true;
};

/// Parameters for TlsClient::start_renegotiate().
struct RenegotiateOptions {
  /// Offer the current session for resumption (ticket when one was
  /// issued this session, session id otherwise): rekey without the
  /// public-key op if the server accepts.
  bool attempt_resume = true;
  /// Replace the offered suite list for this renegotiation (empty =
  /// keep the config's offer) — how a session transitions suites, e.g.
  /// CBC+HMAC -> AEAD, mid-flight.
  std::vector<CipherSuite> offered_suites;
};

/// Common interface of the two endpoints.
class HandshakeEndpoint {
 public:
  virtual ~HandshakeEndpoint() = default;

  /// Feed inbound wire bytes (zero or more whole records); returns
  /// outbound wire bytes (possibly empty). Throws HandshakeError on any
  /// protocol, certificate or MAC failure.
  virtual crypto::Bytes process(crypto::ConstBytes inbound) = 0;

  virtual bool established() const = 0;
  virtual const HandshakeSummary& summary() const = 0;

  /// True when the endpoint is suspended on an extracted public-key
  /// operation (HandshakeConfig::async_pk servers only; see TlsServer).
  /// While pending, process() refuses further flights.
  virtual bool pk_pending() const { return false; }

  /// Post-handshake: protect an application payload into wire bytes.
  virtual crypto::Bytes send_data(crypto::ConstBytes payload) = 0;

  /// Post-handshake: open wire bytes into application payloads.
  virtual std::vector<crypto::Bytes> recv_data(crypto::ConstBytes wire) = 0;

  /// Post-handshake, WTLS deployment shape: run application data over an
  /// unreliable bearer. Activates `tx`/`rx` datagram codecs from the
  /// negotiated key material (send direction = this endpoint's write
  /// keys). Requires an established session on a block-cipher suite.
  virtual void setup_datagram(DatagramRecordCodec& tx,
                              DatagramRecordCodec& rx) = 0;
};

class TlsClient final : public HandshakeEndpoint {
 public:
  explicit TlsClient(HandshakeConfig config);
  ~TlsClient() override;

  /// Request resumption of a previous session on the next handshake.
  void set_resume_session(crypto::ConstBytes session_id,
                          crypto::ConstBytes master_secret, CipherSuite suite);

  /// Request stateless resumption on the next handshake: offer an opaque
  /// session ticket (from a previous session's session_ticket()) in the
  /// ClientHello. The client keeps the master secret + suite the ticket
  /// was issued under; the server recovers its copy from the blob alone.
  void set_resume_ticket(crypto::ConstBytes ticket,
                         crypto::ConstBytes master_secret, CipherSuite suite);

  /// Opaque NewSessionTicket issued by the server during the latest
  /// handshake (empty when none was issued).
  const crypto::Bytes& session_ticket() const;
  bool has_session_ticket() const;

  /// Begin a mid-session renegotiation (requires an established session
  /// and HandshakeConfig::allow_renegotiation): resets the handshake
  /// state and returns a ClientHello sealed under the CURRENT write
  /// cipher. While renegotiating, send_data() refuses (the initiator
  /// quiesces its own sends) but recv_data() still opens in-flight
  /// records sealed under the old keys — delivery is in order, so the
  /// drain is deterministic. The server's HelloRequest triggers this
  /// automatically inside process().
  crypto::Bytes start_renegotiate(const RenegotiateOptions& options = {});

  /// True between renegotiation start and its Finished exchange.
  bool renegotiating() const;

  crypto::Bytes process(crypto::ConstBytes inbound) override;
  bool established() const override;
  const HandshakeSummary& summary() const override;
  crypto::Bytes send_data(crypto::ConstBytes payload) override;
  std::vector<crypto::Bytes> recv_data(crypto::ConstBytes wire) override;
  void setup_datagram(DatagramRecordCodec& tx,
                      DatagramRecordCodec& rx) override;

  /// Master secret (exposed so callers can cache it for resumption).
  const crypto::Bytes& master_secret() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class TlsServer final : public HandshakeEndpoint {
 public:
  /// `cache`, when provided, enables session resumption (not owned).
  explicit TlsServer(HandshakeConfig config, SessionCache* cache = nullptr);
  ~TlsServer() override;

  crypto::Bytes process(crypto::ConstBytes inbound) override;
  bool established() const override;
  const HandshakeSummary& summary() const override;
  crypto::Bytes send_data(crypto::ConstBytes payload) override;
  std::vector<crypto::Bytes> recv_data(crypto::ConstBytes wire) override;
  void setup_datagram(DatagramRecordCodec& tx,
                      DatagramRecordCodec& rx) override;

  const crypto::Bytes& master_secret() const;

  // -- asynchronous public-key mode (HandshakeConfig::async_pk) --
  // A suspended server exposes the extracted operation via
  // pending_pk_job(); the caller executes it (run_pk_job, possibly on
  // another thread) and hands the result to resume_pk(), which finishes
  // the interrupted flight and returns the bytes to transmit. A flight
  // may suspend more than once (e.g. ClientKeyExchange decrypt then
  // CertificateVerify) — loop until pk_pending() is false.

  /// Begin a server-initiated renegotiation: returns a HelloRequest
  /// sealed under the current write cipher (not part of any transcript).
  /// The actual handshake starts when the client's ClientHello arrives at
  /// process(). Requires an established session and
  /// HandshakeConfig::allow_renegotiation on both sides.
  crypto::Bytes request_renegotiate();

  /// True between renegotiation start and its Finished exchange.
  bool renegotiating() const;

  bool pk_pending() const override;
  /// Throws HandshakeError when no operation is pending.
  const PkJob& pending_pk_job() const;
  /// Throws HandshakeError on kind mismatch, bad signature/premaster, or
  /// when nothing is pending — exactly the errors the synchronous path
  /// would have raised at the same point.
  crypto::Bytes resume_pk(const PkResult& result);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Result of advancing one endpoint by one flight.
struct HandshakeStep {
  crypto::Bytes output;  // flight to transmit to the peer (may be empty)
  bool established = false;
  bool pk_pending = false;  // async server suspended on a PkJob
};

/// Advance `endpoint` by one inbound flight and return what it wants to
/// transmit. Pass an empty flight to start a client (its ClientHello
/// needs no input). Once the endpoint is established further calls are
/// no-ops returning an empty flight — duplicate or late flights from a
/// transport are absorbed rather than treated as fatal. Throws
/// HandshakeError on protocol, certificate or MAC failure, exactly as
/// process() does. An async_pk server that suspends mid-flight returns
/// with `pk_pending` set and an empty output — service the job and call
/// TlsServer::resume_pk() for the flight. This is the single-step
/// primitive the lockstep run_handshake() helper is built from;
/// event-driven callers (mapsec::server) use it directly to pump
/// endpoints message by message.
HandshakeStep step_handshake(HandshakeEndpoint& endpoint,
                             crypto::ConstBytes inbound);

/// Drive two endpoints to completion in memory. `tap`, when non-null,
/// receives every flight (direction, bytes) — the eavesdropper's view.
/// Suspended async_pk servers are serviced inline (run_pk_job), so the
/// driver works for any endpoint configuration.
struct TappedFlight {
  bool client_to_server;
  crypto::Bytes data;
};

void run_handshake(HandshakeEndpoint& client, HandshakeEndpoint& server,
                   std::vector<TappedFlight>* tap = nullptr);

}  // namespace mapsec::protocol
