// Key-derivation PRF, following the TLS 1.0 construction the paper's
// protocols (SSL/TLS and their WTLS adaptation) use: P_hash expansion with
// HMAC, and the top-level PRF splitting the secret between MD5 and SHA-1
// so that a break of either hash alone does not break key derivation.
#pragma once

#include <string_view>

#include "mapsec/crypto/bytes.hpp"

namespace mapsec::protocol {

/// P_hash(secret, seed) expansion to `out_len` bytes using HMAC-`H`
/// (RFC 2246 section 5).
crypto::Bytes p_md5(crypto::ConstBytes secret, crypto::ConstBytes seed,
                    std::size_t out_len);
crypto::Bytes p_sha1(crypto::ConstBytes secret, crypto::ConstBytes seed,
                     std::size_t out_len);

/// TLS 1.0 PRF: split the secret, expand each half with a different hash,
/// XOR the expansions.
crypto::Bytes tls_prf(crypto::ConstBytes secret, std::string_view label,
                      crypto::ConstBytes seed, std::size_t out_len);

/// Derived per-connection key material for one suite.
struct KeyBlock {
  crypto::Bytes client_mac_key;
  crypto::Bytes server_mac_key;
  crypto::Bytes client_enc_key;
  crypto::Bytes server_enc_key;
  crypto::Bytes client_iv;
  crypto::Bytes server_iv;
};

/// master_secret = PRF(premaster, "master secret", client_rand||server_rand)
crypto::Bytes derive_master_secret(crypto::ConstBytes premaster,
                                   crypto::ConstBytes client_random,
                                   crypto::ConstBytes server_random);

/// key_block = PRF(master, "key expansion", server_rand||client_rand),
/// partitioned per the suite's key/IV/MAC sizes.
KeyBlock derive_key_block(crypto::ConstBytes master_secret,
                          crypto::ConstBytes client_random,
                          crypto::ConstBytes server_random,
                          std::size_t mac_len, std::size_t key_len,
                          std::size_t iv_len);

}  // namespace mapsec::protocol
