// Datagram record protection — the WTLS adaptation.
//
// Section 3.1: "WTLS bears a close resemblance to the SSL/TLS standards"
// but runs over datagram bearers (WDP/UDP over GSM SMS, CSD, GPRS...).
// The stream record layer's implicit sequence numbers cannot survive
// loss and reordering, so the datagram variant — like WTLS and later
// DTLS — carries an explicit sequence number in each record, derives the
// per-record IV from it, and the receiver keeps an anti-replay window
// instead of a strict counter. Lost records simply never arrive;
// reordered records still authenticate.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "mapsec/protocol/record.hpp"

namespace mapsec::protocol {

/// One direction of a datagram security association.
class DatagramRecordCodec {
 public:
  DatagramRecordCodec() = default;

  void activate(const SuiteInfo& suite, crypto::ConstBytes enc_key,
                crypto::ConstBytes mac_key, crypto::ConstBytes iv_seed);

  bool active() const { return active_; }

  /// Protect one record. Wire format:
  /// type(1) | version(2) | seq(8, explicit) | length(2) | body.
  crypto::Bytes seal(RecordType type, ProtocolVersion version,
                     crypto::ConstBytes payload);

  /// Open a record. Returns nullopt (rather than throwing) for the
  /// datagram failure modes a receiver must absorb silently: bad MAC,
  /// replayed or too-old sequence, malformed framing.
  std::optional<Record> open(crypto::ConstBytes wire);

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t bad_mac = 0;
    std::uint64_t replayed = 0;
    std::uint64_t malformed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  crypto::Bytes record_iv(std::uint64_t seq) const;
  crypto::Bytes compute_mac(std::uint64_t seq, RecordType type,
                            crypto::ConstBytes payload) const;
  bool replay_check_and_update(std::uint64_t seq);

  bool active_ = false;
  const SuiteInfo* suite_ = nullptr;
  std::unique_ptr<crypto::BlockCipher> block_;
  crypto::Bytes enc_key_;
  crypto::Bytes mac_key_;
  crypto::Bytes iv_seed_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t highest_seq_ = 0;
  std::uint64_t window_ = 0;
  bool any_received_ = false;
  Stats stats_;
};

}  // namespace mapsec::protocol
