// IPsec ESP-style packet protection (the network-layer option of the
// paper's Section 2 protocol-stack discussion, and the workload of the
// Safenet "IPSec packet engine" cited in Section 4.2.3).
//
// Packet format: spi(4) | seq(4) | iv(block) | Enc(payload || pad) | ICV
// where ICV = HMAC-SHA1-96 over spi..ciphertext. The receiver enforces
// a 64-packet anti-replay window, as RFC 2406 requires.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "mapsec/crypto/rng.hpp"
#include "mapsec/protocol/suites.hpp"

namespace mapsec::protocol {

/// A unidirectional security association.
struct EspSa {
  std::uint32_t spi = 0;
  BulkCipher cipher = BulkCipher::kDes3;
  crypto::Bytes enc_key;
  crypto::Bytes mac_key;
};

constexpr std::size_t kEspIcvLen = 12;  // HMAC-SHA1-96

/// Outbound ESP processing: sequence numbering, CBC encryption, ICV.
class EspSender {
 public:
  EspSender(EspSa sa, crypto::Rng* rng);

  crypto::Bytes protect(crypto::ConstBytes payload);

  std::uint32_t next_seq() const { return seq_ + 1; }

 private:
  EspSa sa_;
  crypto::Rng* rng_;
  std::unique_ptr<crypto::BlockCipher> cipher_;
  std::uint32_t seq_ = 0;
};

/// Inbound ESP processing with anti-replay.
class EspReceiver {
 public:
  explicit EspReceiver(EspSa sa);

  /// Returns the payload, or nullopt for: wrong SPI, bad ICV, replayed or
  /// too-old sequence number, malformed packet.
  std::optional<crypto::Bytes> unprotect(crypto::ConstBytes packet);

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t bad_icv = 0;
    std::uint64_t replayed = 0;
    std::uint64_t malformed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  bool replay_check_and_update(std::uint32_t seq);

  EspSa sa_;
  std::unique_ptr<crypto::BlockCipher> cipher_;
  std::uint32_t highest_seq_ = 0;
  std::uint64_t window_ = 0;  // bitmask of the 64 sequence numbers <= highest
  Stats stats_;
};

}  // namespace mapsec::protocol
