// 802.11 WEP encapsulation (Wired Equivalent Privacy).
//
// Implemented exactly as deployed — 24-bit IV prepended to the RC4 key,
// CRC-32 "integrity check value", per-frame RC4 keystream — because the
// paper's Section 2 cites the published breaks [21-23] ("the level of
// security provided by most of the above security protocols is
// insufficient"). attack::wep mounts the keystream-reuse and FMS weak-IV
// attacks against this implementation; use the TLS stack for actual
// confidentiality.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "mapsec/crypto/bytes.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::protocol {

/// A WEP-protected frame: the cleartext IV plus the RC4-encrypted
/// (payload || CRC32) body.
struct WepFrame {
  std::array<std::uint8_t, 3> iv{};
  std::uint8_t key_id = 0;
  crypto::Bytes body;
};

/// Encapsulate `payload` under `key` (5-byte WEP-40 or 13-byte WEP-104)
/// with the given IV. Per-frame RC4 key = IV || key.
WepFrame wep_encapsulate(crypto::ConstBytes key,
                         const std::array<std::uint8_t, 3>& iv,
                         crypto::ConstBytes payload);

/// Decapsulate; returns nullopt when the ICV (CRC) check fails.
std::optional<crypto::Bytes> wep_decapsulate(crypto::ConstBytes key,
                                             const WepFrame& frame);

/// IV-assignment policies observed in real 802.11 gear; the policy choice
/// is what the keystream-reuse attack exploits.
enum class WepIvPolicy {
  kSequential,  // counter, wraps at 2^24 — guarantees eventual reuse
  kRandom,      // random per frame — birthday collisions after ~4096 frames
};

/// Stateful WEP sender applying an IV policy.
class WepSender {
 public:
  WepSender(crypto::Bytes key, WepIvPolicy policy, crypto::Rng* rng);

  WepFrame send(crypto::ConstBytes payload);

  std::uint32_t frames_sent() const { return counter_; }

 private:
  crypto::Bytes key_;
  WepIvPolicy policy_;
  crypto::Rng* rng_;
  std::uint32_t counter_ = 0;
};

}  // namespace mapsec::protocol
