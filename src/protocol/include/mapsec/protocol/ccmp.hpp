// CCMP-style link-layer protection (the 802.11i answer to WEP).
//
// The paper: WEP-class protocols "can be easily broken" and the drawbacks
// "are being addressed in newer wireless standards such as ... 802.11
// enhancements". This is that enhancement, modelled on CCMP: AES-CCM per
// frame, a 48-bit packet number (PN) that serves as both nonce material
// and replay counter, and the frame header authenticated as AAD — each
// element closing one of WEP's holes (keystream reuse, forgery by CRC
// linearity, replay, header spoofing).
#pragma once

#include <cstdint>
#include <optional>

#include "mapsec/crypto/ccm.hpp"

namespace mapsec::protocol {

/// A protected frame: cleartext header + PN, sealed body.
struct CcmpFrame {
  crypto::Bytes header;   // addresses etc., authenticated but not encrypted
  std::uint64_t pn = 0;   // 48-bit packet number
  crypto::Bytes body;     // ciphertext || 8-byte MIC
};

/// Sender half of a CCMP security association (128-bit AES key).
class CcmpSender {
 public:
  explicit CcmpSender(crypto::ConstBytes key16);

  /// Protect one frame. PN increments automatically — reuse is
  /// structurally impossible within the association.
  CcmpFrame protect(crypto::ConstBytes header, crypto::ConstBytes payload);

  std::uint64_t next_pn() const { return pn_ + 1; }

 private:
  std::unique_ptr<crypto::BlockCipher> cipher_;
  std::uint64_t pn_ = 0;
};

/// Receiver half with strictly-increasing PN replay enforcement.
class CcmpReceiver {
 public:
  explicit CcmpReceiver(crypto::ConstBytes key16);

  /// Verify and decrypt; nullopt on MIC failure or replayed/old PN.
  std::optional<crypto::Bytes> unprotect(const CcmpFrame& frame);

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t bad_mic = 0;
    std::uint64_t replayed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  std::unique_ptr<crypto::BlockCipher> cipher_;
  std::uint64_t last_pn_ = 0;
  Stats stats_;
};

/// Nonce construction shared by both halves: PN (48 bits) padded into the
/// 13-byte CCM nonce. Exposed for tests.
crypto::Bytes ccmp_nonce(std::uint64_t pn);

}  // namespace mapsec::protocol
