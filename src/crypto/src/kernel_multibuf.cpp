// Multi-buffer kernels: independent streams interleaved so each stream's
// serial dependency chain overlaps the others'.
//
//  * SHA-256 ×8 (AVX2): eight lanes transposed into vector registers —
//    each __m256i holds one working variable across all lanes — so one
//    round's ands/xors/rotates/adds serve eight messages at once. The
//    per-lane arithmetic is word-for-word the scalar compressor's.
//  * AES ×4 (AES-NI): four CBC-MAC chains (inherently serial per lane) or
//    four CTR keystreams advanced in lockstep rounds; aesenc has
//    multi-cycle latency but single-cycle throughput, so independent
//    lanes in flight are nearly free. Each lane keeps its own key
//    schedule — records from different connections batch together.
//
// Compiled with -mavx2 -maes -mssse3 -msse4.1 on x86; elsewhere the
// tables report kHave* = false and are never selected.
#include "kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace mapsec::crypto::dispatch {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline __m256i rotr(__m256i x, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n),
                         _mm256_slli_epi32(x, 32 - n));
}

/// Gather one big-endian message word from each of 8 lanes into one
/// vector (lane l in 32-bit element l).
inline __m256i gather_be32(const std::uint8_t* const* blocks,
                           std::size_t word) {
  const __m256i idx = _mm256_setr_epi32(
      static_cast<int>(load_be32(blocks[0] + 4 * word)),
      static_cast<int>(load_be32(blocks[1] + 4 * word)),
      static_cast<int>(load_be32(blocks[2] + 4 * word)),
      static_cast<int>(load_be32(blocks[3] + 4 * word)),
      static_cast<int>(load_be32(blocks[4] + 4 * word)),
      static_cast<int>(load_be32(blocks[5] + 4 * word)),
      static_cast<int>(load_be32(blocks[6] + 4 * word)),
      static_cast<int>(load_be32(blocks[7] + 4 * word)));
  return idx;
}

/// Eight full lanes, nblocks each, lockstep.
void sha256_x8(std::uint32_t* const* states, const std::uint8_t* const* blocks,
               std::size_t nblocks) {
  const std::uint8_t* cur[8];
  for (int l = 0; l < 8; ++l) cur[l] = blocks[l];

  __m256i h[8];
  for (int i = 0; i < 8; ++i)
    h[i] = _mm256_setr_epi32(
        static_cast<int>(states[0][i]), static_cast<int>(states[1][i]),
        static_cast<int>(states[2][i]), static_cast<int>(states[3][i]),
        static_cast<int>(states[4][i]), static_cast<int>(states[5][i]),
        static_cast<int>(states[6][i]), static_cast<int>(states[7][i]));

  while (nblocks--) {
    __m256i w[64];
    for (int i = 0; i < 16; ++i) w[i] = gather_be32(cur, i);
    for (int i = 16; i < 64; ++i) {
      const __m256i s0 = _mm256_xor_si256(
          _mm256_xor_si256(rotr(w[i - 15], 7), rotr(w[i - 15], 18)),
          _mm256_srli_epi32(w[i - 15], 3));
      const __m256i s1 = _mm256_xor_si256(
          _mm256_xor_si256(rotr(w[i - 2], 17), rotr(w[i - 2], 19)),
          _mm256_srli_epi32(w[i - 2], 10));
      w[i] = _mm256_add_epi32(_mm256_add_epi32(w[i - 16], s0),
                              _mm256_add_epi32(w[i - 7], s1));
    }

    __m256i a = h[0], b = h[1], c = h[2], d = h[3];
    __m256i e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const __m256i s1 = _mm256_xor_si256(
          _mm256_xor_si256(rotr(e, 6), rotr(e, 11)), rotr(e, 25));
      const __m256i ch = _mm256_xor_si256(
          _mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
      const __m256i t1 = _mm256_add_epi32(
          _mm256_add_epi32(_mm256_add_epi32(hh, s1), ch),
          _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(kK[i])), w[i]));
      const __m256i s0 = _mm256_xor_si256(
          _mm256_xor_si256(rotr(a, 2), rotr(a, 13)), rotr(a, 22));
      const __m256i maj = _mm256_xor_si256(
          _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
          _mm256_and_si256(b, c));
      const __m256i t2 = _mm256_add_epi32(s0, maj);
      hh = g;
      g = f;
      f = e;
      e = _mm256_add_epi32(d, t1);
      d = c;
      c = b;
      b = a;
      a = _mm256_add_epi32(t1, t2);
    }
    h[0] = _mm256_add_epi32(h[0], a);
    h[1] = _mm256_add_epi32(h[1], b);
    h[2] = _mm256_add_epi32(h[2], c);
    h[3] = _mm256_add_epi32(h[3], d);
    h[4] = _mm256_add_epi32(h[4], e);
    h[5] = _mm256_add_epi32(h[5], f);
    h[6] = _mm256_add_epi32(h[6], g);
    h[7] = _mm256_add_epi32(h[7], hh);
    for (int l = 0; l < 8; ++l) cur[l] += 64;
  }

  alignas(32) std::uint32_t out[8];
  for (int i = 0; i < 8; ++i) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(out), h[i]);
    for (int l = 0; l < 8; ++l) states[l][i] = out[l];
  }
}

void sha256_mb_avx2(std::uint32_t* const* states,
                    const std::uint8_t* const* blocks, std::size_t nlanes,
                    std::size_t nblocks) {
  std::size_t l = 0;
  for (; nlanes - l >= 8; l += 8) sha256_x8(states + l, blocks + l, nblocks);
  for (; l < nlanes; ++l) sha256_compress_scalar(states[l], blocks[l], nblocks);
}

}  // namespace

const Sha256MbFn kSha256MbAvx2 = sha256_mb_avx2;
const bool kHaveSha256Mb = true;

}  // namespace mapsec::crypto::dispatch

#else  // no AVX2 at compile time: stub, never selected.

namespace mapsec::crypto::dispatch {
const Sha256MbFn kSha256MbAvx2 = nullptr;
const bool kHaveSha256Mb = false;
}  // namespace mapsec::crypto::dispatch

#endif

// ---------------------------------------------------------------------------
// AES multi-buffer (AES-NI)

#if defined(__AES__) && defined(__SSSE3__) && defined(__SSE4_1__)

#include <immintrin.h>

#include <cstring>

namespace mapsec::crypto::dispatch {

namespace {

inline __m128i rk_mb(const AesSchedule& s, int round) {
  return _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(s.bytes + 16 * round));
}

inline __m128i encrypt_one_mb(const AesSchedule& s, __m128i b) {
  b = _mm_xor_si128(b, rk_mb(s, 0));
  for (int r = 1; r < s.rounds; ++r) b = _mm_aesenc_si128(b, rk_mb(s, r));
  return _mm_aesenclast_si128(b, rk_mb(s, s.rounds));
}

inline void ctr_increment_mb(std::uint8_t counter[16]) {
  for (int i = 16; i-- > 0;) {
    if (++counter[i] != 0) break;
  }
}

/// Four CBC-MAC chains in lockstep rounds. All four schedules must share
/// one round count (callers batch AES-128 records, rounds == 10).
void cbc_mac_x4(const AesSchedule* s, std::uint8_t* const* states,
                const std::uint8_t* const* data, std::size_t nblocks) {
  __m128i st0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(states[0]));
  __m128i st1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(states[1]));
  __m128i st2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(states[2]));
  __m128i st3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(states[3]));
  const int rounds = s[0].rounds;
  for (std::size_t i = 0; i < nblocks; ++i) {
    st0 = _mm_xor_si128(st0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                 data[0] + 16 * i)));
    st1 = _mm_xor_si128(st1, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                 data[1] + 16 * i)));
    st2 = _mm_xor_si128(st2, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                 data[2] + 16 * i)));
    st3 = _mm_xor_si128(st3, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                 data[3] + 16 * i)));
    st0 = _mm_xor_si128(st0, rk_mb(s[0], 0));
    st1 = _mm_xor_si128(st1, rk_mb(s[1], 0));
    st2 = _mm_xor_si128(st2, rk_mb(s[2], 0));
    st3 = _mm_xor_si128(st3, rk_mb(s[3], 0));
    for (int r = 1; r < rounds; ++r) {
      st0 = _mm_aesenc_si128(st0, rk_mb(s[0], r));
      st1 = _mm_aesenc_si128(st1, rk_mb(s[1], r));
      st2 = _mm_aesenc_si128(st2, rk_mb(s[2], r));
      st3 = _mm_aesenc_si128(st3, rk_mb(s[3], r));
    }
    st0 = _mm_aesenclast_si128(st0, rk_mb(s[0], rounds));
    st1 = _mm_aesenclast_si128(st1, rk_mb(s[1], rounds));
    st2 = _mm_aesenclast_si128(st2, rk_mb(s[2], rounds));
    st3 = _mm_aesenclast_si128(st3, rk_mb(s[3], rounds));
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(states[0]), st0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(states[1]), st1);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(states[2]), st2);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(states[3]), st3);
}

void cbc_mac_one(const AesSchedule& s, std::uint8_t* state,
                 const std::uint8_t* data, std::size_t nblocks) {
  __m128i st = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  for (std::size_t i = 0; i < nblocks; ++i) {
    st = _mm_xor_si128(
        st, _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * i)));
    st = encrypt_one_mb(s, st);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), st);
}

void aes_cbc_mac_mb(const AesSchedule* scheds, std::uint8_t* const* states,
                    const std::uint8_t* const* data, std::size_t nlanes,
                    std::size_t nblocks) {
  std::size_t l = 0;
  for (; nlanes - l >= 4; l += 4) {
    if (scheds[l].rounds == scheds[l + 1].rounds &&
        scheds[l].rounds == scheds[l + 2].rounds &&
        scheds[l].rounds == scheds[l + 3].rounds) {
      cbc_mac_x4(scheds + l, states + l, data + l, nblocks);
    } else {
      for (int k = 0; k < 4; ++k)
        cbc_mac_one(scheds[l + k], states[l + k], data[l + k], nblocks);
    }
  }
  for (; l < nlanes; ++l) cbc_mac_one(scheds[l], states[l], data[l], nblocks);
}

void ctr_xor_one(const AesSchedule& s, std::uint8_t counter[16],
                 std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (len - off >= 16) {
    const __m128i ks = encrypt_one_mb(
        s, _mm_loadu_si128(reinterpret_cast<const __m128i*>(counter)));
    ctr_increment_mb(counter);
    __m128i* d = reinterpret_cast<__m128i*>(data + off);
    _mm_storeu_si128(d, _mm_xor_si128(_mm_loadu_si128(d), ks));
    off += 16;
  }
  if (off < len) {
    std::uint8_t ks[16];
    const __m128i k = encrypt_one_mb(
        s, _mm_loadu_si128(reinterpret_cast<const __m128i*>(counter)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(ks), k);
    ctr_increment_mb(counter);
    for (std::size_t i = 0; off + i < len; ++i) data[off + i] ^= ks[i];
  }
}

void aes_ctr_xor_mb(const AesSchedule* scheds, std::uint8_t* const* counters,
                    std::uint8_t* const* data, const std::size_t* lens,
                    std::size_t nlanes) {
  std::size_t l = 0;
  for (; nlanes - l >= 4; l += 4) {
    const bool same_rounds = scheds[l].rounds == scheds[l + 1].rounds &&
                             scheds[l].rounds == scheds[l + 2].rounds &&
                             scheds[l].rounds == scheds[l + 3].rounds;
    // Lockstep over the whole blocks every lane in the group shares, then
    // finish each lane's remainder (and partial tail) single-stream.
    std::size_t common = lens[l] / 16;
    for (int k = 1; k < 4; ++k)
      common = common < lens[l + k] / 16 ? common : lens[l + k] / 16;
    if (!same_rounds) common = 0;
    const int rounds = scheds[l].rounds;
    for (std::size_t b = 0; b < common; ++b) {
      __m128i k0 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(counters[l]));
      __m128i k1 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(counters[l + 1]));
      __m128i k2 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(counters[l + 2]));
      __m128i k3 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(counters[l + 3]));
      ctr_increment_mb(counters[l]);
      ctr_increment_mb(counters[l + 1]);
      ctr_increment_mb(counters[l + 2]);
      ctr_increment_mb(counters[l + 3]);
      k0 = _mm_xor_si128(k0, rk_mb(scheds[l], 0));
      k1 = _mm_xor_si128(k1, rk_mb(scheds[l + 1], 0));
      k2 = _mm_xor_si128(k2, rk_mb(scheds[l + 2], 0));
      k3 = _mm_xor_si128(k3, rk_mb(scheds[l + 3], 0));
      for (int r = 1; r < rounds; ++r) {
        k0 = _mm_aesenc_si128(k0, rk_mb(scheds[l], r));
        k1 = _mm_aesenc_si128(k1, rk_mb(scheds[l + 1], r));
        k2 = _mm_aesenc_si128(k2, rk_mb(scheds[l + 2], r));
        k3 = _mm_aesenc_si128(k3, rk_mb(scheds[l + 3], r));
      }
      k0 = _mm_aesenclast_si128(k0, rk_mb(scheds[l], rounds));
      k1 = _mm_aesenclast_si128(k1, rk_mb(scheds[l + 1], rounds));
      k2 = _mm_aesenclast_si128(k2, rk_mb(scheds[l + 2], rounds));
      k3 = _mm_aesenclast_si128(k3, rk_mb(scheds[l + 3], rounds));
      __m128i* d0 = reinterpret_cast<__m128i*>(data[l] + 16 * b);
      __m128i* d1 = reinterpret_cast<__m128i*>(data[l + 1] + 16 * b);
      __m128i* d2 = reinterpret_cast<__m128i*>(data[l + 2] + 16 * b);
      __m128i* d3 = reinterpret_cast<__m128i*>(data[l + 3] + 16 * b);
      _mm_storeu_si128(d0, _mm_xor_si128(_mm_loadu_si128(d0), k0));
      _mm_storeu_si128(d1, _mm_xor_si128(_mm_loadu_si128(d1), k1));
      _mm_storeu_si128(d2, _mm_xor_si128(_mm_loadu_si128(d2), k2));
      _mm_storeu_si128(d3, _mm_xor_si128(_mm_loadu_si128(d3), k3));
    }
    for (int k = 0; k < 4; ++k)
      ctr_xor_one(scheds[l + k], counters[l + k], data[l + k] + common * 16,
                  lens[l + k] - common * 16);
  }
  for (; l < nlanes; ++l)
    ctr_xor_one(scheds[l], counters[l], data[l], lens[l]);
}

}  // namespace

const AesMbKernels kAesMbNi = {"aesni-mb", aes_cbc_mac_mb, aes_ctr_xor_mb};
const bool kHaveAesMbNi = true;

}  // namespace mapsec::crypto::dispatch

#else  // ISA unavailable at compile time: stub table, never selected.

namespace mapsec::crypto::dispatch {
const AesMbKernels kAesMbNi = {"aesni-mb-unavailable", nullptr, nullptr};
const bool kHaveAesMbNi = false;
}  // namespace mapsec::crypto::dispatch

#endif
