#include "mapsec/crypto/a51.hpp"

#include <stdexcept>

namespace mapsec::crypto {

namespace {

// Register geometry per the published reference implementation
// (Briceno/Goldberg/Wagner "pedagogical" A5/1).
constexpr std::uint32_t kR1Mask = 0x07FFFF;  // 19 bits
constexpr std::uint32_t kR2Mask = 0x3FFFFF;  // 22 bits
constexpr std::uint32_t kR3Mask = 0x7FFFFF;  // 23 bits
constexpr std::uint32_t kR1Taps = 0x072000;  // bits 18,17,16,13
constexpr std::uint32_t kR2Taps = 0x300000;  // bits 21,20
constexpr std::uint32_t kR3Taps = 0x700080;  // bits 22,21,20,7
constexpr std::uint32_t kR1Clock = 1u << 8;
constexpr std::uint32_t kR2Clock = 1u << 10;
constexpr std::uint32_t kR3Clock = 1u << 10;

int parity32(std::uint32_t x) {
  x ^= x >> 16;
  x ^= x >> 8;
  x ^= x >> 4;
  x ^= x >> 2;
  x ^= x >> 1;
  return static_cast<int>(x & 1);
}

std::uint32_t clock_one(std::uint32_t reg, std::uint32_t mask,
                        std::uint32_t taps) {
  const int feedback = parity32(reg & taps);
  return ((reg << 1) & mask) | static_cast<std::uint32_t>(feedback);
}

}  // namespace

void A51::clock_all() {
  r1_ = clock_one(r1_, kR1Mask, kR1Taps);
  r2_ = clock_one(r2_, kR2Mask, kR2Taps);
  r3_ = clock_one(r3_, kR3Mask, kR3Taps);
}

void A51::clock_majority() {
  const int b1 = (r1_ & kR1Clock) ? 1 : 0;
  const int b2 = (r2_ & kR2Clock) ? 1 : 0;
  const int b3 = (r3_ & kR3Clock) ? 1 : 0;
  const int maj = (b1 + b2 + b3) >= 2 ? 1 : 0;
  if (b1 == maj) r1_ = clock_one(r1_, kR1Mask, kR1Taps);
  if (b2 == maj) r2_ = clock_one(r2_, kR2Mask, kR2Taps);
  if (b3 == maj) r3_ = clock_one(r3_, kR3Mask, kR3Taps);
}

int A51::output_bit() const {
  return static_cast<int>(((r1_ >> 18) ^ (r2_ >> 21) ^ (r3_ >> 22)) & 1);
}

A51::A51(ConstBytes key8, std::uint32_t frame) {
  if (key8.size() != 8)
    throw std::invalid_argument("A5/1 key must be 8 bytes");
  if (frame >= (1u << 22))
    throw std::invalid_argument("A5/1 frame number is 22 bits");

  // Key setup: 64 key bits (LSB-first within each byte), then 22 frame
  // bits, each XORed into the LSB of all registers after a plain clock.
  for (int i = 0; i < 64; ++i) {
    clock_all();
    const std::uint32_t bit = (key8[static_cast<std::size_t>(i / 8)] >>
                               (i & 7)) & 1u;
    r1_ ^= bit;
    r2_ ^= bit;
    r3_ ^= bit;
  }
  for (int i = 0; i < 22; ++i) {
    clock_all();
    const std::uint32_t bit = (frame >> i) & 1u;
    r1_ ^= bit;
    r2_ ^= bit;
    r3_ ^= bit;
  }
  // 100 warm-up clocks with the majority rule, output discarded.
  for (int i = 0; i < 100; ++i) clock_majority();
}

int A51::next_bit() {
  clock_majority();
  return output_bit();
}

Bytes A51::keystream(std::size_t n) {
  Bytes out(n, 0);
  for (std::size_t i = 0; i < 8 * n; ++i)
    out[i / 8] = static_cast<std::uint8_t>(
        out[i / 8] | (next_bit() << (7 - (i % 8))));
  return out;
}

A51::FrameKeystream A51::frame_keystream(ConstBytes key8,
                                         std::uint32_t frame) {
  A51 gen(key8, frame);
  FrameKeystream out;
  out.downlink.assign(15, 0);
  out.uplink.assign(15, 0);
  for (int i = 0; i < 114; ++i)
    out.downlink[static_cast<std::size_t>(i / 8)] =
        static_cast<std::uint8_t>(out.downlink[static_cast<std::size_t>(i / 8)] |
                                  (gen.next_bit() << (7 - (i % 8))));
  for (int i = 0; i < 114; ++i)
    out.uplink[static_cast<std::size_t>(i / 8)] =
        static_cast<std::uint8_t>(out.uplink[static_cast<std::size_t>(i / 8)] |
                                  (gen.next_bit() << (7 - (i % 8))));
  return out;
}

Bytes a51_crypt(ConstBytes key8, std::uint32_t frame, ConstBytes data) {
  A51 gen(key8, frame);
  const Bytes ks = gen.keystream(data.size());
  Bytes out(data.begin(), data.end());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] ^= ks[i];
  return out;
}

}  // namespace mapsec::crypto
