#include "mapsec/crypto/dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define MAPSEC_DISPATCH_X86 1
#endif

namespace mapsec::crypto::dispatch {

namespace {

CpuFeatures probe_cpu() {
  CpuFeatures f;
#ifdef MAPSEC_DISPATCH_X86
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.sse2 = (edx >> 26) & 1;
    f.ssse3 = (ecx >> 9) & 1;
    f.sse41 = (ecx >> 19) & 1;
    f.aesni = (ecx >> 25) & 1;
    f.pclmul = (ecx >> 1) & 1;
    const bool osxsave = (ecx >> 27) & 1;
    const bool avx_bit = (ecx >> 28) & 1;
    if (osxsave && avx_bit) {
      // AVX is only usable when the OS saves/restores the ymm state:
      // XCR0 must have both the SSE (bit 1) and AVX (bit 2) bits set.
      unsigned xlo, xhi;
      asm volatile(".byte 0x0f, 0x01, 0xd0"  // xgetbv
                   : "=a"(xlo), "=d"(xhi)
                   : "c"(0));
      f.avx = (xlo & 0x6) == 0x6;
    }
  }
  eax = ebx = ecx = edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = f.avx && ((ebx >> 5) & 1);
    f.bmi2 = (ebx >> 8) & 1;
    f.adx = (ebx >> 19) & 1;
    f.sha_ni = (ebx >> 29) & 1;
  }
#endif
  return f;
}

// -1 = unresolved (consult the environment on first query), 0 = auto,
// 1 = scalar pinned. A plain relaxed atomic: dispatch correctness never
// depends on ordering with other memory, only on each call seeing some
// consistent value.
std::atomic<int> g_force{-1};

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = probe_cpu();
  return f;
}

bool scalar_forced() {
  int v = g_force.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("MAPSEC_FORCE_SCALAR");
    const int resolved =
        (env != nullptr && env[0] != '\0' && env[0] != '0') ? 1 : 0;
    // If a concurrent force_scalar() call resolved it first, keep that.
    g_force.compare_exchange_strong(v, resolved, std::memory_order_relaxed);
    v = g_force.load(std::memory_order_relaxed);
  }
  return v == 1;
}

void force_scalar(bool on) {
  g_force.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace {

const AesKernels* pick_aes() {
  const CpuFeatures& f = cpu_features();
  if (kHaveAesNi && f.aesni && f.ssse3 && f.sse41) return &kAesNi;
  return &kAesScalar;
}

struct ShaPick {
  Sha1CompressFn sha1;
  Sha256CompressFn sha256;
  const char* name;
};

ShaPick pick_sha() {
  const CpuFeatures& f = cpu_features();
  if (kHaveShaNi && f.sha_ni && f.ssse3 && f.sse41)
    return {kSha1ShaNi, kSha256ShaNi, "sha-ni"};
  if (kHaveShaAvx2 && f.avx2) return {kSha1Avx2, kSha256Avx2, "avx2"};
  return {sha1_compress_scalar, sha256_compress_scalar, "scalar"};
}

struct CrcPick {
  Crc32Fn fn;
  const char* name;
};

CrcPick pick_crc() {
  const CpuFeatures& f = cpu_features();
  if (kHavePclmul && f.pclmul && f.sse41) return {kCrc32Pclmul, "pclmul"};
  return {crc32_raw, "scalar"};
}

struct MontPick {
  MontCiosFn fn;
  const char* name;
};

MontPick pick_mont() {
  const CpuFeatures& f = cpu_features();
  if (kHaveMontUnrolled && (!kMontNeedsBmi2 || (f.bmi2 && f.adx)))
    return {kMontCiosUnrolled, kMontNeedsBmi2 ? "bmi2" : "unrolled"};
  return {mont_cios_w64_scalar, "scalar"};
}

// The CPU never changes under us, so the auto picks are computed once;
// only the force-scalar branch is re-evaluated per call.
const AesKernels& auto_aes() {
  static const AesKernels* k = pick_aes();
  return *k;
}
const ShaPick& auto_sha() {
  static const ShaPick p = pick_sha();
  return p;
}
const CrcPick& auto_crc() {
  static const CrcPick p = pick_crc();
  return p;
}
const MontPick& auto_mont() {
  static const MontPick p = pick_mont();
  return p;
}

}  // namespace

const AesKernels& aes_kernels() {
  if (scalar_forced()) return kAesScalar;
  return auto_aes();
}

Sha1CompressFn sha1_compress() {
  if (scalar_forced()) return sha1_compress_scalar;
  return auto_sha().sha1;
}

Sha256CompressFn sha256_compress() {
  if (scalar_forced()) return sha256_compress_scalar;
  return auto_sha().sha256;
}

Crc32Fn crc32_kernel() {
  if (scalar_forced()) return crc32_raw;
  return auto_crc().fn;
}

MontCiosFn mont_cios_w64() {
  if (scalar_forced()) return mont_cios_w64_scalar;
  return auto_mont().fn;
}

Capabilities capabilities() {
  Capabilities c;
  c.features = cpu_features();
  c.forced_scalar = scalar_forced();
  const bool forced = c.forced_scalar;

  const char* aes_name = forced ? kAesScalar.name : auto_aes().name;
  c.primitives.push_back(
      {"aes", aes_name, std::string(aes_name) != "scalar"});
  const char* sha_name = forced ? "scalar" : auto_sha().name;
  c.primitives.push_back(
      {"sha1", sha_name, std::string(sha_name) != "scalar"});
  c.primitives.push_back(
      {"sha256", sha_name, std::string(sha_name) != "scalar"});
  const char* crc_name = forced ? "scalar" : auto_crc().name;
  c.primitives.push_back(
      {"crc32", crc_name, std::string(crc_name) != "scalar"});
  const char* mont_name = forced ? "scalar" : auto_mont().name;
  c.primitives.push_back(
      {"modexp-cios", mont_name, std::string(mont_name) != "scalar"});
  return c;
}

std::string capabilities_summary() {
  const Capabilities c = capabilities();
  std::string out;
  for (const auto& p : c.primitives) {
    if (!out.empty()) out += ' ';
    out += p.primitive;
    out += '=';
    out += p.backend;
  }
  out += c.forced_scalar ? " (forced_scalar=on)" : " (forced_scalar=off)";
  return out;
}

}  // namespace mapsec::crypto::dispatch
