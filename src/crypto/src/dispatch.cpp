#include "mapsec/crypto/dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define MAPSEC_DISPATCH_X86 1
#endif

namespace mapsec::crypto::dispatch {

namespace {

CpuFeatures probe_cpu() {
  CpuFeatures f;
#ifdef MAPSEC_DISPATCH_X86
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.sse2 = (edx >> 26) & 1;
    f.ssse3 = (ecx >> 9) & 1;
    f.sse41 = (ecx >> 19) & 1;
    f.aesni = (ecx >> 25) & 1;
    f.pclmul = (ecx >> 1) & 1;
    const bool osxsave = (ecx >> 27) & 1;
    const bool avx_bit = (ecx >> 28) & 1;
    if (osxsave && avx_bit) {
      // AVX is only usable when the OS saves/restores the ymm state:
      // XCR0 must have both the SSE (bit 1) and AVX (bit 2) bits set.
      unsigned xlo, xhi;
      asm volatile(".byte 0x0f, 0x01, 0xd0"  // xgetbv
                   : "=a"(xlo), "=d"(xhi)
                   : "c"(0));
      f.avx = (xlo & 0x6) == 0x6;
    }
  }
  eax = ebx = ecx = edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = f.avx && ((ebx >> 5) & 1);
    f.bmi2 = (ebx >> 8) & 1;
    f.adx = (ebx >> 19) & 1;
    f.sha_ni = (ebx >> 29) & 1;
  }
#endif
  return f;
}

// -1 = unresolved (consult the environment on first query), 0 = auto,
// 1 = scalar pinned. A plain relaxed atomic: dispatch correctness never
// depends on ordering with other memory, only on each call seeing some
// consistent value.
std::atomic<int> g_force{-1};

}  // namespace

// Null entries: multi-buffer callers fall back to their per-lane loops,
// so forcing scalar exercises literally the single-stream code.
const AesMbKernels kAesMbScalar = {"scalar", nullptr, nullptr};

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = probe_cpu();
  return f;
}

bool scalar_forced() {
  int v = g_force.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("MAPSEC_FORCE_SCALAR");
    const int resolved =
        (env != nullptr && env[0] != '\0' && env[0] != '0') ? 1 : 0;
    // If a concurrent force_scalar() call resolved it first, keep that.
    g_force.compare_exchange_strong(v, resolved, std::memory_order_relaxed);
    v = g_force.load(std::memory_order_relaxed);
  }
  return v == 1;
}

void force_scalar(bool on) {
  g_force.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace {

const AesKernels* pick_aes() {
  const CpuFeatures& f = cpu_features();
  if (kHaveAesNi && f.aesni && f.ssse3 && f.sse41) return &kAesNi;
  return &kAesScalar;
}

struct ShaPick {
  Sha1CompressFn sha1;
  Sha256CompressFn sha256;
  const char* name;
};

ShaPick pick_sha() {
  const CpuFeatures& f = cpu_features();
  if (kHaveShaNi && f.sha_ni && f.ssse3 && f.sse41)
    return {kSha1ShaNi, kSha256ShaNi, "sha-ni"};
  if (kHaveShaAvx2 && f.avx2) return {kSha1Avx2, kSha256Avx2, "avx2"};
  return {sha1_compress_scalar, sha256_compress_scalar, "scalar"};
}

struct CrcPick {
  Crc32Fn fn;
  const char* name;
};

CrcPick pick_crc() {
  const CpuFeatures& f = cpu_features();
  if (kHavePclmul && f.pclmul && f.sse41) return {kCrc32Pclmul, "pclmul"};
  return {crc32_raw, "scalar"};
}

struct MontPick {
  MontCiosFn fn;
  const char* name;
};

MontPick pick_mont() {
  const CpuFeatures& f = cpu_features();
  if (kHaveMontUnrolled && (!kMontNeedsBmi2 || (f.bmi2 && f.adx)))
    return {kMontCiosUnrolled, kMontNeedsBmi2 ? "bmi2" : "unrolled"};
  return {mont_cios_w64_scalar, "scalar"};
}

struct MontBatchPick {
  MontCiosBatchFn fn;
  const char* name;
};

MontBatchPick pick_mont_batch() {
  const CpuFeatures& f = cpu_features();
  // The interleaved kernel's ragged tail runs through kMontCiosUnrolled,
  // so it carries the single-op kernel's CPUID requirements too.
  if (kHaveMontBatch && kHaveMontUnrolled &&
      (!kMontBatchNeedsBmi2 || (f.bmi2 && f.adx)))
    return {kMontCiosBatchIlp, kMontBatchNeedsBmi2 ? "ilp-bmi2" : "ilp"};
  return {mont_cios_w64_batch_scalar, "scalar"};
}

struct Sha256MbPick {
  Sha256MbFn fn;
  const char* name;
};

// Hardware SHA beats 8-wide software SIMD: a single SHA-NI stream outruns
// the interleaved AVX2 kernel (~1.3 GB/s vs ~0.94 GB/s measured), so on
// SHA-NI hosts the multi-buffer entry point just drives each lane through
// the hardware compressor in turn. Lane state transitions are identical
// either way, so digests don't depend on which driver ran.
void sha256_mb_serial_shani(std::uint32_t* const* states,
                            const std::uint8_t* const* blocks,
                            std::size_t nlanes, std::size_t nblocks) {
  for (std::size_t l = 0; l < nlanes; ++l)
    kSha256ShaNi(states[l], blocks[l], nblocks);
}

Sha256MbPick pick_sha256_mb() {
  const CpuFeatures& f = cpu_features();
  if (kHaveShaNi && f.sha_ni && f.ssse3 && f.sse41)
    return {sha256_mb_serial_shani, "sha-ni-serial"};
  if (kHaveSha256Mb && f.avx2) return {kSha256MbAvx2, "avx2-x8"};
  return {sha256_mb_scalar, "scalar"};
}

const AesMbKernels* pick_aes_mb() {
  const CpuFeatures& f = cpu_features();
  if (kHaveAesMbNi && f.aesni && f.ssse3 && f.sse41) return &kAesMbNi;
  return &kAesMbScalar;
}

// The CPU never changes under us, so the auto picks are computed once;
// only the force-scalar branch is re-evaluated per call.
const AesKernels& auto_aes() {
  static const AesKernels* k = pick_aes();
  return *k;
}
const ShaPick& auto_sha() {
  static const ShaPick p = pick_sha();
  return p;
}
const CrcPick& auto_crc() {
  static const CrcPick p = pick_crc();
  return p;
}
const MontPick& auto_mont() {
  static const MontPick p = pick_mont();
  return p;
}
const MontBatchPick& auto_mont_batch() {
  static const MontBatchPick p = pick_mont_batch();
  return p;
}
const Sha256MbPick& auto_sha256_mb() {
  static const Sha256MbPick p = pick_sha256_mb();
  return p;
}
const AesMbKernels& auto_aes_mb() {
  static const AesMbKernels* k = pick_aes_mb();
  return *k;
}

}  // namespace

const AesKernels& aes_kernels() {
  if (scalar_forced()) return kAesScalar;
  return auto_aes();
}

Sha1CompressFn sha1_compress() {
  if (scalar_forced()) return sha1_compress_scalar;
  return auto_sha().sha1;
}

Sha256CompressFn sha256_compress() {
  if (scalar_forced()) return sha256_compress_scalar;
  return auto_sha().sha256;
}

Crc32Fn crc32_kernel() {
  if (scalar_forced()) return crc32_raw;
  return auto_crc().fn;
}

MontCiosFn mont_cios_w64() {
  if (scalar_forced()) return mont_cios_w64_scalar;
  return auto_mont().fn;
}

MontCiosBatchFn mont_cios_w64_batch() {
  if (scalar_forced()) return mont_cios_w64_batch_scalar;
  return auto_mont_batch().fn;
}

Sha256MbFn sha256_mb() {
  if (scalar_forced()) return sha256_mb_scalar;
  return auto_sha256_mb().fn;
}

const AesMbKernels& aes_mb_kernels() {
  if (scalar_forced()) return kAesMbScalar;
  return auto_aes_mb();
}

Capabilities capabilities() {
  Capabilities c;
  c.features = cpu_features();
  c.forced_scalar = scalar_forced();
  const bool forced = c.forced_scalar;

  const char* aes_name = forced ? kAesScalar.name : auto_aes().name;
  c.primitives.push_back(
      {"aes", aes_name, std::string(aes_name) != "scalar"});
  const char* sha_name = forced ? "scalar" : auto_sha().name;
  c.primitives.push_back(
      {"sha1", sha_name, std::string(sha_name) != "scalar"});
  c.primitives.push_back(
      {"sha256", sha_name, std::string(sha_name) != "scalar"});
  const char* crc_name = forced ? "scalar" : auto_crc().name;
  c.primitives.push_back(
      {"crc32", crc_name, std::string(crc_name) != "scalar"});
  const char* mont_name = forced ? "scalar" : auto_mont().name;
  c.primitives.push_back(
      {"modexp-cios", mont_name, std::string(mont_name) != "scalar"});
  const char* mont_batch_name = forced ? "scalar" : auto_mont_batch().name;
  c.primitives.push_back({"modexp-batch", mont_batch_name,
                          std::string(mont_batch_name) != "scalar"});
  const char* sha_mb_name = forced ? "scalar" : auto_sha256_mb().name;
  c.primitives.push_back(
      {"sha256-mb", sha_mb_name, std::string(sha_mb_name) != "scalar"});
  const char* aes_mb_name = forced ? kAesMbScalar.name : auto_aes_mb().name;
  c.primitives.push_back(
      {"aes-mb", aes_mb_name, std::string(aes_mb_name) != "scalar"});
  return c;
}

std::string capabilities_summary() {
  const Capabilities c = capabilities();
  std::string out;
  for (const auto& p : c.primitives) {
    if (!out.empty()) out += ' ';
    out += p.primitive;
    out += '=';
    out += p.backend;
  }
  out += c.forced_scalar ? " (forced_scalar=on)" : " (forced_scalar=off)";
  return out;
}

}  // namespace mapsec::crypto::dispatch
