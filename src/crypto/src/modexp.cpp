#include "mapsec/crypto/modexp.hpp"

#include <stdexcept>

namespace mapsec::crypto {

Montgomery::Montgomery(const BigInt& modulus) : n_(modulus) {
  if (n_.is_even() || n_ <= BigInt(1))
    throw std::invalid_argument("Montgomery: modulus must be odd and > 1");
  k_ = n_.limbs().size();

  // n0inv = -n^{-1} mod 2^32 by Newton iteration (5 steps suffice for 32
  // bits: each step doubles the number of correct low bits).
  const std::uint32_t n0 = n_.limbs()[0];
  std::uint32_t x = n0;  // correct to 5 bits already (odd n0)
  for (int i = 0; i < 5; ++i) x *= 2u - n0 * x;
  n0inv_ = ~x + 1u;  // = -n0^{-1} mod 2^32

  // R^2 mod n with R = 2^(32k): compute by shifting.
  BigInt r = (BigInt(1) << (32 * k_)) % n_;
  rr_ = (r * r) % n_;
  one_mont_ = r;
}

BigInt Montgomery::mul(const BigInt& a, const BigInt& b,
                       MontStats* stats) const {
  // CIOS Montgomery multiplication over 32-bit limbs.
  const auto& aw = a.limbs();
  const auto& bw = b.limbs();
  std::vector<std::uint32_t> t(k_ + 2, 0);

  for (std::size_t i = 0; i < k_; ++i) {
    const std::uint64_t ai = i < aw.size() ? aw[i] : 0;

    // t += ai * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint64_t bj = j < bw.size() ? bw[j] : 0;
      const std::uint64_t cur = t[j] + ai * bj + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = std::uint64_t{t[k_]} + carry;
    t[k_] = static_cast<std::uint32_t>(cur);
    t[k_ + 1] = static_cast<std::uint32_t>(cur >> 32);

    // m = t[0] * n0inv mod 2^32; t += m * n; t >>= 32
    const std::uint32_t m = t[0] * n0inv_;
    const auto& nw = n_.limbs();
    carry = 0;
    {
      const std::uint64_t c0 =
          std::uint64_t{t[0]} + std::uint64_t{m} * nw[0];
      carry = c0 >> 32;
    }
    for (std::size_t j = 1; j < k_; ++j) {
      const std::uint64_t c =
          std::uint64_t{t[j]} + std::uint64_t{m} * nw[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(c);
      carry = c >> 32;
    }
    cur = std::uint64_t{t[k_]} + carry;
    t[k_ - 1] = static_cast<std::uint32_t>(cur);
    cur = std::uint64_t{t[k_ + 1]} + (cur >> 32);
    t[k_] = static_cast<std::uint32_t>(cur);
    t[k_ + 1] = 0;
  }

  BigInt result = BigInt::from_limbs(
      std::vector<std::uint32_t>(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k_ + 1)));
  if (stats) ++stats->mults;
  if (result >= n_) {
    result = result - n_;
    if (stats) ++stats->extra_reductions;
  }
  return result;
}

BigInt Montgomery::to_mont(const BigInt& x) const { return mul(x % n_, rr_); }

BigInt Montgomery::from_mont(const BigInt& x) const { return mul(x, BigInt(1)); }

BigInt Montgomery::exp(const BigInt& base, const BigInt& e, MontStats* stats,
                       MontOpSequence* seq) const {
  if (e.is_zero()) return BigInt(1) % n_;
  const BigInt bm = to_mont(base);
  BigInt acc = bm;
  const std::size_t bits = e.bit_length();
  for (std::size_t i = bits - 1; i-- > 0;) {
    acc = mul(acc, acc, stats);
    if (stats) {
      ++stats->squares;
      --stats->mults;  // the square was counted as a mult; reclassify
    }
    if (seq) seq->push_back(MontOp::kSquare);
    if (e.bit(i)) {
      acc = mul(acc, bm, stats);
      if (seq) seq->push_back(MontOp::kMultiply);
    }
  }
  return from_mont(acc);
}

BigInt Montgomery::exp_ladder(const BigInt& base, const BigInt& e,
                              MontStats* stats, MontOpSequence* seq) const {
  if (e.is_zero()) return BigInt(1) % n_;
  const BigInt bm = to_mont(base);
  // Montgomery ladder: invariant r1 = r0 * base (in the exponent sense);
  // every step does exactly one multiply and one square, in that order,
  // regardless of the key bit — the SPA-visible sequence is constant.
  BigInt r0 = one_mont_;
  BigInt r1 = bm;
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    if (e.bit(i)) {
      r0 = mul(r0, r1, stats);
      r1 = mul(r1, r1, stats);
    } else {
      r1 = mul(r0, r1, stats);
      r0 = mul(r0, r0, stats);
    }
    if (stats) {
      ++stats->squares;
      --stats->mults;
    }
    if (seq) {
      seq->push_back(MontOp::kMultiply);
      seq->push_back(MontOp::kSquare);
    }
  }
  return from_mont(r0);
}

namespace {

BigInt mod_exp_generic(const BigInt& base, const BigInt& e,
                       const BigInt& mod) {
  if (mod.is_zero()) throw std::domain_error("mod_exp: zero modulus");
  if (mod == BigInt(1)) return BigInt{};
  BigInt acc = 1;
  BigInt b = base % mod;
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    acc = (acc * acc) % mod;
    if (e.bit(i)) acc = (acc * b) % mod;
  }
  return acc;
}

}  // namespace

BigInt mod_exp(const BigInt& base, const BigInt& e, const BigInt& mod) {
  if (mod.is_odd() && mod > BigInt(1)) return Montgomery(mod).exp(base, e);
  return mod_exp_generic(base, e, mod);
}

BigInt mod_exp_ct(const BigInt& base, const BigInt& e, const BigInt& mod) {
  if (mod.is_odd() && mod > BigInt(1)) return Montgomery(mod).exp_ladder(base, e);
  return mod_exp_generic(base, e, mod);
}

}  // namespace mapsec::crypto
