#include "mapsec/crypto/modexp.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "kernels.hpp"

namespace mapsec::crypto {

namespace dispatch {

// The pre-dispatch 64-bit CIOS accumulation loop, now the scalar kernel.
// Produces the pre-conditional-subtraction REDC value in t[0..kw].
void mont_cios_w64_scalar(const std::uint64_t* a, const std::uint64_t* b,
                          const std::uint64_t* n, std::uint64_t n0inv,
                          std::uint64_t* t, std::size_t kw) {
  using u128 = unsigned __int128;
  std::memset(t, 0, (kw + 2) * sizeof(std::uint64_t));

  for (std::size_t i = 0; i < kw; ++i) {
    const std::uint64_t ai = a[i];

    // t += ai * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < kw; ++j) {
      const u128 cur = u128{t[j]} + u128{ai} * b[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    u128 cur = u128{t[kw]} + carry;
    t[kw] = static_cast<std::uint64_t>(cur);
    t[kw + 1] = static_cast<std::uint64_t>(cur >> 64);

    // m = t[0] * n0inv mod 2^64; t += m * n; t >>= 64
    const std::uint64_t m = t[0] * n0inv;
    carry = static_cast<std::uint64_t>((u128{t[0]} + u128{m} * n[0]) >> 64);
    for (std::size_t j = 1; j < kw; ++j) {
      const u128 c = u128{t[j]} + u128{m} * n[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(c);
      carry = static_cast<std::uint64_t>(c >> 64);
    }
    cur = u128{t[kw]} + carry;
    t[kw - 1] = static_cast<std::uint64_t>(cur);
    cur = u128{t[kw + 1]} + static_cast<std::uint64_t>(cur >> 64);
    t[kw] = static_cast<std::uint64_t>(cur);
    t[kw + 1] = 0;
  }
}

// The batched reference path: each lane run to completion through the
// scalar single-op kernel, in lane order. The ILP kernel must match this
// bit for bit (it reorders instructions across lanes, never arithmetic
// within one).
void mont_cios_w64_batch_scalar(const MontBatchOperand* ops,
                                std::size_t count, std::size_t kw) {
  for (std::size_t i = 0; i < count; ++i)
    mont_cios_w64_scalar(ops[i].a, ops[i].b, ops[i].n, ops[i].n0inv, ops[i].t,
                         kw);
}

}  // namespace dispatch

Montgomery::Montgomery(const BigInt& modulus) : n_(modulus) {
  if (n_.is_even() || n_ <= BigInt(1))
    throw std::invalid_argument("Montgomery: modulus must be odd and > 1");
  const std::size_t k32 = n_.limbs().size();
  radix32_ = k32 % 2 != 0;
  kw_ = radix32_ ? k32 : k32 / 2;

  n_limbs_.assign(kw_, 0);
  if (radix32_) {
    for (std::size_t i = 0; i < k32; ++i) n_limbs_[i] = n_.limbs()[i];
  } else {
    for (std::size_t i = 0; i < k32; ++i)
      n_limbs_[i / 2] |= std::uint64_t{n_.limbs()[i]} << (32 * (i % 2));
  }

  // n0inv = -n^{-1} mod 2^64 by Newton iteration (6 steps suffice for 64
  // bits: each step doubles the number of correct low bits). Radix-32
  // mode only consumes the low 32 bits.
  const std::uint64_t n0 = n_limbs_[0];
  std::uint64_t x = n0;  // correct to a few low bits already (odd n0)
  for (int i = 0; i < 6; ++i) x *= 2u - n0 * x;
  n0inv_ = ~x + 1u;  // = -n0^{-1} mod 2^64
  if (radix32_) n0inv_ &= 0xFFFFFFFFull;

  // R^2 mod n with R = 2^(32 k32) — identical for both radices.
  BigInt r = (BigInt(1) << (32 * k32)) % n_;
  rr_ = (r * r) % n_;
  one_mont_ = r;

  rr_limbs_.assign(kw_, 0);
  normalize_into(rr_, rr_limbs_.data());
  one_limbs_.assign(kw_, 0);
  one_limbs_[0] = 1;
  scratch_.assign(kw_ + 2, 0);
  mul_buf_.assign(3 * kw_, 0);
}

void Montgomery::normalize_into(const BigInt& x, std::uint64_t* out) const {
  // Callers routinely pass short-limb operands (values far below n);
  // zero-padding once here is what lets the CIOS loops run fixed-width
  // with no per-iteration bounds checks.
  std::memset(out, 0, kw_ * sizeof(std::uint64_t));
  const auto& xw = x.limbs();
  if (radix32_) {
    const std::size_t take = std::min(xw.size(), kw_);
    for (std::size_t i = 0; i < take; ++i) out[i] = xw[i];
  } else {
    const std::size_t take = std::min(xw.size(), 2 * kw_);
    for (std::size_t i = 0; i < take; ++i)
      out[i / 2] |= std::uint64_t{xw[i]} << (32 * (i % 2));
  }
}

BigInt Montgomery::from_raw(const std::uint64_t* limbs) const {
  if (radix32_) {
    std::vector<std::uint32_t> w(kw_);
    for (std::size_t i = 0; i < kw_; ++i)
      w[i] = static_cast<std::uint32_t>(limbs[i]);
    return BigInt::from_limbs(std::move(w));
  }
  std::vector<std::uint32_t> w(2 * kw_);
  for (std::size_t i = 0; i < kw_; ++i) {
    w[2 * i] = static_cast<std::uint32_t>(limbs[i]);
    w[2 * i + 1] = static_cast<std::uint32_t>(limbs[i] >> 32);
  }
  return BigInt::from_limbs(std::move(w));
}

void Montgomery::mul_raw(const std::uint64_t* a, const std::uint64_t* b,
                         std::uint64_t* out, MontStats* stats) const {
  radix32_ ? mul_raw_w32(a, b, out, stats) : mul_raw_w64(a, b, out, stats);
}

// 32-bit radix CIOS for odd-limb moduli: each buffer element carries one
// 32-bit limb, exactly the seed arithmetic (and so exactly its
// extra-reduction statistics) minus the per-call allocations.
void Montgomery::mul_raw_w32(const std::uint64_t* a, const std::uint64_t* b,
                             std::uint64_t* out, MontStats* stats) const {
  std::uint64_t* t = scratch_.data();
  std::memset(t, 0, (kw_ + 2) * sizeof(std::uint64_t));
  const std::uint64_t* nw = n_limbs_.data();

  for (std::size_t i = 0; i < kw_; ++i) {
    const std::uint64_t ai = a[i];

    // t += ai * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < kw_; ++j) {
      const std::uint64_t cur = t[j] + ai * b[j] + carry;
      t[j] = cur & 0xFFFFFFFFull;
      carry = cur >> 32;
    }
    std::uint64_t cur = t[kw_] + carry;
    t[kw_] = cur & 0xFFFFFFFFull;
    t[kw_ + 1] = cur >> 32;

    // m = t[0] * n0inv mod 2^32; t += m * n; t >>= 32
    const std::uint64_t m = (t[0] * n0inv_) & 0xFFFFFFFFull;
    carry = (t[0] + m * nw[0]) >> 32;
    for (std::size_t j = 1; j < kw_; ++j) {
      const std::uint64_t c = t[j] + m * nw[j] + carry;
      t[j - 1] = c & 0xFFFFFFFFull;
      carry = c >> 32;
    }
    cur = t[kw_] + carry;
    t[kw_ - 1] = cur & 0xFFFFFFFFull;
    cur = t[kw_ + 1] + (cur >> 32);
    t[kw_] = cur & 0xFFFFFFFFull;
    t[kw_ + 1] = 0;
  }

  if (stats) ++stats->mults;

  bool ge = t[kw_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t j = kw_; j-- > 0;) {
      if (t[j] != nw[j]) {
        ge = t[j] > nw[j];
        break;
      }
    }
  }
  if (ge) {
    std::uint64_t borrow = 0;
    for (std::size_t j = 0; j < kw_; ++j) {
      const std::uint64_t diff = t[j] - nw[j] - borrow;
      out[j] = diff & 0xFFFFFFFFull;
      borrow = (diff >> 63) & 1;  // negative wrap => borrow
    }
    if (stats) ++stats->extra_reductions;
  } else {
    std::memcpy(out, t, kw_ * sizeof(std::uint64_t));
  }
}

void Montgomery::mul_raw_w64(const std::uint64_t* a, const std::uint64_t* b,
                             std::uint64_t* out, MontStats* stats) const {
  // CIOS Montgomery multiplication over 64-bit limbs with 128-bit
  // accumulation; a, b and out are exactly kw_ limbs, the accumulator is
  // the preallocated scratch. The accumulation loop is dispatched (the
  // unrolled BMI2 kernel for common widths, the scalar kernel otherwise);
  // both produce the identical pre-subtraction value, and the final
  // data-dependent subtraction below stays in one place so the
  // extra-reduction statistics the timing attack consumes cannot drift
  // between backends.
  std::uint64_t* t = scratch_.data();
  dispatch::mont_cios_w64()(a, b, n_limbs_.data(), n0inv_, t, kw_);
  redc_finish(t, n_limbs_.data(), kw_, out, stats);
}

// Final conditional subtraction (the data-dependent "extra reduction"
// the timing attack measures): result = t - n when t >= n. Shared by the
// single-op path and BatchModExp so the extra-reduction statistics the
// timing attack consumes cannot drift between them.
void Montgomery::redc_finish(const std::uint64_t* t, const std::uint64_t* nw,
                             std::size_t kw, std::uint64_t* out,
                             MontStats* stats) {
  if (stats) ++stats->mults;

  bool ge = t[kw] != 0;
  if (!ge) {
    ge = true;  // assume equal until a differing limb decides
    for (std::size_t j = kw; j-- > 0;) {
      if (t[j] != nw[j]) {
        ge = t[j] > nw[j];
        break;
      }
    }
  }
  if (ge) {
    std::uint64_t borrow = 0;
    for (std::size_t j = 0; j < kw; ++j) {
      const std::uint64_t d0 = t[j] - nw[j];
      const std::uint64_t d1 = d0 - borrow;
      borrow = static_cast<std::uint64_t>((t[j] < nw[j]) | (d0 < borrow));
      out[j] = d1;
    }
    if (stats) ++stats->extra_reductions;
  } else {
    std::memcpy(out, t, kw * sizeof(std::uint64_t));
  }
}

BigInt Montgomery::mul(const BigInt& a, const BigInt& b,
                       MontStats* stats) const {
  std::uint64_t* aw = mul_buf_.data();
  std::uint64_t* bw = aw + kw_;
  std::uint64_t* out = bw + kw_;
  normalize_into(a, aw);
  normalize_into(b, bw);
  mul_raw(aw, bw, out, stats);
  return from_raw(out);
}

BigInt Montgomery::to_mont(const BigInt& x) const { return mul(x % n_, rr_); }

BigInt Montgomery::from_mont(const BigInt& x) const { return mul(x, BigInt(1)); }

BigInt Montgomery::exp(const BigInt& base, const BigInt& e, MontStats* stats,
                       MontOpSequence* seq) const {
  if (e.is_zero()) return BigInt(1) % n_;

  std::vector<std::uint64_t> ws(3 * kw_);
  std::uint64_t* bm = ws.data();
  std::uint64_t* acc = bm + kw_;
  std::uint64_t* tmp = acc + kw_;

  normalize_into(base % n_, tmp);
  mul_raw(tmp, rr_limbs_.data(), bm, nullptr);  // bm = base in Montgomery form
  std::memcpy(acc, bm, kw_ * sizeof(std::uint64_t));

  const std::size_t bits = e.bit_length();
  for (std::size_t i = bits - 1; i-- > 0;) {
    mul_raw(acc, acc, tmp, stats);
    std::swap(acc, tmp);
    if (stats) {
      ++stats->squares;
      --stats->mults;  // the square was counted as a mult; reclassify
    }
    if (seq) seq->push_back(MontOp::kSquare);
    if (e.bit(i)) {
      mul_raw(acc, bm, tmp, stats);
      std::swap(acc, tmp);
      if (seq) seq->push_back(MontOp::kMultiply);
    }
  }
  mul_raw(acc, one_limbs_.data(), tmp, nullptr);  // leave Montgomery form
  return from_raw(tmp);
}

BigInt Montgomery::exp_ladder(const BigInt& base, const BigInt& e,
                              MontStats* stats, MontOpSequence* seq) const {
  if (e.is_zero()) return BigInt(1) % n_;

  std::vector<std::uint64_t> ws(4 * kw_);
  std::uint64_t* bm = ws.data();
  std::uint64_t* r0 = bm + kw_;
  std::uint64_t* r1 = r0 + kw_;
  std::uint64_t* tmp = r1 + kw_;

  normalize_into(base % n_, tmp);
  mul_raw(tmp, rr_limbs_.data(), bm, nullptr);

  // Montgomery ladder: invariant r1 = r0 * base (in the exponent sense);
  // every step does exactly one multiply and one square, in that order,
  // regardless of the key bit — the SPA-visible sequence is constant.
  normalize_into(one_mont_, r0);
  std::memcpy(r1, bm, kw_ * sizeof(std::uint64_t));
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    if (e.bit(i)) {
      mul_raw(r0, r1, tmp, stats);
      std::memcpy(r0, tmp, kw_ * sizeof(std::uint64_t));
      mul_raw(r1, r1, tmp, stats);
      std::memcpy(r1, tmp, kw_ * sizeof(std::uint64_t));
    } else {
      mul_raw(r0, r1, tmp, stats);
      std::memcpy(r1, tmp, kw_ * sizeof(std::uint64_t));
      mul_raw(r0, r0, tmp, stats);
      std::memcpy(r0, tmp, kw_ * sizeof(std::uint64_t));
    }
    if (stats) {
      ++stats->squares;
      --stats->mults;
    }
    if (seq) {
      seq->push_back(MontOp::kMultiply);
      seq->push_back(MontOp::kSquare);
    }
  }
  mul_raw(r0, one_limbs_.data(), tmp, nullptr);
  return from_raw(tmp);
}

BigInt Montgomery::exp_fixed_window(const BigInt& base, const BigInt& e,
                                    MontStats* stats) const {
  if (e.is_zero()) return BigInt(1) % n_;

  constexpr std::size_t kWindowBits = 4;
  constexpr std::size_t kTableSize = 1u << kWindowBits;

  // table[w] = base^w in Montgomery form; table[0] = R mod n (the
  // Montgomery one), so "multiply by table[w]" is a real multiplication
  // for every window value — the operation sequence never depends on e.
  std::vector<std::uint64_t> table(kTableSize * kw_);
  std::vector<std::uint64_t> ws(3 * kw_);
  std::uint64_t* acc = ws.data();
  std::uint64_t* tmp = acc + kw_;
  std::uint64_t* sel = tmp + kw_;

  normalize_into(base % n_, tmp);
  mul_raw(tmp, rr_limbs_.data(), table.data() + kw_, nullptr);  // base^1
  normalize_into(one_mont_, table.data());                      // base^0
  for (std::size_t w = 2; w < kTableSize; ++w)
    mul_raw(table.data() + (w - 1) * kw_, table.data() + kw_,
            table.data() + w * kw_, nullptr);

  const auto select_ct = [&](std::uint32_t w) {
    // Constant-time table read: scan all 16 entries, accumulate the match
    // under a mask. No secret-indexed load reaches the memory system.
    std::memset(sel, 0, kw_ * sizeof(std::uint64_t));
    for (std::uint32_t j = 0; j < kTableSize; ++j) {
      const std::uint64_t mask =
          std::uint64_t{0} - static_cast<std::uint64_t>((j ^ w) == 0);
      const std::uint64_t* entry = table.data() + j * kw_;
      for (std::size_t l = 0; l < kw_; ++l) sel[l] |= entry[l] & mask;
    }
  };

  const std::size_t bits = e.bit_length();
  const std::size_t windows = (bits + kWindowBits - 1) / kWindowBits;

  const auto window_at = [&](std::size_t wi) {
    std::uint32_t w = 0;
    for (std::size_t b = 0; b < kWindowBits; ++b) {
      const std::size_t bit = wi * kWindowBits + b;
      if (bit < bits && e.bit(bit)) w |= 1u << b;
    }
    return w;
  };

  select_ct(window_at(windows - 1));
  std::memcpy(acc, sel, kw_ * sizeof(std::uint64_t));
  for (std::size_t wi = windows - 1; wi-- > 0;) {
    for (std::size_t s = 0; s < kWindowBits; ++s) {
      mul_raw(acc, acc, tmp, stats);
      std::swap(acc, tmp);
      if (stats) {
        ++stats->squares;
        --stats->mults;
      }
    }
    select_ct(window_at(wi));
    mul_raw(acc, sel, tmp, stats);
    std::swap(acc, tmp);
  }
  mul_raw(acc, one_limbs_.data(), tmp, nullptr);
  return from_raw(tmp);
}

namespace {

BigInt mod_exp_generic(const BigInt& base, const BigInt& e,
                       const BigInt& mod) {
  if (mod.is_zero()) throw std::domain_error("mod_exp: zero modulus");
  if (mod == BigInt(1)) return BigInt{};
  BigInt acc = 1;
  BigInt b = base % mod;
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    acc = (acc * acc) % mod;
    if (e.bit(i)) acc = (acc * b) % mod;
  }
  return acc;
}

}  // namespace

BigInt mod_exp(const BigInt& base, const BigInt& e, const BigInt& mod) {
  if (mod.is_odd() && mod > BigInt(1))
    return Montgomery(mod).exp_fixed_window(base, e);
  return mod_exp_generic(base, e, mod);
}

BigInt mod_exp_ct(const BigInt& base, const BigInt& e, const BigInt& mod) {
  if (mod.is_odd() && mod > BigInt(1)) return Montgomery(mod).exp_ladder(base, e);
  return mod_exp_generic(base, e, mod);
}

}  // namespace mapsec::crypto
