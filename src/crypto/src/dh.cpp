#include "mapsec/crypto/dh.hpp"

#include <stdexcept>

#include "mapsec/crypto/modexp.hpp"
#include "mapsec/crypto/prime.hpp"

namespace mapsec::crypto {

DhGroup DhGroup::oakley_group2() {
  // RFC 2409 section 6.2: 1024-bit MODP prime, generator 2.
  return {BigInt::from_hex(
              "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
              "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
              "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
              "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
              "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381"
              "FFFFFFFFFFFFFFFF"),
          BigInt(2)};
}

DhGroup DhGroup::modp2048() {
  // RFC 3526 group 14: 2048-bit MODP prime, generator 2.
  return {BigInt::from_hex(
              "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
              "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
              "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
              "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
              "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
              "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
              "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
              "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
              "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
              "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
              "15728E5A8AACAA68FFFFFFFFFFFFFFFF"),
          BigInt(2)};
}

DhGroup DhGroup::generate(Rng& rng, std::size_t bits) {
  const BigInt p = generate_safe_prime(rng, bits);
  // For a safe prime, g = 4 = 2^2 generates the order-q subgroup.
  return {p, BigInt(4)};
}

DhKeyPair dh_generate(const DhGroup& group, Rng& rng) {
  // Private exponent in [2, p-2].
  const BigInt x =
      BigInt(2) + BigInt::random_below(rng, group.p - BigInt(3));
  return {x, mod_exp_ct(group.g, x, group.p)};
}

BigInt dh_shared_secret(const DhGroup& group, const BigInt& private_key,
                        const BigInt& peer_public) {
  const BigInt p_minus_1 = group.p - BigInt(1);
  if (peer_public <= BigInt(1) || peer_public >= p_minus_1)
    throw std::invalid_argument("dh_shared_secret: degenerate peer value");
  return mod_exp_ct(peer_public, private_key, group.p);
}

}  // namespace mapsec::crypto
