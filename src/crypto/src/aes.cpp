#include "mapsec/crypto/aes.hpp"

#include <cstring>
#include <stdexcept>

namespace mapsec::crypto {

namespace aes_detail {

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1B : 0x00));
}

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t acc = 0;
  while (b) {
    if (b & 1) acc ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return acc;
}

namespace {

// The S-box is derived at startup from its definition (multiplicative
// inverse in GF(2^8) followed by the affine transform) rather than typed in
// as a 256-entry literal, eliminating transcription errors.
struct SboxTables {
  std::array<std::uint8_t, 256> fwd{};
  std::array<std::uint8_t, 256> inv{};

  SboxTables() {
    for (int x = 0; x < 256; ++x) {
      std::uint8_t invx = 0;
      if (x != 0) {
        for (int c = 1; c < 256; ++c) {
          if (gmul(static_cast<std::uint8_t>(x),
                   static_cast<std::uint8_t>(c)) == 1) {
            invx = static_cast<std::uint8_t>(c);
            break;
          }
        }
      }
      std::uint8_t b = invx;
      const auto rotl8 = [](std::uint8_t v, int n) {
        return static_cast<std::uint8_t>((v << n) | (v >> (8 - n)));
      };
      const std::uint8_t s = static_cast<std::uint8_t>(
          b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63);
      fwd[static_cast<std::size_t>(x)] = s;
      inv[s] = static_cast<std::uint8_t>(x);
    }
  }
};

const SboxTables& tables() {
  static const SboxTables t;
  return t;
}

}  // namespace

std::uint8_t sbox(std::uint8_t x) { return tables().fwd[x]; }
std::uint8_t inv_sbox(std::uint8_t x) { return tables().inv[x]; }

}  // namespace aes_detail

namespace {

using aes_detail::gmul;
using aes_detail::inv_sbox;
using aes_detail::sbox;
using aes_detail::xtime;

std::uint32_t sub_word(std::uint32_t w) {
  return (std::uint32_t{sbox(static_cast<std::uint8_t>(w >> 24))} << 24) |
         (std::uint32_t{sbox(static_cast<std::uint8_t>(w >> 16))} << 16) |
         (std::uint32_t{sbox(static_cast<std::uint8_t>(w >> 8))} << 8) |
         std::uint32_t{sbox(static_cast<std::uint8_t>(w))};
}

std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

// State is a flat 16-byte array: s[4*col + row] (FIPS 197 column order,
// identical to the block byte order).
void add_round_key(std::uint8_t* s, const std::uint32_t* rk) {
  for (int c = 0; c < 4; ++c) {
    const std::uint32_t w = rk[c];
    s[4 * c + 0] ^= static_cast<std::uint8_t>(w >> 24);
    s[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
    s[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
    s[4 * c + 3] ^= static_cast<std::uint8_t>(w);
  }
}

void sub_bytes(std::uint8_t* s) {
  for (int i = 0; i < 16; ++i) s[i] = sbox(s[i]);
}

void inv_sub_bytes(std::uint8_t* s) {
  for (int i = 0; i < 16; ++i) s[i] = inv_sbox(s[i]);
}

void shift_rows(std::uint8_t* s) {
  std::uint8_t t[16];
  std::memcpy(t, s, 16);
  for (int r = 1; r < 4; ++r)
    for (int c = 0; c < 4; ++c) s[4 * c + r] = t[4 * ((c + r) % 4) + r];
}

void inv_shift_rows(std::uint8_t* s) {
  std::uint8_t t[16];
  std::memcpy(t, s, 16);
  for (int r = 1; r < 4; ++r)
    for (int c = 0; c < 4; ++c) s[4 * ((c + r) % 4) + r] = t[4 * c + r];
}

void mix_columns(std::uint8_t* s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

void inv_mix_columns(std::uint8_t* s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                       gmul(a2, 13) ^ gmul(a3, 9));
    col[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                       gmul(a2, 11) ^ gmul(a3, 13));
    col[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                       gmul(a2, 14) ^ gmul(a3, 11));
    col[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                       gmul(a2, 9) ^ gmul(a3, 14));
  }
}

}  // namespace

Aes::Aes(ConstBytes key) {
  const std::size_t nk = key.size() / 4;
  if (key.size() != 16 && key.size() != 24 && key.size() != 32)
    throw std::invalid_argument("AES key must be 16, 24 or 32 bytes");
  rounds_ = static_cast<int>(nk) + 6;
  const std::size_t total_words = 4 * (static_cast<std::size_t>(rounds_) + 1);
  rk_.resize(total_words);
  for (std::size_t i = 0; i < nk; ++i) rk_[i] = load_be32(key.data() + 4 * i);
  std::uint8_t rcon = 1;
  for (std::size_t i = nk; i < total_words; ++i) {
    std::uint32_t temp = rk_[i - 1];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^ (std::uint32_t{rcon} << 24);
      rcon = xtime(rcon);
    } else if (nk > 6 && i % nk == 4) {
      temp = sub_word(temp);
    }
    rk_[i] = rk_[i - nk] ^ temp;
  }
}

void Aes::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  add_round_key(s, rk_.data());
  for (int round = 1; round < rounds_; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, rk_.data() + 4 * round);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, rk_.data() + 4 * rounds_);
  std::memcpy(out, s, 16);
}

void Aes::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  add_round_key(s, rk_.data() + 4 * rounds_);
  for (int round = rounds_ - 1; round >= 1; --round) {
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, rk_.data() + 4 * round);
    inv_mix_columns(s);
  }
  inv_shift_rows(s);
  inv_sub_bytes(s);
  add_round_key(s, rk_.data());
  std::memcpy(out, s, 16);
}

}  // namespace mapsec::crypto
