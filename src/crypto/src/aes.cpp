#include "mapsec/crypto/aes.hpp"

#include <cstring>
#include <stdexcept>

#include "kernels.hpp"

namespace mapsec::crypto {

namespace aes_detail {

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1B : 0x00));
}

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t acc = 0;
  while (b) {
    if (b & 1) acc ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return acc;
}

namespace {

// The S-box (and the round T-tables derived from it) are computed at
// startup from their definitions — multiplicative inverse in GF(2^8)
// followed by the affine transform, then the MixColumns coefficients —
// rather than typed in as 256-entry literals, eliminating transcription
// errors.
//
// Te0[x] packs the four MixColumns products of S[x] for a row-0 byte:
//   Te0[x] = (2·S[x], S[x], S[x], 3·S[x]) big-endian; Te1..Te3 are byte
// rotations of Te0 for rows 1..3. Td0..Td3 are the same construction over
// the inverse S-box with the InvMixColumns coefficients (14, 9, 13, 11).
struct AesTables {
  std::array<std::uint8_t, 256> fwd{};
  std::array<std::uint8_t, 256> inv{};
  std::array<std::uint32_t, 256> te[4];
  std::array<std::uint32_t, 256> td[4];

  AesTables() {
    const auto rotl8 = [](std::uint8_t v, int n) {
      return static_cast<std::uint8_t>((v << n) | (v >> (8 - n)));
    };
    for (int x = 0; x < 256; ++x) {
      std::uint8_t invx = 0;
      if (x != 0) {
        for (int c = 1; c < 256; ++c) {
          if (gmul(static_cast<std::uint8_t>(x),
                   static_cast<std::uint8_t>(c)) == 1) {
            invx = static_cast<std::uint8_t>(c);
            break;
          }
        }
      }
      const std::uint8_t b = invx;
      const std::uint8_t s = static_cast<std::uint8_t>(
          b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63);
      fwd[static_cast<std::size_t>(x)] = s;
      inv[s] = static_cast<std::uint8_t>(x);
    }
    for (int x = 0; x < 256; ++x) {
      const std::uint8_t s = fwd[static_cast<std::size_t>(x)];
      const std::uint32_t e0 = (std::uint32_t{gmul(s, 2)} << 24) |
                               (std::uint32_t{s} << 16) |
                               (std::uint32_t{s} << 8) |
                               std::uint32_t{gmul(s, 3)};
      const std::uint8_t is = inv[static_cast<std::size_t>(x)];
      const std::uint32_t d0 = (std::uint32_t{gmul(is, 14)} << 24) |
                               (std::uint32_t{gmul(is, 9)} << 16) |
                               (std::uint32_t{gmul(is, 13)} << 8) |
                               std::uint32_t{gmul(is, 11)};
      for (int r = 0; r < 4; ++r) {
        te[r][static_cast<std::size_t>(x)] = rotr32(e0, 8 * static_cast<unsigned>(r));
        td[r][static_cast<std::size_t>(x)] = rotr32(d0, 8 * static_cast<unsigned>(r));
      }
    }
  }
};

const AesTables& tables() {
  static const AesTables t;
  return t;
}

}  // namespace

std::uint8_t sbox(std::uint8_t x) { return tables().fwd[x]; }
std::uint8_t inv_sbox(std::uint8_t x) { return tables().inv[x]; }

}  // namespace aes_detail

namespace {

using aes_detail::gmul;
using aes_detail::inv_sbox;
using aes_detail::sbox;
using aes_detail::xtime;

std::uint32_t sub_word(std::uint32_t w) {
  return (std::uint32_t{sbox(static_cast<std::uint8_t>(w >> 24))} << 24) |
         (std::uint32_t{sbox(static_cast<std::uint8_t>(w >> 16))} << 16) |
         (std::uint32_t{sbox(static_cast<std::uint8_t>(w >> 8))} << 8) |
         std::uint32_t{sbox(static_cast<std::uint8_t>(w))};
}

std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

// InvMixColumns on a round-key word, for the equivalent inverse cipher's
// transformed decryption schedule (FIPS 197 §5.3.5).
std::uint32_t inv_mix_word(std::uint32_t w) {
  const std::uint8_t a0 = static_cast<std::uint8_t>(w >> 24);
  const std::uint8_t a1 = static_cast<std::uint8_t>(w >> 16);
  const std::uint8_t a2 = static_cast<std::uint8_t>(w >> 8);
  const std::uint8_t a3 = static_cast<std::uint8_t>(w);
  return (std::uint32_t{static_cast<std::uint8_t>(
              gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9))}
          << 24) |
         (std::uint32_t{static_cast<std::uint8_t>(
              gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13))}
          << 16) |
         (std::uint32_t{static_cast<std::uint8_t>(
              gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11))}
          << 8) |
         std::uint32_t{static_cast<std::uint8_t>(
             gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14))};
}

}  // namespace

Aes::Aes(ConstBytes key) {
  const std::size_t nk = key.size() / 4;
  if (key.size() != 16 && key.size() != 24 && key.size() != 32)
    throw std::invalid_argument("AES key must be 16, 24 or 32 bytes");
  rounds_ = static_cast<int>(nk) + 6;
  const std::size_t total_words = 4 * (static_cast<std::size_t>(rounds_) + 1);
  for (std::size_t i = 0; i < nk; ++i) rk_[i] = load_be32(key.data() + 4 * i);
  std::uint8_t rcon = 1;
  for (std::size_t i = nk; i < total_words; ++i) {
    std::uint32_t temp = rk_[i - 1];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^ (std::uint32_t{rcon} << 24);
      rcon = xtime(rcon);
    } else if (nk > 6 && i % nk == 4) {
      temp = sub_word(temp);
    }
    rk_[i] = rk_[i - nk] ^ temp;
  }

  // Decryption schedule: encryption keys in reverse round order, inner
  // rounds passed through InvMixColumns so decryption can use the Td
  // tables directly. (This is also exactly the schedule the AES-NI
  // aesdec/aesdeclast instructions expect.)
  for (int round = 0; round <= rounds_; ++round) {
    const std::size_t src = 4 * static_cast<std::size_t>(rounds_ - round);
    const std::size_t dst = 4 * static_cast<std::size_t>(round);
    for (std::size_t c = 0; c < 4; ++c) {
      const std::uint32_t w = rk_[src + c];
      rkd_[dst + c] =
          (round == 0 || round == rounds_) ? w : inv_mix_word(w);
    }
  }

  // Serialized byte forms for the hardware kernels (one 16-byte load per
  // round key instead of four word re-packs per block).
  for (std::size_t i = 0; i < total_words; ++i) {
    store_be32(rkb_.data() + 4 * i, rk_[i]);
    store_be32(rkdb_.data() + 4 * i, rkd_[i]);
  }
}

void Aes::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  dispatch::aes_kernels().encrypt_block(dispatch::enc_schedule(*this), in,
                                        out);
}

void Aes::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  dispatch::aes_kernels().decrypt_block(dispatch::dec_schedule(*this), in,
                                        out);
}

namespace dispatch {

// The pre-dispatch T-table implementations, now the scalar kernels.

void aes_encrypt_scalar(const AesSchedule& s, const std::uint8_t* in,
                        std::uint8_t* out) {
  const auto& t = aes_detail::tables();
  const std::uint32_t* rk = s.words;

  std::uint32_t s0 = load_be32(in) ^ rk[0];
  std::uint32_t s1 = load_be32(in + 4) ^ rk[1];
  std::uint32_t s2 = load_be32(in + 8) ^ rk[2];
  std::uint32_t s3 = load_be32(in + 12) ^ rk[3];
  rk += 4;

  for (int round = 1; round < s.rounds; ++round, rk += 4) {
    const std::uint32_t u0 = t.te[0][s0 >> 24] ^ t.te[1][(s1 >> 16) & 0xFF] ^
                             t.te[2][(s2 >> 8) & 0xFF] ^ t.te[3][s3 & 0xFF] ^
                             rk[0];
    const std::uint32_t u1 = t.te[0][s1 >> 24] ^ t.te[1][(s2 >> 16) & 0xFF] ^
                             t.te[2][(s3 >> 8) & 0xFF] ^ t.te[3][s0 & 0xFF] ^
                             rk[1];
    const std::uint32_t u2 = t.te[0][s2 >> 24] ^ t.te[1][(s3 >> 16) & 0xFF] ^
                             t.te[2][(s0 >> 8) & 0xFF] ^ t.te[3][s1 & 0xFF] ^
                             rk[2];
    const std::uint32_t u3 = t.te[0][s3 >> 24] ^ t.te[1][(s0 >> 16) & 0xFF] ^
                             t.te[2][(s1 >> 8) & 0xFF] ^ t.te[3][s2 & 0xFF] ^
                             rk[3];
    s0 = u0;
    s1 = u1;
    s2 = u2;
    s3 = u3;
  }

  // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
  const auto last = [&](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                        std::uint32_t d, std::uint32_t k) {
    return ((std::uint32_t{t.fwd[a >> 24]} << 24) |
            (std::uint32_t{t.fwd[(b >> 16) & 0xFF]} << 16) |
            (std::uint32_t{t.fwd[(c >> 8) & 0xFF]} << 8) |
            std::uint32_t{t.fwd[d & 0xFF]}) ^
           k;
  };
  store_be32(out, last(s0, s1, s2, s3, rk[0]));
  store_be32(out + 4, last(s1, s2, s3, s0, rk[1]));
  store_be32(out + 8, last(s2, s3, s0, s1, rk[2]));
  store_be32(out + 12, last(s3, s0, s1, s2, rk[3]));
}

void aes_decrypt_scalar(const AesSchedule& s, const std::uint8_t* in,
                        std::uint8_t* out) {
  const auto& t = aes_detail::tables();
  const std::uint32_t* rk = s.words;

  std::uint32_t s0 = load_be32(in) ^ rk[0];
  std::uint32_t s1 = load_be32(in + 4) ^ rk[1];
  std::uint32_t s2 = load_be32(in + 8) ^ rk[2];
  std::uint32_t s3 = load_be32(in + 12) ^ rk[3];
  rk += 4;

  for (int round = 1; round < s.rounds; ++round, rk += 4) {
    const std::uint32_t u0 = t.td[0][s0 >> 24] ^ t.td[1][(s3 >> 16) & 0xFF] ^
                             t.td[2][(s2 >> 8) & 0xFF] ^ t.td[3][s1 & 0xFF] ^
                             rk[0];
    const std::uint32_t u1 = t.td[0][s1 >> 24] ^ t.td[1][(s0 >> 16) & 0xFF] ^
                             t.td[2][(s3 >> 8) & 0xFF] ^ t.td[3][s2 & 0xFF] ^
                             rk[1];
    const std::uint32_t u2 = t.td[0][s2 >> 24] ^ t.td[1][(s1 >> 16) & 0xFF] ^
                             t.td[2][(s0 >> 8) & 0xFF] ^ t.td[3][s3 & 0xFF] ^
                             rk[2];
    const std::uint32_t u3 = t.td[0][s3 >> 24] ^ t.td[1][(s2 >> 16) & 0xFF] ^
                             t.td[2][(s1 >> 8) & 0xFF] ^ t.td[3][s0 & 0xFF] ^
                             rk[3];
    s0 = u0;
    s1 = u1;
    s2 = u2;
    s3 = u3;
  }

  const auto last = [&](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                        std::uint32_t d, std::uint32_t k) {
    return ((std::uint32_t{t.inv[a >> 24]} << 24) |
            (std::uint32_t{t.inv[(b >> 16) & 0xFF]} << 16) |
            (std::uint32_t{t.inv[(c >> 8) & 0xFF]} << 8) |
            std::uint32_t{t.inv[d & 0xFF]}) ^
           k;
  };
  store_be32(out, last(s0, s3, s2, s1, rk[0]));
  store_be32(out + 4, last(s1, s0, s3, s2, rk[1]));
  store_be32(out + 8, last(s2, s1, s0, s3, rk[2]));
  store_be32(out + 12, last(s3, s2, s1, s0, rk[3]));
}

// The scalar table leaves the span kernels null: ctr_crypt / cbc_mac /
// cbc_decrypt_in_place keep their original generic loops on this backend,
// so forcing scalar exercises literally the pre-dispatch code paths.
const AesKernels kAesScalar = {"scalar", aes_encrypt_scalar,
                               aes_decrypt_scalar, nullptr, nullptr,
                               nullptr};

}  // namespace dispatch

}  // namespace mapsec::crypto
