#include "mapsec/crypto/rng.hpp"

#include <stdexcept>

#include "mapsec/crypto/hmac.hpp"

namespace mapsec::crypto {

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

std::uint32_t Rng::next_u32() {
  std::uint8_t b[4];
  fill(b);
  return load_be32(b);
}

std::uint64_t Rng::next_u64() {
  std::uint8_t b[8];
  fill(b);
  return load_be64(b);
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::below: bound must be > 0");
  // Rejection sampling over the largest multiple of bound.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

// ---- SimTrng ---------------------------------------------------------------

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

SimTrng::SimTrng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t SimTrng::next_raw() {
  const std::uint64_t result = rotl64(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl64(s_[3], 45);
  return result;
}

void SimTrng::inject_stuck_fault(std::uint8_t stuck_value) {
  stuck_ = true;
  stuck_value_ = stuck_value;
}

void SimTrng::health_check(std::uint32_t block) {
  // Continuous test (FIPS 140-2 4.9.2): consecutive equal blocks fail.
  if (have_prev_ && block == prev_block_) healthy_ = false;
  prev_block_ = block;
  have_prev_ = true;

  // Monobit and poker statistics over a 20000-bit window.
  constexpr std::uint64_t kWindowBits = 20000;
  for (int i = 0; i < 8; ++i)
    ++nibble_counts_[(block >> (4 * i)) & 0xF];
  ones_ += static_cast<std::uint64_t>(__builtin_popcount(block));
  window_bits_ += 32;
  if (window_bits_ >= kWindowBits) {
    // Monobit: 9725 < ones < 10275 (scaled to the actual window size).
    const double frac = static_cast<double>(ones_) /
                        static_cast<double>(window_bits_);
    if (frac < 0.48625 || frac > 0.51375) healthy_ = false;
    // Poker: 2.16 < X < 46.17 for 5000 nibbles; compute the statistic on
    // the nibbles we actually collected.
    const double n_nibbles = static_cast<double>(window_bits_) / 4.0;
    double sum_sq = 0;
    for (const auto c : nibble_counts_)
      sum_sq += static_cast<double>(c) * static_cast<double>(c);
    const double x = (16.0 / n_nibbles) * sum_sq - n_nibbles;
    if (x < 1.03 || x > 57.4) healthy_ = false;
    window_bits_ = 0;
    ones_ = 0;
    for (auto& c : nibble_counts_) c = 0;
  }
}

void SimTrng::fill(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint32_t block;
    if (stuck_) {
      block = static_cast<std::uint32_t>(stuck_value_) * 0x01010101u;
    } else {
      block = static_cast<std::uint32_t>(next_raw());
    }
    health_check(block);
    for (int k = 0; k < 4 && i < out.size(); ++k, ++i)
      out[i] = static_cast<std::uint8_t>(block >> (8 * k));
  }
}

// ---- HmacDrbg --------------------------------------------------------------

HmacDrbg::HmacDrbg(ConstBytes seed)
    : key_(Sha256::kDigestSize, 0x00), v_(Sha256::kDigestSize, 0x01) {
  update(seed);
  reseed_counter_ = 1;
}

HmacDrbg::HmacDrbg(std::uint64_t seed) : HmacDrbg([&] {
  Bytes s(8);
  store_be64(s.data(), seed);
  return s;
}()) {}

void HmacDrbg::update(ConstBytes provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  {
    HmacSha256 h(key_);
    h.update(v_);
    const std::uint8_t zero = 0x00;
    h.update(ConstBytes{&zero, 1});
    h.update(provided);
    key_ = h.finish();
  }
  v_ = HmacSha256::mac(key_, v_);
  if (!provided.empty()) {
    HmacSha256 h(key_);
    h.update(v_);
    const std::uint8_t one = 0x01;
    h.update(ConstBytes{&one, 1});
    h.update(provided);
    key_ = h.finish();
    v_ = HmacSha256::mac(key_, v_);
  }
}

void HmacDrbg::reseed(ConstBytes entropy) {
  update(entropy);
  reseed_counter_ = 1;
}

void HmacDrbg::fill(std::span<std::uint8_t> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    v_ = HmacSha256::mac(key_, v_);
    const std::size_t take = std::min(v_.size(), out.size() - off);
    for (std::size_t i = 0; i < take; ++i) out[off + i] = v_[i];
    off += take;
  }
  update({});
  ++reseed_counter_;
}

}  // namespace mapsec::crypto
