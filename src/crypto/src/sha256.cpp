#include "mapsec/crypto/sha256.hpp"

#include <algorithm>
#include <cstring>

#include "kernels.hpp"

namespace mapsec::crypto {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

namespace dispatch {

// The pre-dispatch compression loop, now the scalar kernel.
void sha256_compress_scalar(std::uint32_t state[8], const std::uint8_t* blocks,
                            std::size_t nblocks) {
  while (nblocks--) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(blocks + 4 * i);
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr32(w[i - 15], 7) ^ rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr32(w[i - 2], 17) ^ rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
    blocks += 64;
  }
}

// Multi-buffer reference path: each lane advanced through the scalar
// compressor in lane order. The AVX2 kernel must match this bit for bit.
void sha256_mb_scalar(std::uint32_t* const* states,
                      const std::uint8_t* const* blocks, std::size_t nlanes,
                      std::size_t nblocks) {
  for (std::size_t l = 0; l < nlanes; ++l)
    sha256_compress_scalar(states[l], blocks[l], nblocks);
}

}  // namespace dispatch

void Sha256::reset() {
  h_ = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
        0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
  buf_len_ = 0;
  total_len_ = 0;
}

void Sha256::process_block(const std::uint8_t* block) {
  dispatch::sha256_compress()(h_.data(), block, 1);
}

void Sha256::update(ConstBytes data) {
  total_len_ += data.size();
  std::size_t off = 0;
  if (buf_len_ > 0) {
    const std::size_t take = std::min(kBlockSize - buf_len_, data.size());
    std::memcpy(buf_.data() + buf_len_, data.data(), take);
    buf_len_ += take;
    off += take;
    if (buf_len_ == kBlockSize) {
      process_block(buf_.data());
      buf_len_ = 0;
    }
  }
  // All whole blocks in one dispatched call: the active backend keeps the
  // chaining state in registers across the entire span.
  const std::size_t nblocks = (data.size() - off) / kBlockSize;
  if (nblocks > 0) {
    dispatch::sha256_compress()(h_.data(), data.data() + off, nblocks);
    off += nblocks * kBlockSize;
  }
  if (off < data.size()) {
    std::memcpy(buf_.data(), data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

void Sha256::finish_into(std::uint8_t* out) {
  const std::uint64_t bit_len = total_len_ * 8;
  buf_[buf_len_++] = 0x80;
  if (buf_len_ > 56) {
    std::memset(buf_.data() + buf_len_, 0, kBlockSize - buf_len_);
    process_block(buf_.data());
    buf_len_ = 0;
  }
  std::memset(buf_.data() + buf_len_, 0, 56 - buf_len_);
  store_be64(buf_.data() + 56, bit_len);
  process_block(buf_.data());
  buf_len_ = 0;

  for (int i = 0; i < 8; ++i) store_be32(out + 4 * i, h_[i]);
}

Bytes Sha256::finish() {
  Bytes digest(kDigestSize);
  finish_into(digest.data());
  return digest;
}

Bytes Sha256::hash(ConstBytes data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

void Sha256::hash_into(ConstBytes data, std::uint8_t* out) {
  Sha256 h;
  h.update(data);
  h.finish_into(out);
}

std::vector<Bytes> sha256_many(const std::vector<ConstBytes>& msgs) {
  const std::size_t n = msgs.size();
  std::vector<Bytes> digests(n);
  if (n == 0) return digests;

  // Pad every message up front (FIPS 180-2 Merkle–Damgård padding), then
  // drive all lanes lockstep through the multi-buffer compressor: each
  // round advances every still-active lane by the minimum remaining block
  // count, so a lane's state transitions are exactly the ones Sha256::hash
  // would produce and the digests are byte-identical by construction.
  std::vector<Bytes> padded(n);
  std::vector<std::array<std::uint32_t, 8>> states(
      n, {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au, 0x510e527fu,
          0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u});
  std::vector<std::size_t> remaining(n);
  std::vector<const std::uint8_t*> cursor(n);
  for (std::size_t l = 0; l < n; ++l) {
    const std::size_t len = msgs[l].size();
    const std::size_t total = ((len + 8) / Sha256::kBlockSize + 1) *
                              Sha256::kBlockSize;
    padded[l].assign(total, 0);
    std::memcpy(padded[l].data(), msgs[l].data(), len);
    padded[l][len] = 0x80;
    store_be64(padded[l].data() + total - 8, std::uint64_t{len} * 8);
    remaining[l] = total / Sha256::kBlockSize;
    cursor[l] = padded[l].data();
  }

  std::vector<std::uint32_t*> lane_states;
  std::vector<const std::uint8_t*> lane_blocks;
  std::vector<std::size_t> lane_index;
  for (;;) {
    lane_states.clear();
    lane_blocks.clear();
    lane_index.clear();
    std::size_t step = 0;
    for (std::size_t l = 0; l < n; ++l) {
      if (remaining[l] == 0) continue;
      step = step == 0 ? remaining[l] : std::min(step, remaining[l]);
      lane_states.push_back(states[l].data());
      lane_blocks.push_back(cursor[l]);
      lane_index.push_back(l);
    }
    if (lane_index.empty()) break;
    dispatch::sha256_mb()(lane_states.data(), lane_blocks.data(),
                          lane_index.size(), step);
    for (const std::size_t l : lane_index) {
      remaining[l] -= step;
      cursor[l] += step * Sha256::kBlockSize;
    }
  }

  for (std::size_t l = 0; l < n; ++l) {
    digests[l].resize(Sha256::kDigestSize);
    for (int i = 0; i < 8; ++i)
      store_be32(digests[l].data() + 4 * i, states[l][i]);
  }
  return digests;
}

}  // namespace mapsec::crypto
