#include "mapsec/crypto/batch_modexp.hpp"

#include <algorithm>
#include <cstring>

#include "kernels.hpp"

namespace mapsec::crypto {

namespace {

// One interleaved exponentiation, stepped through the same program
// Montgomery::exp() runs:
//
//   init:    bm  = REDC(base_norm * RR)        (no stats)
//            acc = bm
//   per bit: acc = REDC(acc * acc)             (square: ++squares)
//            if e.bit(i): acc = REDC(acc * bm) (multiply: ++mults)
//   final:   out = REDC(acc * 1)               (no stats)
//
// Each step is one CIOS multiplication; the lane exposes its current
// multiplication as a MontBatchOperand and advances when the caller
// reports it complete.
struct Lane {
  enum class Phase { kInit, kSquare, kMultiply, kFinal, kDone };

  const Montgomery* m = nullptr;
  const BigInt* e = nullptr;
  MontStats* stats = nullptr;
  std::size_t slot = 0;  // index into the result vector
  std::size_t kw = 0;
  Phase phase = Phase::kInit;
  std::size_t i = 0;  // current exponent bit (valid in kSquare/kMultiply)
  std::vector<std::uint64_t> buf;  // bm | acc | tmp | t(kw + 2)
  std::uint64_t* bm = nullptr;
  std::uint64_t* acc = nullptr;
  std::uint64_t* tmp = nullptr;
  std::uint64_t* t = nullptr;
};

struct PendingOp {
  Lane* lane;
  dispatch::MontBatchOperand op;
  std::uint64_t* dest;
  MontStats* stats;  // null for the init/final conversions, as in exp()
};

}  // namespace

std::vector<BigInt> BatchModExp::run(const std::vector<Request>& reqs) {
  std::vector<BigInt> results(reqs.size());
  std::vector<Lane> lanes;
  lanes.reserve(reqs.size());

  for (std::size_t r = 0; r < reqs.size(); ++r) {
    const Request& req = reqs[r];
    // The zero-exponent early-out and the radix-32 engine (odd-32-bit-
    // limb moduli) take the sequential path verbatim — both are exactly
    // mont->exp(), so batching them buys nothing and risks divergence.
    if (req.exponent.is_zero()) {
      results[r] = BigInt(1) % req.mont->modulus();
      continue;
    }
    if (req.mont->radix32_) {
      results[r] = req.mont->exp(req.base, req.exponent, req.stats);
      continue;
    }
    Lane lane;
    lane.m = req.mont;
    lane.e = &req.exponent;
    lane.stats = req.stats;
    lane.slot = r;
    lane.kw = req.mont->kw_;
    lane.buf.assign(3 * lane.kw + lane.kw + 2, 0);
    lane.bm = lane.buf.data();
    lane.acc = lane.bm + lane.kw;
    lane.tmp = lane.acc + lane.kw;
    lane.t = lane.tmp + lane.kw;
    // tmp holds the normalized base; the init multiplication sends it to
    // Montgomery form.
    req.mont->normalize_into(req.base % req.mont->n_, lane.tmp);
    lanes.push_back(std::move(lane));
  }

  std::vector<PendingOp> ops;
  std::vector<dispatch::MontBatchOperand> kernel_ops;
  for (;;) {
    // Gather each active lane's current multiplication.
    ops.clear();
    for (Lane& lane : lanes) {
      const Montgomery& m = *lane.m;
      PendingOp p{&lane,
                  {nullptr, nullptr, m.n_limbs_.data(), m.n0inv_, lane.t},
                  lane.tmp,
                  nullptr};
      switch (lane.phase) {
        case Lane::Phase::kInit:
          p.op.a = lane.tmp;
          p.op.b = m.rr_limbs_.data();
          p.dest = lane.bm;
          break;
        case Lane::Phase::kSquare:
          p.op.a = lane.acc;
          p.op.b = lane.acc;
          p.stats = lane.stats;
          break;
        case Lane::Phase::kMultiply:
          p.op.a = lane.acc;
          p.op.b = lane.bm;
          p.stats = lane.stats;
          break;
        case Lane::Phase::kFinal:
          p.op.a = lane.acc;
          p.op.b = m.one_limbs_.data();
          break;
        case Lane::Phase::kDone:
          continue;
      }
      ops.push_back(p);
    }
    if (ops.empty()) break;

    // Same-width lanes share a kernel call; the stable sort keeps lane
    // order inside each width group deterministic.
    std::stable_sort(ops.begin(), ops.end(),
                     [](const PendingOp& a, const PendingOp& b) {
                       return a.lane->kw < b.lane->kw;
                     });
    for (std::size_t lo = 0; lo < ops.size();) {
      const std::size_t kw = ops[lo].lane->kw;
      std::size_t hi = lo;
      while (hi < ops.size() && ops[hi].lane->kw == kw) ++hi;
      kernel_ops.clear();
      for (std::size_t k = lo; k < hi; ++k) kernel_ops.push_back(ops[k].op);
      dispatch::mont_cios_w64_batch()(kernel_ops.data(), hi - lo, kw);
      lo = hi;
    }

    // Per-lane REDC finish (the data-dependent subtraction + MontStats,
    // shared with the single-op path) and program-counter advance.
    for (PendingOp& p : ops) {
      Lane& lane = *p.lane;
      Montgomery::redc_finish(p.op.t, lane.m->n_limbs_.data(), lane.kw,
                              p.dest, p.stats);
      switch (lane.phase) {
        case Lane::Phase::kInit: {
          std::memcpy(lane.acc, lane.bm, lane.kw * sizeof(std::uint64_t));
          const std::size_t bits = lane.e->bit_length();
          if (bits <= 1) {
            lane.phase = Lane::Phase::kFinal;
          } else {
            lane.i = bits - 2;
            lane.phase = Lane::Phase::kSquare;
          }
          break;
        }
        case Lane::Phase::kSquare:
          std::swap(lane.acc, lane.tmp);
          if (lane.stats) {
            ++lane.stats->squares;
            --lane.stats->mults;  // reclassify, exactly as exp() does
          }
          if (lane.e->bit(lane.i)) {
            lane.phase = Lane::Phase::kMultiply;
          } else if (lane.i == 0) {
            lane.phase = Lane::Phase::kFinal;
          } else {
            --lane.i;
          }
          break;
        case Lane::Phase::kMultiply:
          std::swap(lane.acc, lane.tmp);
          if (lane.i == 0) {
            lane.phase = Lane::Phase::kFinal;
          } else {
            --lane.i;
            lane.phase = Lane::Phase::kSquare;
          }
          break;
        case Lane::Phase::kFinal:
          results[lane.slot] = lane.m->from_raw(lane.tmp);
          lane.phase = Lane::Phase::kDone;
          break;
        case Lane::Phase::kDone:
          break;
      }
    }
  }
  return results;
}

}  // namespace mapsec::crypto
