// AES-NI backend: hardware AES round instructions, with the CTR and
// CBC-decrypt paths pipelined four blocks wide (each aesenc has multi-cycle
// latency but single-cycle throughput, so independent blocks in flight are
// nearly free). CBC-MAC is inherently serial — each block's input is the
// previous block's output — so it runs one block at a time and its win is
// the ~order-of-magnitude instruction-count drop per round.
//
// Compiled with -maes -mssse3 -msse4.1 (SSE encodings only, no VEX), so
// the object runs on any AES-NI machine back to Westmere; dispatch.cpp
// additionally gates selection on the CPUID aesni/ssse3/sse41 bits.
#include "kernels.hpp"

#if defined(__AES__) && defined(__SSSE3__) && defined(__SSE4_1__)

#include <immintrin.h>

#include <cstring>

namespace mapsec::crypto::dispatch {

namespace {

inline __m128i rk(const AesSchedule& s, int round) {
  return _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(s.bytes + 16 * round));
}

inline __m128i encrypt_one(const AesSchedule& s, __m128i b) {
  b = _mm_xor_si128(b, rk(s, 0));
  for (int r = 1; r < s.rounds; ++r) b = _mm_aesenc_si128(b, rk(s, r));
  return _mm_aesenclast_si128(b, rk(s, s.rounds));
}

void aesni_encrypt_block(const AesSchedule& s, const std::uint8_t* in,
                         std::uint8_t* out) {
  const __m128i b =
      encrypt_one(s, _mm_loadu_si128(reinterpret_cast<const __m128i*>(in)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
}

void aesni_decrypt_block(const AesSchedule& s, const std::uint8_t* in,
                         std::uint8_t* out) {
  // The library's decryption schedule is the FIPS 197 equivalent-inverse
  // layout (reversed round order, inner keys InvMixColumns-transformed) —
  // exactly the schedule aesdec/aesdeclast consume.
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  b = _mm_xor_si128(b, rk(s, 0));
  for (int r = 1; r < s.rounds; ++r) b = _mm_aesdec_si128(b, rk(s, r));
  b = _mm_aesdeclast_si128(b, rk(s, s.rounds));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
}

// Big-endian increment of the full 16-byte counter block, matching the
// generic ctr_crypt loop bit for bit.
inline void ctr_increment(std::uint8_t counter[16]) {
  for (int i = 16; i-- > 0;) {
    if (++counter[i] != 0) break;
  }
}

void aesni_ctr_xor(const AesSchedule& s, std::uint8_t counter[16],
                   std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;

  // Four independent keystream blocks in flight.
  while (len - off >= 64) {
    std::uint8_t c[64];
    for (int b = 0; b < 4; ++b) {
      std::memcpy(c + 16 * b, counter, 16);
      ctr_increment(counter);
    }
    __m128i k0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c));
    __m128i k1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + 16));
    __m128i k2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + 32));
    __m128i k3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + 48));
    const __m128i r0 = rk(s, 0);
    k0 = _mm_xor_si128(k0, r0);
    k1 = _mm_xor_si128(k1, r0);
    k2 = _mm_xor_si128(k2, r0);
    k3 = _mm_xor_si128(k3, r0);
    for (int r = 1; r < s.rounds; ++r) {
      const __m128i rr = rk(s, r);
      k0 = _mm_aesenc_si128(k0, rr);
      k1 = _mm_aesenc_si128(k1, rr);
      k2 = _mm_aesenc_si128(k2, rr);
      k3 = _mm_aesenc_si128(k3, rr);
    }
    const __m128i rl = rk(s, s.rounds);
    k0 = _mm_aesenclast_si128(k0, rl);
    k1 = _mm_aesenclast_si128(k1, rl);
    k2 = _mm_aesenclast_si128(k2, rl);
    k3 = _mm_aesenclast_si128(k3, rl);

    __m128i* d = reinterpret_cast<__m128i*>(data + off);
    _mm_storeu_si128(d, _mm_xor_si128(_mm_loadu_si128(d), k0));
    _mm_storeu_si128(d + 1, _mm_xor_si128(_mm_loadu_si128(d + 1), k1));
    _mm_storeu_si128(d + 2, _mm_xor_si128(_mm_loadu_si128(d + 2), k2));
    _mm_storeu_si128(d + 3, _mm_xor_si128(_mm_loadu_si128(d + 3), k3));
    off += 64;
  }

  while (len - off >= 16) {
    const __m128i ks = encrypt_one(
        s, _mm_loadu_si128(reinterpret_cast<const __m128i*>(counter)));
    ctr_increment(counter);
    __m128i* d = reinterpret_cast<__m128i*>(data + off);
    _mm_storeu_si128(d, _mm_xor_si128(_mm_loadu_si128(d), ks));
    off += 16;
  }

  if (off < len) {
    std::uint8_t ks[16];
    const __m128i k = encrypt_one(
        s, _mm_loadu_si128(reinterpret_cast<const __m128i*>(counter)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(ks), k);
    ctr_increment(counter);
    for (std::size_t i = 0; off + i < len; ++i) data[off + i] ^= ks[i];
  }
}

void aesni_cbc_mac(const AesSchedule& s, std::uint8_t state[16],
                   const std::uint8_t* data, std::size_t nblocks) {
  __m128i st = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  for (std::size_t i = 0; i < nblocks; ++i) {
    st = _mm_xor_si128(
        st, _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(data + 16 * i)));
    st = encrypt_one(s, st);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), st);
}

void aesni_cbc_decrypt(const AesSchedule& s, const std::uint8_t iv[16],
                       std::uint8_t* data, std::size_t nblocks) {
  __m128i chain = _mm_loadu_si128(reinterpret_cast<const __m128i*>(iv));
  const __m128i r0 = rk(s, 0);
  const __m128i rl = rk(s, s.rounds);
  std::size_t i = 0;

  while (nblocks - i >= 4) {
    __m128i* d = reinterpret_cast<__m128i*>(data + 16 * i);
    const __m128i c0 = _mm_loadu_si128(d);
    const __m128i c1 = _mm_loadu_si128(d + 1);
    const __m128i c2 = _mm_loadu_si128(d + 2);
    const __m128i c3 = _mm_loadu_si128(d + 3);
    __m128i p0 = _mm_xor_si128(c0, r0);
    __m128i p1 = _mm_xor_si128(c1, r0);
    __m128i p2 = _mm_xor_si128(c2, r0);
    __m128i p3 = _mm_xor_si128(c3, r0);
    for (int r = 1; r < s.rounds; ++r) {
      const __m128i rr = rk(s, r);
      p0 = _mm_aesdec_si128(p0, rr);
      p1 = _mm_aesdec_si128(p1, rr);
      p2 = _mm_aesdec_si128(p2, rr);
      p3 = _mm_aesdec_si128(p3, rr);
    }
    p0 = _mm_aesdeclast_si128(p0, rl);
    p1 = _mm_aesdeclast_si128(p1, rl);
    p2 = _mm_aesdeclast_si128(p2, rl);
    p3 = _mm_aesdeclast_si128(p3, rl);
    _mm_storeu_si128(d, _mm_xor_si128(p0, chain));
    _mm_storeu_si128(d + 1, _mm_xor_si128(p1, c0));
    _mm_storeu_si128(d + 2, _mm_xor_si128(p2, c1));
    _mm_storeu_si128(d + 3, _mm_xor_si128(p3, c2));
    chain = c3;
    i += 4;
  }

  for (; i < nblocks; ++i) {
    __m128i* d = reinterpret_cast<__m128i*>(data + 16 * i);
    const __m128i c = _mm_loadu_si128(d);
    __m128i p = _mm_xor_si128(c, r0);
    for (int r = 1; r < s.rounds; ++r) p = _mm_aesdec_si128(p, rk(s, r));
    p = _mm_aesdeclast_si128(p, rl);
    _mm_storeu_si128(d, _mm_xor_si128(p, chain));
    chain = c;
  }
}

}  // namespace

const AesKernels kAesNi = {"aesni",         aesni_encrypt_block,
                           aesni_decrypt_block, aesni_ctr_xor,
                           aesni_cbc_mac,   aesni_cbc_decrypt};
const bool kHaveAesNi = true;

}  // namespace mapsec::crypto::dispatch

#else  // ISA unavailable at compile time: stub table, never selected.

namespace mapsec::crypto::dispatch {
const AesKernels kAesNi = {"aesni-unavailable", nullptr, nullptr,
                           nullptr,             nullptr, nullptr};
const bool kHaveAesNi = false;
}  // namespace mapsec::crypto::dispatch

#endif
