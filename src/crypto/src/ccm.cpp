#include "mapsec/crypto/ccm.hpp"

#include <cstring>
#include <stdexcept>

#include "kernels.hpp"

namespace mapsec::crypto {

Bytes ctr_crypt(const BlockCipher& cipher, ConstBytes counter_block,
                ConstBytes data) {
  const std::size_t bs = cipher.block_size();
  if (counter_block.size() != bs)
    throw std::invalid_argument("ctr_crypt: counter block size mismatch");

  // Accelerated span path: one call processes the whole payload, with the
  // keystream pipelined several blocks wide.
  if (const Aes* aes = cipher.as_aes(); aes != nullptr && bs == 16) {
    const auto& k = dispatch::aes_kernels();
    if (k.ctr_xor != nullptr) {
      Bytes out(data.begin(), data.end());
      std::uint8_t ctr[16];
      std::memcpy(ctr, counter_block.data(), 16);
      k.ctr_xor(dispatch::enc_schedule(*aes), ctr, out.data(), out.size());
      return out;
    }
  }

  Bytes counter(counter_block.begin(), counter_block.end());
  Bytes keystream(bs);
  Bytes out(data.begin(), data.end());
  for (std::size_t off = 0; off < out.size(); off += bs) {
    cipher.encrypt_block(counter.data(), keystream.data());
    const std::size_t n = std::min(bs, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
    // Increment the counter, big-endian.
    for (std::size_t i = bs; i-- > 0;) {
      if (++counter[i] != 0) break;
    }
  }
  return out;
}

Bytes cbc_mac(const BlockCipher& cipher, ConstBytes data) {
  const std::size_t bs = cipher.block_size();
  if (const Aes* aes = cipher.as_aes(); aes != nullptr && bs == 16) {
    const auto& k = dispatch::aes_kernels();
    if (k.cbc_mac != nullptr) {
      const auto sched = dispatch::enc_schedule(*aes);
      Bytes state(16, 0);
      const std::size_t nfull = data.size() / 16;
      k.cbc_mac(sched, state.data(), data.data(), nfull);
      const std::size_t rem = data.size() - 16 * nfull;
      if (rem != 0) {
        for (std::size_t i = 0; i < rem; ++i)
          state[i] ^= data[16 * nfull + i];
        k.encrypt_block(sched, state.data(), state.data());
      }
      return state;
    }
  }

  Bytes state(bs, 0);
  for (std::size_t off = 0; off < data.size(); off += bs) {
    const std::size_t n = std::min(bs, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) state[i] ^= data[off + i];
    cipher.encrypt_block(state.data(), state.data());
  }
  return state;
}

namespace {

constexpr std::size_t kL = 2;  // length-field bytes

void check_ccm_params(const BlockCipher& cipher, ConstBytes nonce,
                      std::size_t tag_len, std::size_t payload_len) {
  if (cipher.block_size() != 16)
    throw std::invalid_argument("CCM requires a 128-bit block cipher");
  if (nonce.size() != kCcmNonceLen)
    throw std::invalid_argument("CCM: nonce must be 13 bytes");
  if (tag_len < 4 || tag_len > 16 || tag_len % 2 != 0)
    throw std::invalid_argument("CCM: tag length must be even, 4..16");
  if (payload_len > 0xFFFF)
    throw std::invalid_argument("CCM: payload too long for L=2");
}

/// The authentication input: B0 | encoded AAD | padded payload — always a
/// whole number of blocks. Shared by the single-op and batched paths.
Bytes ccm_mac_input(ConstBytes nonce, ConstBytes aad, ConstBytes plaintext,
                    std::size_t tag_len) {
  Bytes blocks;
  // B0: flags | nonce | payload length.
  Bytes b0(16, 0);
  b0[0] = static_cast<std::uint8_t>(
      (aad.empty() ? 0 : 0x40) |
      (((tag_len - 2) / 2) << 3) | (kL - 1));
  std::copy(nonce.begin(), nonce.end(), b0.begin() + 1);
  b0[14] = static_cast<std::uint8_t>(plaintext.size() >> 8);
  b0[15] = static_cast<std::uint8_t>(plaintext.size());
  blocks.insert(blocks.end(), b0.begin(), b0.end());

  // AAD: 2-byte length prefix (for lengths < 0xFF00), zero-padded.
  if (!aad.empty()) {
    if (aad.size() >= 0xFF00)
      throw std::invalid_argument("CCM: AAD too long");
    Bytes a;
    a.push_back(static_cast<std::uint8_t>(aad.size() >> 8));
    a.push_back(static_cast<std::uint8_t>(aad.size()));
    a.insert(a.end(), aad.begin(), aad.end());
    a.resize((a.size() + 15) / 16 * 16, 0);
    blocks.insert(blocks.end(), a.begin(), a.end());
  }

  // Payload, zero-padded.
  Bytes p(plaintext.begin(), plaintext.end());
  p.resize((p.size() + 15) / 16 * 16, 0);
  blocks.insert(blocks.end(), p.begin(), p.end());
  return blocks;
}

/// CBC-MAC over the authentication input, truncated (the caller XORs in
/// the counter-0 keystream).
Bytes ccm_tag(const BlockCipher& cipher, ConstBytes nonce, ConstBytes aad,
              ConstBytes plaintext, std::size_t tag_len) {
  Bytes tag = cbc_mac(cipher, ccm_mac_input(nonce, aad, plaintext, tag_len));
  tag.resize(tag_len);
  return tag;
}

Bytes ccm_counter_block(ConstBytes nonce, std::uint16_t counter) {
  Bytes a(16, 0);
  a[0] = kL - 1;  // flags: just L'
  std::copy(nonce.begin(), nonce.end(), a.begin() + 1);
  a[14] = static_cast<std::uint8_t>(counter >> 8);
  a[15] = static_cast<std::uint8_t>(counter);
  return a;
}

}  // namespace

Bytes ccm_seal(const BlockCipher& cipher, ConstBytes nonce, ConstBytes aad,
               ConstBytes plaintext, std::size_t tag_len) {
  check_ccm_params(cipher, nonce, tag_len, plaintext.size());

  const Bytes raw_tag = ccm_tag(cipher, nonce, aad, plaintext, tag_len);
  // Encrypt payload with counters 1..; encrypt tag with counter 0.
  const Bytes ciphertext =
      ctr_crypt(cipher, ccm_counter_block(nonce, 1), plaintext);
  Bytes s0(16);
  const Bytes a0 = ccm_counter_block(nonce, 0);
  cipher.encrypt_block(a0.data(), s0.data());

  Bytes out = ciphertext;
  for (std::size_t i = 0; i < tag_len; ++i)
    out.push_back(static_cast<std::uint8_t>(raw_tag[i] ^ s0[i]));
  return out;
}

std::optional<Bytes> ccm_open(const BlockCipher& cipher, ConstBytes nonce,
                              ConstBytes aad, ConstBytes sealed,
                              std::size_t tag_len) {
  if (sealed.size() < tag_len) return std::nullopt;
  const std::size_t clen = sealed.size() - tag_len;
  check_ccm_params(cipher, nonce, tag_len, clen);

  const Bytes plaintext = ctr_crypt(cipher, ccm_counter_block(nonce, 1),
                                    sealed.subspan(0, clen));
  Bytes s0(16);
  const Bytes a0 = ccm_counter_block(nonce, 0);
  cipher.encrypt_block(a0.data(), s0.data());
  Bytes expected = ccm_tag(cipher, nonce, aad, plaintext, tag_len);
  for (std::size_t i = 0; i < tag_len; ++i) expected[i] ^= s0[i];

  if (!ct_equal(expected, sealed.subspan(clen))) return std::nullopt;
  return plaintext;
}

namespace {

/// Lockstep multi-buffer CBC-MAC across ragged lane lengths. Every
/// lane's input is a whole number of blocks (CCM MAC inputs always are);
/// each pass absorbs the minimum remaining block count over the lanes
/// still active, so short records drop out and the batch narrows.
void cbc_mac_mb_ragged(const std::vector<dispatch::AesSchedule>& scheds,
                       const std::vector<Bytes>& inputs,
                       std::vector<Bytes>& states) {
  const auto& mb = dispatch::aes_mb_kernels();
  const std::size_t n = inputs.size();
  std::vector<std::size_t> done(n, 0);
  std::vector<dispatch::AesSchedule> sc;
  std::vector<std::uint8_t*> st;
  std::vector<const std::uint8_t*> dp;
  for (;;) {
    sc.clear();
    st.clear();
    dp.clear();
    std::size_t step = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t rem = inputs[i].size() / 16 - done[i];
      if (rem == 0) continue;
      if (step == 0 || rem < step) step = rem;
      sc.push_back(scheds[i]);
      st.push_back(states[i].data());
      dp.push_back(inputs[i].data() + 16 * done[i]);
    }
    if (sc.empty()) break;
    mb.cbc_mac_mb(sc.data(), st.data(), dp.data(), sc.size(), step);
    for (std::size_t i = 0; i < n; ++i)
      if (inputs[i].size() / 16 - done[i] != 0) done[i] += step;
  }
}

}  // namespace

std::vector<Bytes> ccm_seal_batch(const std::vector<CcmSealOp>& ops) {
  std::vector<Bytes> out(ops.size());
  const auto& mb = dispatch::aes_mb_kernels();
  // Lanes that can ride the multi-buffer kernels (an AES cipher and a
  // non-null backend); everything else takes the single-op path, which
  // is the same arithmetic byte for byte.
  std::vector<std::size_t> lanes;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const CcmSealOp& op = ops[i];
    check_ccm_params(*op.cipher, op.nonce, op.tag_len, op.plaintext.size());
    if (op.cipher->as_aes() != nullptr && mb.cbc_mac_mb != nullptr &&
        mb.ctr_xor_mb != nullptr) {
      lanes.push_back(i);
    } else {
      out[i] =
          ccm_seal(*op.cipher, op.nonce, op.aad, op.plaintext, op.tag_len);
    }
  }
  if (lanes.empty()) return out;

  const std::size_t n = lanes.size();
  std::vector<dispatch::AesSchedule> scheds(n);
  std::vector<Bytes> mac_in(n);
  std::vector<Bytes> states(n);
  for (std::size_t k = 0; k < n; ++k) {
    const CcmSealOp& op = ops[lanes[k]];
    scheds[k] = dispatch::enc_schedule(*op.cipher->as_aes());
    mac_in[k] = ccm_mac_input(op.nonce, op.aad, op.plaintext, op.tag_len);
    states[k].assign(16, 0);
  }
  cbc_mac_mb_ragged(scheds, mac_in, states);

  // Payload CTR from counter 1, all lanes in one interleaved call.
  std::vector<Bytes> counters(n);
  std::vector<std::uint8_t*> ctr_ptrs(n);
  std::vector<std::uint8_t*> data_ptrs(n);
  std::vector<std::size_t> lens(n);
  for (std::size_t k = 0; k < n; ++k) {
    const CcmSealOp& op = ops[lanes[k]];
    out[lanes[k]].assign(op.plaintext.begin(), op.plaintext.end());
    counters[k] = ccm_counter_block(op.nonce, 1);
    ctr_ptrs[k] = counters[k].data();
    data_ptrs[k] = out[lanes[k]].data();
    lens[k] = op.plaintext.size();
  }
  mb.ctr_xor_mb(scheds.data(), ctr_ptrs.data(), data_ptrs.data(), lens.data(),
                n);

  for (std::size_t k = 0; k < n; ++k) {
    const CcmSealOp& op = ops[lanes[k]];
    Bytes s0(16);
    const Bytes a0 = ccm_counter_block(op.nonce, 0);
    op.cipher->encrypt_block(a0.data(), s0.data());
    for (std::size_t t = 0; t < op.tag_len; ++t)
      out[lanes[k]].push_back(
          static_cast<std::uint8_t>(states[k][t] ^ s0[t]));
  }
  return out;
}

std::vector<std::optional<Bytes>> ccm_open_batch(
    const std::vector<CcmOpenOp>& ops) {
  std::vector<std::optional<Bytes>> out(ops.size());
  const auto& mb = dispatch::aes_mb_kernels();
  std::vector<std::size_t> lanes;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const CcmOpenOp& op = ops[i];
    if (op.sealed.size() < op.tag_len) continue;  // nullopt, as single-op
    check_ccm_params(*op.cipher, op.nonce, op.tag_len,
                     op.sealed.size() - op.tag_len);
    if (op.cipher->as_aes() != nullptr && mb.cbc_mac_mb != nullptr &&
        mb.ctr_xor_mb != nullptr) {
      lanes.push_back(i);
    } else {
      out[i] = ccm_open(*op.cipher, op.nonce, op.aad, op.sealed, op.tag_len);
    }
  }
  if (lanes.empty()) return out;

  const std::size_t n = lanes.size();
  std::vector<dispatch::AesSchedule> scheds(n);
  std::vector<Bytes> plaintexts(n);
  std::vector<Bytes> counters(n);
  std::vector<std::uint8_t*> ctr_ptrs(n);
  std::vector<std::uint8_t*> data_ptrs(n);
  std::vector<std::size_t> lens(n);
  for (std::size_t k = 0; k < n; ++k) {
    const CcmOpenOp& op = ops[lanes[k]];
    const std::size_t clen = op.sealed.size() - op.tag_len;
    scheds[k] = dispatch::enc_schedule(*op.cipher->as_aes());
    plaintexts[k].assign(op.sealed.begin(),
                         op.sealed.begin() + static_cast<std::ptrdiff_t>(clen));
    counters[k] = ccm_counter_block(op.nonce, 1);
    ctr_ptrs[k] = counters[k].data();
    data_ptrs[k] = plaintexts[k].data();
    lens[k] = clen;
  }
  mb.ctr_xor_mb(scheds.data(), ctr_ptrs.data(), data_ptrs.data(), lens.data(),
                n);

  std::vector<Bytes> mac_in(n);
  std::vector<Bytes> states(n);
  for (std::size_t k = 0; k < n; ++k) {
    const CcmOpenOp& op = ops[lanes[k]];
    mac_in[k] = ccm_mac_input(op.nonce, op.aad, plaintexts[k], op.tag_len);
    states[k].assign(16, 0);
  }
  cbc_mac_mb_ragged(scheds, mac_in, states);

  for (std::size_t k = 0; k < n; ++k) {
    const CcmOpenOp& op = ops[lanes[k]];
    const std::size_t clen = op.sealed.size() - op.tag_len;
    Bytes s0(16);
    const Bytes a0 = ccm_counter_block(op.nonce, 0);
    op.cipher->encrypt_block(a0.data(), s0.data());
    Bytes expected(states[k].begin(),
                   states[k].begin() + static_cast<std::ptrdiff_t>(op.tag_len));
    for (std::size_t t = 0; t < op.tag_len; ++t) expected[t] ^= s0[t];
    if (ct_equal(expected, op.sealed.subspan(clen)))
      out[lanes[k]] = std::move(plaintexts[k]);
  }
  return out;
}

}  // namespace mapsec::crypto
