#include "mapsec/crypto/ccm.hpp"

#include <cstring>
#include <stdexcept>

#include "kernels.hpp"

namespace mapsec::crypto {

Bytes ctr_crypt(const BlockCipher& cipher, ConstBytes counter_block,
                ConstBytes data) {
  const std::size_t bs = cipher.block_size();
  if (counter_block.size() != bs)
    throw std::invalid_argument("ctr_crypt: counter block size mismatch");

  // Accelerated span path: one call processes the whole payload, with the
  // keystream pipelined several blocks wide.
  if (const Aes* aes = cipher.as_aes(); aes != nullptr && bs == 16) {
    const auto& k = dispatch::aes_kernels();
    if (k.ctr_xor != nullptr) {
      Bytes out(data.begin(), data.end());
      std::uint8_t ctr[16];
      std::memcpy(ctr, counter_block.data(), 16);
      k.ctr_xor(dispatch::enc_schedule(*aes), ctr, out.data(), out.size());
      return out;
    }
  }

  Bytes counter(counter_block.begin(), counter_block.end());
  Bytes keystream(bs);
  Bytes out(data.begin(), data.end());
  for (std::size_t off = 0; off < out.size(); off += bs) {
    cipher.encrypt_block(counter.data(), keystream.data());
    const std::size_t n = std::min(bs, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
    // Increment the counter, big-endian.
    for (std::size_t i = bs; i-- > 0;) {
      if (++counter[i] != 0) break;
    }
  }
  return out;
}

Bytes cbc_mac(const BlockCipher& cipher, ConstBytes data) {
  const std::size_t bs = cipher.block_size();
  if (const Aes* aes = cipher.as_aes(); aes != nullptr && bs == 16) {
    const auto& k = dispatch::aes_kernels();
    if (k.cbc_mac != nullptr) {
      const auto sched = dispatch::enc_schedule(*aes);
      Bytes state(16, 0);
      const std::size_t nfull = data.size() / 16;
      k.cbc_mac(sched, state.data(), data.data(), nfull);
      const std::size_t rem = data.size() - 16 * nfull;
      if (rem != 0) {
        for (std::size_t i = 0; i < rem; ++i)
          state[i] ^= data[16 * nfull + i];
        k.encrypt_block(sched, state.data(), state.data());
      }
      return state;
    }
  }

  Bytes state(bs, 0);
  for (std::size_t off = 0; off < data.size(); off += bs) {
    const std::size_t n = std::min(bs, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) state[i] ^= data[off + i];
    cipher.encrypt_block(state.data(), state.data());
  }
  return state;
}

namespace {

constexpr std::size_t kL = 2;  // length-field bytes

void check_ccm_params(const BlockCipher& cipher, ConstBytes nonce,
                      std::size_t tag_len, std::size_t payload_len) {
  if (cipher.block_size() != 16)
    throw std::invalid_argument("CCM requires a 128-bit block cipher");
  if (nonce.size() != kCcmNonceLen)
    throw std::invalid_argument("CCM: nonce must be 13 bytes");
  if (tag_len < 4 || tag_len > 16 || tag_len % 2 != 0)
    throw std::invalid_argument("CCM: tag length must be even, 4..16");
  if (payload_len > 0xFFFF)
    throw std::invalid_argument("CCM: payload too long for L=2");
}

/// The authentication input: B0 | encoded AAD | padded payload, then
/// CBC-MAC, then encrypt the tag with counter block 0.
Bytes ccm_tag(const BlockCipher& cipher, ConstBytes nonce, ConstBytes aad,
              ConstBytes plaintext, std::size_t tag_len) {
  Bytes blocks;
  // B0: flags | nonce | payload length.
  Bytes b0(16, 0);
  b0[0] = static_cast<std::uint8_t>(
      (aad.empty() ? 0 : 0x40) |
      (((tag_len - 2) / 2) << 3) | (kL - 1));
  std::copy(nonce.begin(), nonce.end(), b0.begin() + 1);
  b0[14] = static_cast<std::uint8_t>(plaintext.size() >> 8);
  b0[15] = static_cast<std::uint8_t>(plaintext.size());
  blocks.insert(blocks.end(), b0.begin(), b0.end());

  // AAD: 2-byte length prefix (for lengths < 0xFF00), zero-padded.
  if (!aad.empty()) {
    if (aad.size() >= 0xFF00)
      throw std::invalid_argument("CCM: AAD too long");
    Bytes a;
    a.push_back(static_cast<std::uint8_t>(aad.size() >> 8));
    a.push_back(static_cast<std::uint8_t>(aad.size()));
    a.insert(a.end(), aad.begin(), aad.end());
    a.resize((a.size() + 15) / 16 * 16, 0);
    blocks.insert(blocks.end(), a.begin(), a.end());
  }

  // Payload, zero-padded.
  Bytes p(plaintext.begin(), plaintext.end());
  p.resize((p.size() + 15) / 16 * 16, 0);
  blocks.insert(blocks.end(), p.begin(), p.end());

  Bytes tag = cbc_mac(cipher, blocks);
  tag.resize(tag_len);
  return tag;
}

Bytes ccm_counter_block(ConstBytes nonce, std::uint16_t counter) {
  Bytes a(16, 0);
  a[0] = kL - 1;  // flags: just L'
  std::copy(nonce.begin(), nonce.end(), a.begin() + 1);
  a[14] = static_cast<std::uint8_t>(counter >> 8);
  a[15] = static_cast<std::uint8_t>(counter);
  return a;
}

}  // namespace

Bytes ccm_seal(const BlockCipher& cipher, ConstBytes nonce, ConstBytes aad,
               ConstBytes plaintext, std::size_t tag_len) {
  check_ccm_params(cipher, nonce, tag_len, plaintext.size());

  const Bytes raw_tag = ccm_tag(cipher, nonce, aad, plaintext, tag_len);
  // Encrypt payload with counters 1..; encrypt tag with counter 0.
  const Bytes ciphertext =
      ctr_crypt(cipher, ccm_counter_block(nonce, 1), plaintext);
  Bytes s0(16);
  const Bytes a0 = ccm_counter_block(nonce, 0);
  cipher.encrypt_block(a0.data(), s0.data());

  Bytes out = ciphertext;
  for (std::size_t i = 0; i < tag_len; ++i)
    out.push_back(static_cast<std::uint8_t>(raw_tag[i] ^ s0[i]));
  return out;
}

std::optional<Bytes> ccm_open(const BlockCipher& cipher, ConstBytes nonce,
                              ConstBytes aad, ConstBytes sealed,
                              std::size_t tag_len) {
  if (sealed.size() < tag_len) return std::nullopt;
  const std::size_t clen = sealed.size() - tag_len;
  check_ccm_params(cipher, nonce, tag_len, clen);

  const Bytes plaintext = ctr_crypt(cipher, ccm_counter_block(nonce, 1),
                                    sealed.subspan(0, clen));
  Bytes s0(16);
  const Bytes a0 = ccm_counter_block(nonce, 0);
  cipher.encrypt_block(a0.data(), s0.data());
  Bytes expected = ccm_tag(cipher, nonce, aad, plaintext, tag_len);
  for (std::size_t i = 0; i < tag_len; ++i) expected[i] ^= s0[i];

  if (!ct_equal(expected, sealed.subspan(clen))) return std::nullopt;
  return plaintext;
}

}  // namespace mapsec::crypto
