#include "mapsec/crypto/cipher.hpp"

#include <stdexcept>

namespace mapsec::crypto {

Bytes cbc_encrypt(const BlockCipher& cipher, ConstBytes iv,
                  ConstBytes plaintext) {
  const std::size_t bs = cipher.block_size();
  if (iv.size() != bs) throw std::invalid_argument("cbc_encrypt: bad IV size");

  const std::size_t pad = bs - (plaintext.size() % bs);
  Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  Bytes out(padded.size());
  Bytes chain(iv.begin(), iv.end());
  for (std::size_t off = 0; off < padded.size(); off += bs) {
    for (std::size_t i = 0; i < bs; ++i) padded[off + i] ^= chain[i];
    cipher.encrypt_block(padded.data() + off, out.data() + off);
    chain.assign(out.begin() + static_cast<std::ptrdiff_t>(off),
                 out.begin() + static_cast<std::ptrdiff_t>(off + bs));
  }
  return out;
}

Bytes cbc_decrypt(const BlockCipher& cipher, ConstBytes iv,
                  ConstBytes ciphertext) {
  const std::size_t bs = cipher.block_size();
  if (iv.size() != bs) throw std::invalid_argument("cbc_decrypt: bad IV size");
  if (ciphertext.empty() || ciphertext.size() % bs != 0)
    throw std::runtime_error("cbc_decrypt: ciphertext not a block multiple");

  Bytes out(ciphertext.size());
  Bytes chain(iv.begin(), iv.end());
  for (std::size_t off = 0; off < ciphertext.size(); off += bs) {
    cipher.decrypt_block(ciphertext.data() + off, out.data() + off);
    for (std::size_t i = 0; i < bs; ++i) out[off + i] ^= chain[i];
    chain.assign(ciphertext.begin() + static_cast<std::ptrdiff_t>(off),
                 ciphertext.begin() + static_cast<std::ptrdiff_t>(off + bs));
  }

  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > bs) throw std::runtime_error("cbc_decrypt: bad padding");
  for (std::size_t i = out.size() - pad; i < out.size(); ++i)
    if (out[i] != pad) throw std::runtime_error("cbc_decrypt: bad padding");
  out.resize(out.size() - pad);
  return out;
}

Bytes ecb_encrypt(const BlockCipher& cipher, ConstBytes plaintext) {
  const std::size_t bs = cipher.block_size();
  if (plaintext.size() % bs != 0)
    throw std::invalid_argument("ecb_encrypt: not a block multiple");
  Bytes out(plaintext.size());
  for (std::size_t off = 0; off < plaintext.size(); off += bs)
    cipher.encrypt_block(plaintext.data() + off, out.data() + off);
  return out;
}

Bytes ecb_decrypt(const BlockCipher& cipher, ConstBytes ciphertext) {
  const std::size_t bs = cipher.block_size();
  if (ciphertext.size() % bs != 0)
    throw std::invalid_argument("ecb_decrypt: not a block multiple");
  Bytes out(ciphertext.size());
  for (std::size_t off = 0; off < ciphertext.size(); off += bs)
    cipher.decrypt_block(ciphertext.data() + off, out.data() + off);
  return out;
}

}  // namespace mapsec::crypto
