#include "mapsec/crypto/cipher.hpp"

#include <cstring>
#include <stdexcept>

#include "kernels.hpp"

namespace mapsec::crypto {

namespace {

// Large enough for every cipher in the library (DES/RC2: 8, AES: 16).
constexpr std::size_t kMaxBlockSize = 32;

}  // namespace

std::size_t cbc_encrypt_into(const BlockCipher& cipher, ConstBytes iv,
                             ConstBytes plaintext,
                             std::span<std::uint8_t> out) {
  const std::size_t bs = cipher.block_size();
  if (iv.size() != bs) throw std::invalid_argument("cbc_encrypt: bad IV size");
  if (bs > kMaxBlockSize)
    throw std::invalid_argument("cbc_encrypt: block size too large");
  const std::size_t total = cbc_padded_len(plaintext.size(), bs);
  if (out.size() < total)
    throw std::invalid_argument("cbc_encrypt_into: output buffer too small");
  const std::uint8_t pad =
      static_cast<std::uint8_t>(total - plaintext.size());

  const std::uint8_t* chain = iv.data();
  for (std::size_t off = 0; off < total; off += bs) {
    // Assemble the padded plaintext block xor chain directly in `out`,
    // then encrypt it in place (every cipher here reads its input into
    // locals before writing, so in == out is safe).
    std::uint8_t* blk = out.data() + off;
    for (std::size_t i = 0; i < bs; ++i) {
      const std::size_t pos = off + i;
      const std::uint8_t p =
          pos < plaintext.size() ? plaintext[pos] : pad;
      blk[i] = static_cast<std::uint8_t>(p ^ chain[i]);
    }
    cipher.encrypt_block(blk, blk);
    chain = blk;
  }
  return total;
}

Bytes cbc_encrypt(const BlockCipher& cipher, ConstBytes iv,
                  ConstBytes plaintext) {
  Bytes out(cbc_padded_len(plaintext.size(), cipher.block_size()));
  cbc_encrypt_into(cipher, iv, plaintext, out);
  return out;
}

std::size_t cbc_decrypt_in_place(const BlockCipher& cipher, ConstBytes iv,
                                 std::span<std::uint8_t> data) {
  const std::size_t bs = cipher.block_size();
  if (iv.size() != bs) throw std::invalid_argument("cbc_decrypt: bad IV size");
  if (bs > kMaxBlockSize)
    throw std::invalid_argument("cbc_decrypt: block size too large");
  if (data.empty() || data.size() % bs != 0)
    throw std::runtime_error("cbc_decrypt: ciphertext not a block multiple");

  const dispatch::AesKernels* span_kernel = nullptr;
  const Aes* aes = cipher.as_aes();
  if (aes != nullptr && bs == 16) {
    const auto& k = dispatch::aes_kernels();
    if (k.cbc_decrypt != nullptr) span_kernel = &k;
  }

  if (span_kernel != nullptr) {
    // Hardware path: CBC decryption has no inter-block dependency on the
    // plaintext side, so the kernel decrypts several blocks in flight.
    span_kernel->cbc_decrypt(dispatch::dec_schedule(*aes), iv.data(),
                             data.data(), data.size() / 16);
  } else {
    std::uint8_t chain[kMaxBlockSize];
    std::uint8_t saved[kMaxBlockSize];
    std::memcpy(chain, iv.data(), bs);
    for (std::size_t off = 0; off < data.size(); off += bs) {
      std::uint8_t* blk = data.data() + off;
      std::memcpy(saved, blk, bs);  // ciphertext block, needed as next chain
      cipher.decrypt_block(blk, blk);
      for (std::size_t i = 0; i < bs; ++i) blk[i] ^= chain[i];
      std::memcpy(chain, saved, bs);
    }
  }

  const std::uint8_t pad = data.back();
  if (pad == 0 || pad > bs) throw std::runtime_error("cbc_decrypt: bad padding");
  for (std::size_t i = data.size() - pad; i < data.size(); ++i)
    if (data[i] != pad) throw std::runtime_error("cbc_decrypt: bad padding");
  return data.size() - pad;
}

Bytes cbc_decrypt(const BlockCipher& cipher, ConstBytes iv,
                  ConstBytes ciphertext) {
  Bytes out(ciphertext.begin(), ciphertext.end());
  const std::size_t len = cbc_decrypt_in_place(cipher, iv, out);
  out.resize(len);
  return out;
}

Bytes ecb_encrypt(const BlockCipher& cipher, ConstBytes plaintext) {
  const std::size_t bs = cipher.block_size();
  if (plaintext.size() % bs != 0)
    throw std::invalid_argument("ecb_encrypt: not a block multiple");
  Bytes out(plaintext.size());
  for (std::size_t off = 0; off < plaintext.size(); off += bs)
    cipher.encrypt_block(plaintext.data() + off, out.data() + off);
  return out;
}

Bytes ecb_decrypt(const BlockCipher& cipher, ConstBytes ciphertext) {
  const std::size_t bs = cipher.block_size();
  if (ciphertext.size() % bs != 0)
    throw std::invalid_argument("ecb_decrypt: not a block multiple");
  Bytes out(ciphertext.size());
  for (std::size_t off = 0; off < ciphertext.size(); off += bs)
    cipher.decrypt_block(ciphertext.data() + off, out.data() + off);
  return out;
}

}  // namespace mapsec::crypto
