// AVX2-assisted hash tier: the scalar SHA-1/SHA-256 compression bodies
// recompiled in a translation unit where the compiler may use AVX2 — the
// message-schedule expansion (independent W[t] lanes) auto-vectorizes, and
// the round loops get the wider register file. Bit-identical by
// construction (same arithmetic, same order). Selected only on CPUs that
// report AVX2 but lack the SHA extensions (e.g. Haswell through Coffee
// Lake); SHA-NI machines take the kernel_sha.cpp path instead.
#include "kernels.hpp"

#if defined(__AVX2__)

namespace mapsec::crypto::dispatch {

namespace {

inline std::uint32_t rotl32(std::uint32_t v, unsigned n) {
  return (v << n) | (v >> (32 - n));
}
inline std::uint32_t rotr32(std::uint32_t v, unsigned n) {
  return (v >> n) | (v << (32 - n));
}
inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

constexpr std::uint32_t kK256[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

void sha1_avx2(std::uint32_t state[5], const std::uint8_t* blocks,
               std::size_t nblocks) {
  while (nblocks--) {
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(blocks + 4 * i);
    for (int i = 16; i < 80; ++i)
      w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3],
                  e = state[4];
    for (int i = 0; i < 80; ++i) {
      std::uint32_t f, k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5A827999u;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1u;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDCu;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6u;
      }
      const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = rotl32(b, 30);
      b = a;
      a = tmp;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    blocks += 64;
  }
}

void sha256_avx2(std::uint32_t state[8], const std::uint8_t* blocks,
                 std::size_t nblocks) {
  while (nblocks--) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(blocks + 4 * i);
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr32(w[i - 15], 7) ^ rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr32(w[i - 2], 17) ^ rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kK256[i] + w[i];
      const std::uint32_t s0 = rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
    blocks += 64;
  }
}

}  // namespace

const Sha1CompressFn kSha1Avx2 = sha1_avx2;
const Sha256CompressFn kSha256Avx2 = sha256_avx2;
const bool kHaveShaAvx2 = true;

}  // namespace mapsec::crypto::dispatch

#else

namespace mapsec::crypto::dispatch {
const Sha1CompressFn kSha1Avx2 = nullptr;
const Sha256CompressFn kSha256Avx2 = nullptr;
const bool kHaveShaAvx2 = false;
}  // namespace mapsec::crypto::dispatch

#endif
