#include "mapsec/crypto/crc32.hpp"

#include <array>

#include "kernels.hpp"

namespace mapsec::crypto {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = make_table();

}  // namespace

namespace dispatch {

// Raw-register-domain table recurrence (no ~ pre/post inversion): the
// scalar kernel, and also what the PCLMUL backend uses for its final
// residue and tail bytes.
std::uint32_t crc32_raw(std::uint32_t raw, const std::uint8_t* data,
                        std::size_t len) {
  for (std::size_t i = 0; i < len; ++i)
    raw = kTable[(raw ^ data[i]) & 0xFF] ^ (raw >> 8);
  return raw;
}

}  // namespace dispatch

std::uint32_t crc32_update(std::uint32_t crc, ConstBytes data) {
  return ~dispatch::crc32_kernel()(~crc, data.data(), data.size());
}

std::uint32_t crc32(ConstBytes data) { return crc32_update(0, data); }

}  // namespace mapsec::crypto
