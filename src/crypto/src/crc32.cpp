#include "mapsec/crypto/crc32.hpp"

#include <array>

namespace mapsec::crypto {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, ConstBytes data) {
  crc = ~crc;
  for (std::uint8_t b : data) crc = kTable[(crc ^ b) & 0xFF] ^ (crc >> 8);
  return ~crc;
}

std::uint32_t crc32(ConstBytes data) { return crc32_update(0, data); }

}  // namespace mapsec::crypto
