#include "mapsec/crypto/rc4.hpp"

#include <stdexcept>
#include <utility>

namespace mapsec::crypto {

Rc4::Rc4(ConstBytes key) {
  if (key.empty() || key.size() > 256)
    throw std::invalid_argument("Rc4: key must be 1..256 bytes");
  for (int i = 0; i < 256; ++i) s_[i] = static_cast<std::uint8_t>(i);
  std::uint8_t j = 0;
  for (int i = 0; i < 256; ++i) {
    j = static_cast<std::uint8_t>(j + s_[i] + key[i % key.size()]);
    std::swap(s_[i], s_[j]);
  }
}

std::uint8_t Rc4::next_byte() {
  i_ = static_cast<std::uint8_t>(i_ + 1);
  j_ = static_cast<std::uint8_t>(j_ + s_[i_]);
  std::swap(s_[i_], s_[j_]);
  return s_[static_cast<std::uint8_t>(s_[i_] + s_[j_])];
}

Bytes Rc4::keystream(std::size_t n) {
  Bytes out(n);
  keystream_into(out);
  return out;
}

void Rc4::keystream_into(std::span<std::uint8_t> out) {
  // Local copies of the PRGA state let the compiler keep i/j in registers
  // across the loop instead of spilling to the object on every byte.
  std::uint8_t i = i_, j = j_;
  for (auto& b : out) {
    i = static_cast<std::uint8_t>(i + 1);
    j = static_cast<std::uint8_t>(j + s_[i]);
    std::swap(s_[i], s_[j]);
    b = s_[static_cast<std::uint8_t>(s_[i] + s_[j])];
  }
  i_ = i;
  j_ = j;
}

Bytes Rc4::process(ConstBytes data) {
  Bytes out(data.begin(), data.end());
  process_inplace(out);
  return out;
}

void Rc4::process_inplace(std::span<std::uint8_t> data) {
  std::uint8_t i = i_, j = j_;
  for (auto& b : data) {
    i = static_cast<std::uint8_t>(i + 1);
    j = static_cast<std::uint8_t>(j + s_[i]);
    std::swap(s_[i], s_[j]);
    b ^= s_[static_cast<std::uint8_t>(s_[i] + s_[j])];
  }
  i_ = i;
  j_ = j;
}

void Rc4::skip(std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) next_byte();
}

}  // namespace mapsec::crypto
