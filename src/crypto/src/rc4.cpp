#include "mapsec/crypto/rc4.hpp"

#include <stdexcept>
#include <utility>

namespace mapsec::crypto {

Rc4::Rc4(ConstBytes key) {
  if (key.empty() || key.size() > 256)
    throw std::invalid_argument("Rc4: key must be 1..256 bytes");
  for (int i = 0; i < 256; ++i) s_[i] = static_cast<std::uint8_t>(i);
  std::uint8_t j = 0;
  for (int i = 0; i < 256; ++i) {
    j = static_cast<std::uint8_t>(j + s_[i] + key[i % key.size()]);
    std::swap(s_[i], s_[j]);
  }
}

std::uint8_t Rc4::next_byte() {
  i_ = static_cast<std::uint8_t>(i_ + 1);
  j_ = static_cast<std::uint8_t>(j_ + s_[i_]);
  std::swap(s_[i_], s_[j_]);
  return s_[static_cast<std::uint8_t>(s_[i_] + s_[j_])];
}

Bytes Rc4::keystream(std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = next_byte();
  return out;
}

Bytes Rc4::process(ConstBytes data) {
  Bytes out(data.begin(), data.end());
  for (auto& b : out) b ^= next_byte();
  return out;
}

void Rc4::skip(std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) next_byte();
}

}  // namespace mapsec::crypto
