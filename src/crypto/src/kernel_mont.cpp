// Unrolled Montgomery CIOS inner loop. The arithmetic is identical to the
// scalar kernel in modexp.cpp — 64-bit limbs, 128-bit accumulation — but
// the limb count is a compile-time constant for the widths RSA/DH actually
// use (512/1024/2048-bit: kw = 8/16/32), letting the compiler fully unroll
// the j-loops, keep carries in registers, and (this TU is built with
// -mbmi2 -madx on x86) schedule mulx/adcx/adox carry chains instead of
// serialized mul/adc. Only the pre-subtraction REDC value is produced
// here; the caller owns the conditional final subtraction, so the
// timing-attack-visible extra-reduction behaviour cannot differ between
// backends.
#include "kernels.hpp"

#include <cstring>

namespace mapsec::crypto::dispatch {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

template <std::size_t KW>
void cios_fixed(const u64* a, const u64* b, const u64* n, u64 n0inv,
                u64* t) {
  std::memset(t, 0, (KW + 2) * sizeof(u64));
  for (std::size_t i = 0; i < KW; ++i) {
    const u64 ai = a[i];

    u64 carry = 0;
    for (std::size_t j = 0; j < KW; ++j) {
      const u128 cur = u128{t[j]} + u128{ai} * b[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 cur = u128{t[KW]} + carry;
    t[KW] = static_cast<u64>(cur);
    t[KW + 1] = static_cast<u64>(cur >> 64);

    const u64 m = t[0] * n0inv;
    carry = static_cast<u64>((u128{t[0]} + u128{m} * n[0]) >> 64);
    for (std::size_t j = 1; j < KW; ++j) {
      const u128 c = u128{t[j]} + u128{m} * n[j] + carry;
      t[j - 1] = static_cast<u64>(c);
      carry = static_cast<u64>(c >> 64);
    }
    cur = u128{t[KW]} + carry;
    t[KW - 1] = static_cast<u64>(cur);
    cur = u128{t[KW + 1]} + static_cast<u64>(cur >> 64);
    t[KW] = static_cast<u64>(cur);
    t[KW + 1] = 0;
  }
}

void cios_var(const u64* a, const u64* b, const u64* n, u64 n0inv, u64* t,
              std::size_t kw) {
  std::memset(t, 0, (kw + 2) * sizeof(u64));
  for (std::size_t i = 0; i < kw; ++i) {
    const u64 ai = a[i];

    u64 carry = 0;
    for (std::size_t j = 0; j < kw; ++j) {
      const u128 cur = u128{t[j]} + u128{ai} * b[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 cur = u128{t[kw]} + carry;
    t[kw] = static_cast<u64>(cur);
    t[kw + 1] = static_cast<u64>(cur >> 64);

    const u64 m = t[0] * n0inv;
    carry = static_cast<u64>((u128{t[0]} + u128{m} * n[0]) >> 64);
    for (std::size_t j = 1; j < kw; ++j) {
      const u128 c = u128{t[j]} + u128{m} * n[j] + carry;
      t[j - 1] = static_cast<u64>(c);
      carry = static_cast<u64>(c >> 64);
    }
    cur = u128{t[kw]} + carry;
    t[kw - 1] = static_cast<u64>(cur);
    cur = u128{t[kw + 1]} + static_cast<u64>(cur >> 64);
    t[kw] = static_cast<u64>(cur);
    t[kw + 1] = 0;
  }
}

void cios_unrolled(const u64* a, const u64* b, const u64* n, u64 n0inv,
                   u64* t, std::size_t kw) {
  switch (kw) {
    case 4: cios_fixed<4>(a, b, n, n0inv, t); break;    // 256-bit
    case 8: cios_fixed<8>(a, b, n, n0inv, t); break;    // 512-bit (RSA CRT)
    case 16: cios_fixed<16>(a, b, n, n0inv, t); break;  // 1024-bit
    case 32: cios_fixed<32>(a, b, n, n0inv, t); break;  // 2048-bit
    default: cios_var(a, b, n, n0inv, t, kw); break;
  }
}

}  // namespace

const MontCiosFn kMontCiosUnrolled = cios_unrolled;
const bool kHaveMontUnrolled = true;
#if defined(__BMI2__) && defined(__ADX__)
const bool kMontNeedsBmi2 = true;
#else
const bool kMontNeedsBmi2 = false;
#endif

}  // namespace mapsec::crypto::dispatch
