// SHA-NI backend: the Goldmont/Ice Lake SHA extensions execute four SHA-1
// or SHA-256 rounds per instruction, turning the ~2500-instruction scalar
// compression into a few dozen. Multi-block entry points keep the state in
// registers across an entire update() span.
//
// Compiled with -mssse3 -msse4.1 -msha (SSE encodings, no AVX requirement);
// dispatch.cpp gates selection on the CPUID sha/ssse3/sse41 bits.
#include "kernels.hpp"

#if defined(__SHA__) && defined(__SSSE3__) && defined(__SSE4_1__)

#include <immintrin.h>

namespace mapsec::crypto::dispatch {

namespace {

alignas(16) constexpr std::uint32_t kK256[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

void sha256_ni(std::uint32_t state[8], const std::uint8_t* data,
               std::size_t nblocks) {
  // Byte-swap mask turning each big-endian message word little-endian.
  const __m128i MASK =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Repack (a,b,c,d | e,f,g,h) into the (ABEF | CDGH) lane order the
  // sha256rnds2 instruction works in.
  __m128i TMP =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i STATE1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  TMP = _mm_shuffle_epi32(TMP, 0xB1);        // CDAB
  STATE1 = _mm_shuffle_epi32(STATE1, 0x1B);  // EFGH
  __m128i STATE0 = _mm_alignr_epi8(TMP, STATE1, 8);    // ABEF
  STATE1 = _mm_blend_epi16(STATE1, TMP, 0xF0);         // CDGH

  while (nblocks--) {
    const __m128i ABEF_SAVE = STATE0;
    const __m128i CDGH_SAVE = STATE1;

    __m128i MSGS[4];
    for (int g = 0; g < 4; ++g) {
      MSGS[g] = _mm_shuffle_epi8(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(data + 16 * g)),
          MASK);
    }

    // Groups 0-2: rounds on the loaded words; the schedule recurrence
    // (alignr + msg1/msg2) starts once four chunks are in flight.
    __m128i MSG = _mm_add_epi32(
        MSGS[0],
        _mm_load_si128(reinterpret_cast<const __m128i*>(&kK256[0])));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    MSG = _mm_add_epi32(
        MSGS[1],
        _mm_load_si128(reinterpret_cast<const __m128i*>(&kK256[4])));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSGS[0] = _mm_sha256msg1_epu32(MSGS[0], MSGS[1]);

    MSG = _mm_add_epi32(
        MSGS[2],
        _mm_load_si128(reinterpret_cast<const __m128i*>(&kK256[8])));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSGS[1] = _mm_sha256msg1_epu32(MSGS[1], MSGS[2]);

    // Groups 3-15: full pattern. At group g the current chunk X=MSGS[g&3]
    // feeds the rounds while W[4(g+1)..] is produced into MSGS[(g+1)&3]
    // (alignr gathers the W[t-7] words) and msg1 pre-chews MSGS[(g+3)&3].
    for (int g = 3; g < 16; ++g) {
      const __m128i X = MSGS[g & 3];
      MSG = _mm_add_epi32(
          X, _mm_load_si128(
                 reinterpret_cast<const __m128i*>(&kK256[4 * g])));
      STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
      if (g <= 14) {
        const __m128i T = _mm_alignr_epi8(X, MSGS[(g + 3) & 3], 4);
        MSGS[(g + 1) & 3] = _mm_add_epi32(MSGS[(g + 1) & 3], T);
        MSGS[(g + 1) & 3] = _mm_sha256msg2_epu32(MSGS[(g + 1) & 3], X);
      }
      MSG = _mm_shuffle_epi32(MSG, 0x0E);
      STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
      if (g <= 12)
        MSGS[(g + 3) & 3] = _mm_sha256msg1_epu32(MSGS[(g + 3) & 3], X);
    }

    STATE0 = _mm_add_epi32(STATE0, ABEF_SAVE);
    STATE1 = _mm_add_epi32(STATE1, CDGH_SAVE);
    data += 64;
  }

  TMP = _mm_shuffle_epi32(STATE0, 0x1B);     // FEBA
  STATE1 = _mm_shuffle_epi32(STATE1, 0xB1);  // DCHG
  STATE0 = _mm_blend_epi16(TMP, STATE1, 0xF0);  // DCBA
  STATE1 = _mm_alignr_epi8(STATE1, TMP, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), STATE0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), STATE1);
}

// sha1rnds4 takes its round-function selector as an immediate, so the
// loop's g/5 has to be materialized through a switch.
inline __m128i sha1_rnds4(__m128i abcd, __m128i e, int func) {
  switch (func) {
    case 0: return _mm_sha1rnds4_epu32(abcd, e, 0);
    case 1: return _mm_sha1rnds4_epu32(abcd, e, 1);
    case 2: return _mm_sha1rnds4_epu32(abcd, e, 2);
    default: return _mm_sha1rnds4_epu32(abcd, e, 3);
  }
}

void sha1_ni(std::uint32_t state[5], const std::uint8_t* data,
             std::size_t nblocks) {
  const __m128i MASK =
      _mm_set_epi64x(0x0001020304050607LL, 0x08090a0b0c0d0e0fLL);

  __m128i ABCD =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  ABCD = _mm_shuffle_epi32(ABCD, 0x1B);
  __m128i E0 = _mm_set_epi32(static_cast<int>(state[4]), 0, 0, 0);
  __m128i E1 = _mm_setzero_si128();

  while (nblocks--) {
    const __m128i ABCD_SAVE = ABCD;
    const __m128i E0_SAVE = E0;

    __m128i MSGS[4];
    for (int g = 0; g < 4; ++g) {
      MSGS[g] = _mm_shuffle_epi8(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(data + 16 * g)),
          MASK);
    }

    // Group 0 seeds E directly; groups 1-19 thread it through sha1nexte.
    E0 = _mm_add_epi32(E0, MSGS[0]);
    E1 = ABCD;
    ABCD = sha1_rnds4(ABCD, E0, 0);

    for (int g = 1; g < 20; ++g) {
      const __m128i X = MSGS[g & 3];
      __m128i* const cur = (g & 1) ? &E1 : &E0;
      __m128i* const nxt = (g & 1) ? &E0 : &E1;
      *cur = _mm_sha1nexte_epu32(*cur, X);
      *nxt = ABCD;
      if (g >= 3 && g <= 18)
        MSGS[(g + 1) & 3] = _mm_sha1msg2_epu32(MSGS[(g + 1) & 3], X);
      ABCD = sha1_rnds4(ABCD, *cur, g / 5);
      if (g <= 16)
        MSGS[(g + 3) & 3] = _mm_sha1msg1_epu32(MSGS[(g + 3) & 3], X);
      if (g >= 2 && g <= 17)
        MSGS[(g + 2) & 3] = _mm_xor_si128(MSGS[(g + 2) & 3], X);
    }

    // g=19 left the pre-round ABCD in E0 (nxt of the odd g=19); combine.
    E0 = _mm_sha1nexte_epu32(E0, E0_SAVE);
    ABCD = _mm_add_epi32(ABCD, ABCD_SAVE);
    data += 64;
  }

  ABCD = _mm_shuffle_epi32(ABCD, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), ABCD);
  state[4] = static_cast<std::uint32_t>(_mm_extract_epi32(E0, 3));
}

}  // namespace

const Sha1CompressFn kSha1ShaNi = sha1_ni;
const Sha256CompressFn kSha256ShaNi = sha256_ni;
const bool kHaveShaNi = true;

}  // namespace mapsec::crypto::dispatch

#else

namespace mapsec::crypto::dispatch {
const Sha1CompressFn kSha1ShaNi = nullptr;
const Sha256CompressFn kSha256ShaNi = nullptr;
const bool kHaveShaNi = false;
}  // namespace mapsec::crypto::dispatch

#endif
