#include "mapsec/crypto/prime.hpp"

#include <array>

#include "mapsec/crypto/modexp.hpp"

namespace mapsec::crypto {

namespace {

// Primes below 1000 for cheap trial division before Miller-Rabin.
constexpr std::array<std::uint32_t, 168> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263,
    269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
    353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433,
    439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521,
    523, 541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613,
    617, 619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701,
    709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797, 809,
    811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887,
    907, 911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983, 991, 997};

bool passes_trial_division(const BigInt& n) {
  for (const std::uint32_t p : kSmallPrimes) {
    const BigInt bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }
  return true;
}

}  // namespace

bool is_probably_prime(const BigInt& n, Rng& rng, int rounds) {
  if (n < BigInt(2)) return false;
  if (n == BigInt(2) || n == BigInt(3)) return true;
  if (n.is_even()) return false;
  if (!passes_trial_division(n)) return false;

  // Write n-1 = d * 2^r with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (d.is_even()) {
    d = d >> 1;
    ++r;
  }

  const Montgomery mont(n);
  const BigInt two(2);
  for (int round = 0; round < rounds; ++round) {
    // Base in [2, n-2].
    const BigInt a = two + BigInt::random_below(rng, n - BigInt(3));
    BigInt x = mont.exp(a, d);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 1; i < r; ++i) {
      x = (x * x) % n;
      if (x == n_minus_1) {
        composite = false;
        break;
      }
      if (x == BigInt(1)) return false;  // nontrivial sqrt of 1
    }
    if (composite) return false;
  }
  return true;
}

BigInt generate_prime(Rng& rng, std::size_t bits) {
  if (bits < 8)
    throw std::invalid_argument("generate_prime: need at least 8 bits");
  for (;;) {
    BigInt candidate = BigInt::random_bits(rng, bits);
    // Force odd and force the second-highest bit (so p*q has 2*bits bits).
    candidate = candidate + (candidate.is_even() ? BigInt(1) : BigInt(0));
    const BigInt second_top = BigInt(1) << (bits - 2);
    if (!candidate.bit(bits - 2)) candidate += second_top;
    if (candidate.bit_length() != bits) continue;
    if (is_probably_prime(candidate, rng)) return candidate;
  }
}

BigInt generate_safe_prime(Rng& rng, std::size_t bits) {
  for (;;) {
    const BigInt q = generate_prime(rng, bits - 1);
    const BigInt p = (q << 1) + BigInt(1);
    if (is_probably_prime(p, rng)) return p;
  }
}

}  // namespace mapsec::crypto
