// Batched Montgomery CIOS: four independent multiplications interleaved
// at the inner-loop level. A single CIOS pass is bound by the latency of
// one serial carry chain (each 64×64→128 multiply feeds the next add);
// the multiplier itself is pipelined and mostly idle. Four INDEPENDENT
// chains advanced in lockstep keep it fed — the classic multi-buffer
// transform, applied to the modexp the offload lanes batch across
// concurrent handshakes.
//
// The arithmetic per lane is limb-for-limb the scalar kernel's; only the
// instruction schedule changes, so the pre-subtraction REDC values are
// bit-identical by construction. This TU is built with
// -mavx2 -mbmi2 -madx -funroll-loops on x86 so the compiler can emit
// mulx/adcx/adox chains; the source itself is portable C++ (u128).
#include "kernels.hpp"

#include <cstring>

namespace mapsec::crypto::dispatch {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

template <std::size_t KW>
void cios_batch4_fixed(const MontBatchOperand* ops) {
  const u64* a0 = ops[0].a;
  const u64* a1 = ops[1].a;
  const u64* a2 = ops[2].a;
  const u64* a3 = ops[3].a;
  const u64* b0 = ops[0].b;
  const u64* b1 = ops[1].b;
  const u64* b2 = ops[2].b;
  const u64* b3 = ops[3].b;
  const u64* n0 = ops[0].n;
  const u64* n1 = ops[1].n;
  const u64* n2 = ops[2].n;
  const u64* n3 = ops[3].n;
  u64* t0 = ops[0].t;
  u64* t1 = ops[1].t;
  u64* t2 = ops[2].t;
  u64* t3 = ops[3].t;
  std::memset(t0, 0, (KW + 2) * sizeof(u64));
  std::memset(t1, 0, (KW + 2) * sizeof(u64));
  std::memset(t2, 0, (KW + 2) * sizeof(u64));
  std::memset(t3, 0, (KW + 2) * sizeof(u64));

  for (std::size_t i = 0; i < KW; ++i) {
    const u64 ai0 = a0[i];
    const u64 ai1 = a1[i];
    const u64 ai2 = a2[i];
    const u64 ai3 = a3[i];

    // t += ai * b, four independent carry chains per j step.
    u64 c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    for (std::size_t j = 0; j < KW; ++j) {
      const u128 x0 = u128{t0[j]} + u128{ai0} * b0[j] + c0;
      const u128 x1 = u128{t1[j]} + u128{ai1} * b1[j] + c1;
      const u128 x2 = u128{t2[j]} + u128{ai2} * b2[j] + c2;
      const u128 x3 = u128{t3[j]} + u128{ai3} * b3[j] + c3;
      t0[j] = static_cast<u64>(x0);
      t1[j] = static_cast<u64>(x1);
      t2[j] = static_cast<u64>(x2);
      t3[j] = static_cast<u64>(x3);
      c0 = static_cast<u64>(x0 >> 64);
      c1 = static_cast<u64>(x1 >> 64);
      c2 = static_cast<u64>(x2 >> 64);
      c3 = static_cast<u64>(x3 >> 64);
    }
    u128 y0 = u128{t0[KW]} + c0;
    u128 y1 = u128{t1[KW]} + c1;
    u128 y2 = u128{t2[KW]} + c2;
    u128 y3 = u128{t3[KW]} + c3;
    t0[KW] = static_cast<u64>(y0);
    t1[KW] = static_cast<u64>(y1);
    t2[KW] = static_cast<u64>(y2);
    t3[KW] = static_cast<u64>(y3);
    t0[KW + 1] = static_cast<u64>(y0 >> 64);
    t1[KW + 1] = static_cast<u64>(y1 >> 64);
    t2[KW + 1] = static_cast<u64>(y2 >> 64);
    t3[KW + 1] = static_cast<u64>(y3 >> 64);

    // m = t[0] * n0inv mod 2^64; t += m * n; t >>= 64 — per lane, with
    // each lane's own modulus (the CRT halves of different keys batch).
    const u64 m0 = t0[0] * ops[0].n0inv;
    const u64 m1 = t1[0] * ops[1].n0inv;
    const u64 m2 = t2[0] * ops[2].n0inv;
    const u64 m3 = t3[0] * ops[3].n0inv;
    c0 = static_cast<u64>((u128{t0[0]} + u128{m0} * n0[0]) >> 64);
    c1 = static_cast<u64>((u128{t1[0]} + u128{m1} * n1[0]) >> 64);
    c2 = static_cast<u64>((u128{t2[0]} + u128{m2} * n2[0]) >> 64);
    c3 = static_cast<u64>((u128{t3[0]} + u128{m3} * n3[0]) >> 64);
    for (std::size_t j = 1; j < KW; ++j) {
      const u128 x0 = u128{t0[j]} + u128{m0} * n0[j] + c0;
      const u128 x1 = u128{t1[j]} + u128{m1} * n1[j] + c1;
      const u128 x2 = u128{t2[j]} + u128{m2} * n2[j] + c2;
      const u128 x3 = u128{t3[j]} + u128{m3} * n3[j] + c3;
      t0[j - 1] = static_cast<u64>(x0);
      t1[j - 1] = static_cast<u64>(x1);
      t2[j - 1] = static_cast<u64>(x2);
      t3[j - 1] = static_cast<u64>(x3);
      c0 = static_cast<u64>(x0 >> 64);
      c1 = static_cast<u64>(x1 >> 64);
      c2 = static_cast<u64>(x2 >> 64);
      c3 = static_cast<u64>(x3 >> 64);
    }
    y0 = u128{t0[KW]} + c0;
    y1 = u128{t1[KW]} + c1;
    y2 = u128{t2[KW]} + c2;
    y3 = u128{t3[KW]} + c3;
    t0[KW - 1] = static_cast<u64>(y0);
    t1[KW - 1] = static_cast<u64>(y1);
    t2[KW - 1] = static_cast<u64>(y2);
    t3[KW - 1] = static_cast<u64>(y3);
    y0 = u128{t0[KW + 1]} + static_cast<u64>(y0 >> 64);
    y1 = u128{t1[KW + 1]} + static_cast<u64>(y1 >> 64);
    y2 = u128{t2[KW + 1]} + static_cast<u64>(y2 >> 64);
    y3 = u128{t3[KW + 1]} + static_cast<u64>(y3 >> 64);
    t0[KW] = static_cast<u64>(y0);
    t1[KW] = static_cast<u64>(y1);
    t2[KW] = static_cast<u64>(y2);
    t3[KW] = static_cast<u64>(y3);
    t0[KW + 1] = 0;
    t1[KW + 1] = 0;
    t2[KW + 1] = 0;
    t3[KW + 1] = 0;
  }
}

void cios_batch4_var(const MontBatchOperand* ops, std::size_t kw) {
  u64* t0 = ops[0].t;
  u64* t1 = ops[1].t;
  u64* t2 = ops[2].t;
  u64* t3 = ops[3].t;
  std::memset(t0, 0, (kw + 2) * sizeof(u64));
  std::memset(t1, 0, (kw + 2) * sizeof(u64));
  std::memset(t2, 0, (kw + 2) * sizeof(u64));
  std::memset(t3, 0, (kw + 2) * sizeof(u64));

  for (std::size_t i = 0; i < kw; ++i) {
    const u64 ai0 = ops[0].a[i];
    const u64 ai1 = ops[1].a[i];
    const u64 ai2 = ops[2].a[i];
    const u64 ai3 = ops[3].a[i];

    u64 c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    for (std::size_t j = 0; j < kw; ++j) {
      const u128 x0 = u128{t0[j]} + u128{ai0} * ops[0].b[j] + c0;
      const u128 x1 = u128{t1[j]} + u128{ai1} * ops[1].b[j] + c1;
      const u128 x2 = u128{t2[j]} + u128{ai2} * ops[2].b[j] + c2;
      const u128 x3 = u128{t3[j]} + u128{ai3} * ops[3].b[j] + c3;
      t0[j] = static_cast<u64>(x0);
      t1[j] = static_cast<u64>(x1);
      t2[j] = static_cast<u64>(x2);
      t3[j] = static_cast<u64>(x3);
      c0 = static_cast<u64>(x0 >> 64);
      c1 = static_cast<u64>(x1 >> 64);
      c2 = static_cast<u64>(x2 >> 64);
      c3 = static_cast<u64>(x3 >> 64);
    }
    u128 y0 = u128{t0[kw]} + c0;
    u128 y1 = u128{t1[kw]} + c1;
    u128 y2 = u128{t2[kw]} + c2;
    u128 y3 = u128{t3[kw]} + c3;
    t0[kw] = static_cast<u64>(y0);
    t1[kw] = static_cast<u64>(y1);
    t2[kw] = static_cast<u64>(y2);
    t3[kw] = static_cast<u64>(y3);
    t0[kw + 1] = static_cast<u64>(y0 >> 64);
    t1[kw + 1] = static_cast<u64>(y1 >> 64);
    t2[kw + 1] = static_cast<u64>(y2 >> 64);
    t3[kw + 1] = static_cast<u64>(y3 >> 64);

    const u64 m0 = t0[0] * ops[0].n0inv;
    const u64 m1 = t1[0] * ops[1].n0inv;
    const u64 m2 = t2[0] * ops[2].n0inv;
    const u64 m3 = t3[0] * ops[3].n0inv;
    c0 = static_cast<u64>((u128{t0[0]} + u128{m0} * ops[0].n[0]) >> 64);
    c1 = static_cast<u64>((u128{t1[0]} + u128{m1} * ops[1].n[0]) >> 64);
    c2 = static_cast<u64>((u128{t2[0]} + u128{m2} * ops[2].n[0]) >> 64);
    c3 = static_cast<u64>((u128{t3[0]} + u128{m3} * ops[3].n[0]) >> 64);
    for (std::size_t j = 1; j < kw; ++j) {
      const u128 x0 = u128{t0[j]} + u128{m0} * ops[0].n[j] + c0;
      const u128 x1 = u128{t1[j]} + u128{m1} * ops[1].n[j] + c1;
      const u128 x2 = u128{t2[j]} + u128{m2} * ops[2].n[j] + c2;
      const u128 x3 = u128{t3[j]} + u128{m3} * ops[3].n[j] + c3;
      t0[j - 1] = static_cast<u64>(x0);
      t1[j - 1] = static_cast<u64>(x1);
      t2[j - 1] = static_cast<u64>(x2);
      t3[j - 1] = static_cast<u64>(x3);
      c0 = static_cast<u64>(x0 >> 64);
      c1 = static_cast<u64>(x1 >> 64);
      c2 = static_cast<u64>(x2 >> 64);
      c3 = static_cast<u64>(x3 >> 64);
    }
    y0 = u128{t0[kw]} + c0;
    y1 = u128{t1[kw]} + c1;
    y2 = u128{t2[kw]} + c2;
    y3 = u128{t3[kw]} + c3;
    t0[kw - 1] = static_cast<u64>(y0);
    t1[kw - 1] = static_cast<u64>(y1);
    t2[kw - 1] = static_cast<u64>(y2);
    t3[kw - 1] = static_cast<u64>(y3);
    y0 = u128{t0[kw + 1]} + static_cast<u64>(y0 >> 64);
    y1 = u128{t1[kw + 1]} + static_cast<u64>(y1 >> 64);
    y2 = u128{t2[kw + 1]} + static_cast<u64>(y2 >> 64);
    y3 = u128{t3[kw + 1]} + static_cast<u64>(y3 >> 64);
    t0[kw] = static_cast<u64>(y0);
    t1[kw] = static_cast<u64>(y1);
    t2[kw] = static_cast<u64>(y2);
    t3[kw] = static_cast<u64>(y3);
    t0[kw + 1] = 0;
    t1[kw + 1] = 0;
    t2[kw + 1] = 0;
    t3[kw + 1] = 0;
  }
}

void cios_batch4(const MontBatchOperand* ops, std::size_t kw) {
  switch (kw) {
    case 4: cios_batch4_fixed<4>(ops); break;    // 256-bit
    case 8: cios_batch4_fixed<8>(ops); break;    // 512-bit (RSA-1024 CRT)
    case 16: cios_batch4_fixed<16>(ops); break;  // 1024-bit
    case 32: cios_batch4_fixed<32>(ops); break;  // 2048-bit
    default: cios_batch4_var(ops, kw); break;
  }
}

void cios_batch_ilp(const MontBatchOperand* ops, std::size_t count,
                    std::size_t kw) {
  std::size_t i = 0;
  for (; count - i >= 4; i += 4) cios_batch4(ops + i, kw);
  // Ragged tail (lanes drop out as their exponents run dry): the
  // single-op unrolled kernel, one lane at a time.
  for (; i < count; ++i)
    kMontCiosUnrolled(ops[i].a, ops[i].b, ops[i].n, ops[i].n0inv, ops[i].t,
                      kw);
}

}  // namespace

const MontCiosBatchFn kMontCiosBatchIlp = cios_batch_ilp;
const bool kHaveMontBatch = true;
#if defined(__BMI2__) && defined(__ADX__)
const bool kMontBatchNeedsBmi2 = true;
#else
const bool kMontBatchNeedsBmi2 = false;
#endif

}  // namespace mapsec::crypto::dispatch
