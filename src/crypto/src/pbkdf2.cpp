#include "mapsec/crypto/pbkdf2.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "mapsec/crypto/hmac.hpp"

namespace mapsec::crypto {

namespace {

template <typename H>
Bytes pbkdf2(ConstBytes password, ConstBytes salt, std::uint32_t iterations,
             std::size_t dk_len) {
  if (iterations == 0)
    throw std::invalid_argument("pbkdf2: iterations must be >= 1");
  Bytes out;
  out.reserve(dk_len + H::kDigestSize);
  // One keyed context for the whole derivation: each iteration is a
  // reset() plus one message, never a key re-schedule or an allocation.
  Hmac<H> prf(password);
  std::uint8_t u[H::kDigestSize];
  std::uint8_t t[H::kDigestSize];
  std::uint32_t block_index = 1;
  while (out.size() < dk_len) {
    // U1 = PRF(P, S || INT(i))
    prf.reset();
    prf.update(salt);
    std::uint8_t idx[4];
    store_be32(idx, block_index);
    prf.update(ConstBytes{idx, 4});
    prf.finish_into(u);
    std::memcpy(t, u, H::kDigestSize);
    for (std::uint32_t c = 1; c < iterations; ++c) {
      prf.reset();
      prf.update(ConstBytes{u, H::kDigestSize});
      prf.finish_into(u);
      for (std::size_t i = 0; i < H::kDigestSize; ++i) t[i] ^= u[i];
    }
    out.insert(out.end(), t, t + H::kDigestSize);
    ++block_index;
  }
  secure_wipe(u, H::kDigestSize);
  secure_wipe(t, H::kDigestSize);
  out.resize(dk_len);
  return out;
}

}  // namespace

Bytes pbkdf2_hmac_sha1(ConstBytes password, ConstBytes salt,
                       std::uint32_t iterations, std::size_t dk_len) {
  return pbkdf2<Sha1>(password, salt, iterations, dk_len);
}

Bytes pbkdf2_hmac_sha256(ConstBytes password, ConstBytes salt,
                         std::uint32_t iterations, std::size_t dk_len) {
  return pbkdf2<Sha256>(password, salt, iterations, dk_len);
}

std::uint32_t pbkdf2_iterations_for_budget(double mips, double budget_ms,
                                           double instr_per_iteration) {
  if (mips <= 0 || budget_ms <= 0 || instr_per_iteration <= 0)
    throw std::invalid_argument("pbkdf2_iterations_for_budget: bad inputs");
  const double iterations =
      mips * 1e6 * (budget_ms / 1e3) / instr_per_iteration;
  return iterations < 1.0 ? 1u
                          : static_cast<std::uint32_t>(
                                std::min(iterations, 4.0e9));
}

}  // namespace mapsec::crypto
