// Internal kernel tables behind mapsec::crypto::dispatch (not installed —
// include from src/crypto/src only).
//
// Each primitive has exactly one scalar kernel (defined next to the code
// it was extracted from, so it IS the pre-dispatch implementation) and
// zero or more ISA kernels defined in per-ISA translation units compiled
// with the matching -m flags. A kernel TU that is built without its ISA
// macros (non-x86, or flags unavailable) still defines its symbols but
// reports kHave* = false, so dispatch.cpp links everywhere and simply
// never selects it.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mapsec/crypto/aes.hpp"

namespace mapsec::crypto::dispatch {

// ---------------------------------------------------------------------------
// AES

/// Non-owning view of an expanded AES key schedule. `words` is the
/// big-endian-packed u32 schedule the T-table code reads; `bytes` is the
/// same schedule serialized big-endian (16 bytes per round key), which is
/// precisely the memory layout AES-NI round-key loads expect. For the
/// decryption schedule the inner round keys are already InvMixColumns-
/// transformed (FIPS 197 equivalent inverse cipher) — again exactly what
/// both the Td tables and `aesdec` want.
struct AesSchedule {
  const std::uint32_t* words;  // 4 * (rounds + 1) words
  const std::uint8_t* bytes;   // 16 * (rounds + 1) bytes
  int rounds;
};

inline AesSchedule enc_schedule(const Aes& a) {
  return {a.round_keys().data(), a.round_key_bytes(), a.rounds()};
}

inline AesSchedule dec_schedule(const Aes& a) {
  return {a.dec_round_keys().data(), a.dec_round_key_bytes(), a.rounds()};
}

/// One backend's AES entry points. The block functions are never null;
/// the span functions may be (the scalar table leaves them null and the
/// callers keep their original generic loops, so forcing scalar exercises
/// literally the pre-dispatch code).
struct AesKernels {
  const char* name;
  void (*encrypt_block)(const AesSchedule& enc, const std::uint8_t* in,
                        std::uint8_t* out);
  void (*decrypt_block)(const AesSchedule& dec, const std::uint8_t* in,
                        std::uint8_t* out);
  /// CTR keystream XOR over `len` bytes (partial final block allowed);
  /// `counter` is the current 16-byte big-endian counter block, advanced
  /// in place one increment per block consumed.
  void (*ctr_xor)(const AesSchedule& enc, std::uint8_t counter[16],
                  std::uint8_t* data, std::size_t len);
  /// CBC-MAC absorption of `nblocks` whole blocks into `state`.
  void (*cbc_mac)(const AesSchedule& enc, std::uint8_t state[16],
                  const std::uint8_t* data, std::size_t nblocks);
  /// In-place CBC decryption of `nblocks` whole blocks.
  void (*cbc_decrypt)(const AesSchedule& dec, const std::uint8_t iv[16],
                      std::uint8_t* data, std::size_t nblocks);
};

/// The active AES backend. Queried per call (one relaxed atomic load), so
/// force_scalar() toggles take effect immediately even for live ciphers.
const AesKernels& aes_kernels();

// ---------------------------------------------------------------------------
// Hash compression (multi-block: one call amortizes the dispatch and the
// state round-trips across every whole block of an update()).

using Sha1CompressFn = void (*)(std::uint32_t state[5],
                                const std::uint8_t* blocks,
                                std::size_t nblocks);
using Sha256CompressFn = void (*)(std::uint32_t state[8],
                                  const std::uint8_t* blocks,
                                  std::size_t nblocks);

Sha1CompressFn sha1_compress();
Sha256CompressFn sha256_compress();

// ---------------------------------------------------------------------------
// CRC-32 (raw register domain: caller has already applied the ~crc
// pre-inversion; the kernel continues the reflected-table recurrence).

using Crc32Fn = std::uint32_t (*)(std::uint32_t raw, const std::uint8_t* data,
                                  std::size_t len);

Crc32Fn crc32_kernel();

// ---------------------------------------------------------------------------
// Montgomery CIOS inner loop. Computes the pre-conditional-subtraction
// REDC(a*b) into t[0..kw] (t has kw+2 slots and is zeroed by the kernel);
// the caller performs the final data-dependent subtraction and the
// MontStats accounting, so backends cannot diverge in either the result
// or the timing-attack-visible extra-reduction sequence.

using MontCiosFn = void (*)(const std::uint64_t* a, const std::uint64_t* b,
                            const std::uint64_t* n, std::uint64_t n0inv,
                            std::uint64_t* t, std::size_t kw);

MontCiosFn mont_cios_w64();

// ---------------------------------------------------------------------------
// Batched Montgomery CIOS: `count` independent multiplications over the
// SAME limb width kw, each with its OWN modulus/n0inv (so the two CRT
// halves of different RSA keys batch together). Every operand's t buffer
// has kw+2 slots and receives the identical pre-conditional-subtraction
// REDC value the single-op kernel would produce — the batch kernel is an
// instruction-scheduling transform only (independent carry chains
// interleaved to fill the multiplier ports), never an arithmetic one.
// The caller performs each lane's final data-dependent subtraction and
// MontStats accounting exactly as in the single-op path.

struct MontBatchOperand {
  const std::uint64_t* a;
  const std::uint64_t* b;
  const std::uint64_t* n;
  std::uint64_t n0inv;
  std::uint64_t* t;  // kw + 2 slots, zeroed by the kernel
};

using MontCiosBatchFn = void (*)(const MontBatchOperand* ops,
                                 std::size_t count, std::size_t kw);

MontCiosBatchFn mont_cios_w64_batch();

// ---------------------------------------------------------------------------
// Multi-buffer SHA-256: advance `nlanes` independent states lockstep by
// `nblocks` whole blocks each (states[l] is an 8-word state, blocks[l]
// points at lane l's 64*nblocks message bytes). Bit-identical to calling
// the single-stream compressor per lane; the win is shared message-
// schedule arithmetic across lanes.

using Sha256MbFn = void (*)(std::uint32_t* const* states,
                            const std::uint8_t* const* blocks,
                            std::size_t nlanes, std::size_t nblocks);

Sha256MbFn sha256_mb();

// ---------------------------------------------------------------------------
// Multi-buffer AES: interleave independent streams (one key schedule per
// lane, all lanes the same round count) so each lane's serial dependency
// (CBC-MAC chaining, CTR keystream latency) overlaps the others'. The
// scalar table leaves the function pointers null and callers keep their
// per-lane loops — forcing scalar exercises literally the single-stream
// code.

struct AesMbKernels {
  const char* name;
  /// Lockstep CBC-MAC: absorb `nblocks` whole blocks into each lane's
  /// 16-byte state. All lanes must share one round count.
  void (*cbc_mac_mb)(const AesSchedule* scheds, std::uint8_t* const* states,
                     const std::uint8_t* const* data, std::size_t nlanes,
                     std::size_t nblocks);
  /// CTR keystream XOR over lens[l] bytes per lane (partial final block
  /// allowed); counters advance in place one increment per block, exactly
  /// as the single-stream ctr_xor.
  void (*ctr_xor_mb)(const AesSchedule* scheds, std::uint8_t* const* counters,
                     std::uint8_t* const* data, const std::size_t* lens,
                     std::size_t nlanes);
};

const AesMbKernels& aes_mb_kernels();

// ---------------------------------------------------------------------------
// Scalar kernels (each defined in the TU owning the original code).

void aes_encrypt_scalar(const AesSchedule& s, const std::uint8_t* in,
                        std::uint8_t* out);
void aes_decrypt_scalar(const AesSchedule& s, const std::uint8_t* in,
                        std::uint8_t* out);
void sha1_compress_scalar(std::uint32_t state[5], const std::uint8_t* blocks,
                          std::size_t nblocks);
void sha256_compress_scalar(std::uint32_t state[8], const std::uint8_t* blocks,
                            std::size_t nblocks);
std::uint32_t crc32_raw(std::uint32_t raw, const std::uint8_t* data,
                        std::size_t len);
void mont_cios_w64_scalar(const std::uint64_t* a, const std::uint64_t* b,
                          const std::uint64_t* n, std::uint64_t n0inv,
                          std::uint64_t* t, std::size_t kw);
/// Sequential loop over mont_cios_w64_scalar — the interleaved-scalar
/// reference the batched differential tests compare against.
void mont_cios_w64_batch_scalar(const MontBatchOperand* ops,
                                std::size_t count, std::size_t kw);
/// Per-lane loop over sha256_compress_scalar.
void sha256_mb_scalar(std::uint32_t* const* states,
                      const std::uint8_t* const* blocks, std::size_t nlanes,
                      std::size_t nblocks);

// ---------------------------------------------------------------------------
// ISA kernels. Always linked; kHave* says whether the TU was compiled
// with the ISA actually enabled. Selection additionally requires the
// matching CPUID bits at run time.

extern const AesKernels kAesScalar;
extern const AesKernels kAesNi;
extern const bool kHaveAesNi;

extern const Sha1CompressFn kSha1ShaNi;
extern const Sha256CompressFn kSha256ShaNi;
extern const bool kHaveShaNi;

extern const Sha1CompressFn kSha1Avx2;
extern const Sha256CompressFn kSha256Avx2;
extern const bool kHaveShaAvx2;

extern const Crc32Fn kCrc32Pclmul;
extern const bool kHavePclmul;

extern const MontCiosFn kMontCiosUnrolled;
extern const bool kHaveMontUnrolled;  // TU compiled at all
extern const bool kMontNeedsBmi2;     // TU compiled with -mbmi2/-madx

extern const MontCiosBatchFn kMontCiosBatchIlp;
extern const bool kHaveMontBatch;      // TU compiled at all
extern const bool kMontBatchNeedsBmi2;  // TU compiled with -mbmi2/-madx

extern const Sha256MbFn kSha256MbAvx2;
extern const bool kHaveSha256Mb;

extern const AesMbKernels kAesMbScalar;  // null entries: per-lane loops
extern const AesMbKernels kAesMbNi;
extern const bool kHaveAesMbNi;

}  // namespace mapsec::crypto::dispatch
