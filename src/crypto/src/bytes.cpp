#include "mapsec/crypto/bytes.hpp"

#include <cctype>
#include <stdexcept>

namespace mapsec::crypto {

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_hex(ConstBytes data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes from_hex(std::string_view hex) {
  Bytes out;
  out.reserve(hex.size() / 2);
  int hi = -1;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const int v = hex_nibble(c);
    if (v < 0) throw std::invalid_argument("from_hex: non-hex character");
    if (hi < 0) {
      hi = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | v));
      hi = -1;
    }
  }
  if (hi >= 0) throw std::invalid_argument("from_hex: odd number of digits");
  return out;
}

bool ct_equal(ConstBytes a, ConstBytes b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void secure_wipe(std::uint8_t* data, std::size_t len) {
  volatile std::uint8_t* p = data;
  for (std::size_t i = 0; i < len; ++i) p[i] = 0;
}

void secure_wipe(Bytes& data) { secure_wipe(data.data(), data.size()); }

Bytes cat(ConstBytes a, ConstBytes b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Bytes cat(ConstBytes a, ConstBytes b, ConstBytes c) {
  Bytes out = cat(a, b);
  out.insert(out.end(), c.begin(), c.end());
  return out;
}

Bytes cat(ConstBytes a, ConstBytes b, ConstBytes c, ConstBytes d) {
  Bytes out = cat(a, b, c);
  out.insert(out.end(), d.begin(), d.end());
  return out;
}

void xor_into(std::span<std::uint8_t> dst, ConstBytes src) {
  if (dst.size() != src.size())
    throw std::invalid_argument("xor_into: length mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

}  // namespace mapsec::crypto
