#include "mapsec/crypto/bignum.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace mapsec::crypto {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}

void BigInt::trim() {
  while (!w_.empty() && w_.back() == 0) w_.pop_back();
}

BigInt::BigInt(std::uint64_t v) {
  if (v) w_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) w_.push_back(static_cast<std::uint32_t>(v >> 32));
}

BigInt BigInt::from_limbs(std::vector<std::uint32_t> limbs) {
  BigInt r;
  r.w_ = std::move(limbs);
  r.trim();
  return r;
}

BigInt BigInt::from_bytes_be(ConstBytes bytes) {
  BigInt r;
  r.w_.reserve(bytes.size() / 4 + 1);
  std::uint32_t limb = 0;
  int shift = 0;
  for (std::size_t i = bytes.size(); i-- > 0;) {
    limb |= std::uint32_t{bytes[i]} << shift;
    shift += 8;
    if (shift == 32) {
      r.w_.push_back(limb);
      limb = 0;
      shift = 0;
    }
  }
  if (shift) r.w_.push_back(limb);
  r.trim();
  return r;
}

Bytes BigInt::to_bytes_be(std::size_t min_len) const {
  Bytes out;
  for (std::size_t i = 0; i < w_.size(); ++i) {
    const std::uint32_t limb = w_[i];
    out.push_back(static_cast<std::uint8_t>(limb));
    out.push_back(static_cast<std::uint8_t>(limb >> 8));
    out.push_back(static_cast<std::uint8_t>(limb >> 16));
    out.push_back(static_cast<std::uint8_t>(limb >> 24));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  while (out.size() < min_len) out.push_back(0);
  std::reverse(out.begin(), out.end());
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  std::string padded;
  for (char c : hex)
    if (!std::isspace(static_cast<unsigned char>(c))) padded.push_back(c);
  if (padded.size() % 2) padded.insert(padded.begin(), '0');
  return from_bytes_be(mapsec::crypto::from_hex(padded));
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string s = mapsec::crypto::to_hex(to_bytes_be());
  // Strip the leading zero nibble if present.
  if (s.size() > 1 && s[0] == '0') s.erase(0, 1);
  return s;
}

std::string BigInt::to_dec() const {
  if (is_zero()) return "0";
  std::string out;
  BigInt v = *this;
  const BigInt ten(10);
  while (!v.is_zero()) {
    BigInt q, r;
    divmod(v, ten, q, r);
    out.push_back(static_cast<char>('0' + r.to_u64()));
    v = std::move(q);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t BigInt::bit_length() const {
  if (w_.empty()) return 0;
  return 32 * (w_.size() - 1) +
         (32 - static_cast<std::size_t>(std::countl_zero(w_.back())));
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= w_.size()) return false;
  return (w_[limb] >> (i % 32)) & 1u;
}

std::uint64_t BigInt::to_u64() const {
  std::uint64_t v = 0;
  if (!w_.empty()) v = w_[0];
  if (w_.size() > 1) v |= std::uint64_t{w_[1]} << 32;
  return v;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.w_.size() != b.w_.size()) return a.w_.size() <=> b.w_.size();
  for (std::size_t i = a.w_.size(); i-- > 0;)
    if (a.w_[i] != b.w_[i]) return a.w_[i] <=> b.w_[i];
  return std::strong_ordering::equal;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  BigInt r;
  const std::size_t n = std::max(a.w_.size(), b.w_.size());
  r.w_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.w_.size()) sum += a.w_[i];
    if (i < b.w_.size()) sum += b.w_[i];
    r.w_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  r.w_[n] = static_cast<std::uint32_t>(carry);
  r.trim();
  return r;
}

BigInt operator-(const BigInt& a, const BigInt& b) {
  if (a < b) throw std::underflow_error("BigInt: negative subtraction");
  BigInt r;
  r.w_.resize(a.w_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.w_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.w_[i]) - borrow;
    if (i < b.w_.size()) diff -= b.w_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    r.w_[i] = static_cast<std::uint32_t>(diff);
  }
  r.trim();
  return r;
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt{};
  BigInt r;
  r.w_.assign(a.w_.size() + b.w_.size(), 0);
  for (std::size_t i = 0; i < a.w_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a.w_[i];
    for (std::size_t j = 0; j < b.w_.size(); ++j) {
      const std::uint64_t cur =
          ai * b.w_[j] + r.w_[i + j] + carry;
      r.w_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    r.w_[i + b.w_.size()] += static_cast<std::uint32_t>(carry);
  }
  r.trim();
  return r;
}

BigInt operator<<(const BigInt& a, std::size_t bits) {
  if (a.is_zero() || bits == 0) {
    BigInt copy = a;
    return copy;
  }
  const std::size_t limb_shift = bits / 32;
  const unsigned bit_shift = bits % 32;
  BigInt r;
  r.w_.assign(a.w_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.w_.size(); ++i) {
    r.w_[i + limb_shift] |= a.w_[i] << bit_shift;
    if (bit_shift)
      r.w_[i + limb_shift + 1] |= a.w_[i] >> (32 - bit_shift);
  }
  r.trim();
  return r;
}

BigInt operator>>(const BigInt& a, std::size_t bits) {
  const std::size_t limb_shift = bits / 32;
  const unsigned bit_shift = bits % 32;
  if (limb_shift >= a.w_.size()) return BigInt{};
  BigInt r;
  r.w_.assign(a.w_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < r.w_.size(); ++i) {
    r.w_[i] = a.w_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < a.w_.size())
      r.w_[i] |= a.w_[i + limb_shift + 1] << (32 - bit_shift);
  }
  r.trim();
  return r;
}

void BigInt::divmod(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r) {
  if (b.is_zero()) throw std::domain_error("BigInt: division by zero");
  if (a < b) {
    q = BigInt{};
    r = a;
    return;
  }
  if (b.w_.size() == 1) {
    // Short division.
    const std::uint64_t d = b.w_[0];
    BigInt quot;
    quot.w_.resize(a.w_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = a.w_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | a.w_[i];
      quot.w_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    quot.trim();
    q = std::move(quot);
    r = BigInt(rem);
    return;
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its MSB set.
  const unsigned shift =
      static_cast<unsigned>(std::countl_zero(b.w_.back()));
  const BigInt u = a << shift;
  const BigInt v = b << shift;
  const std::size_t n = v.w_.size();
  const std::size_t m = u.w_.size() - n;

  std::vector<std::uint32_t> un(u.w_.begin(), u.w_.end());
  un.resize(u.w_.size() + 1, 0);  // extra high limb for the algorithm
  const std::vector<std::uint32_t>& vn = v.w_;

  BigInt quot;
  quot.w_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Trial quotient from the top two limbs.
    const std::uint64_t num =
        (std::uint64_t{un[j + n]} << 32) | un[j + n - 1];
    std::uint64_t qhat = num / vn[n - 1];
    std::uint64_t rhat = num % vn[n - 1];
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply-subtract qhat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const std::int64_t t = static_cast<std::int64_t>(un[i + j]) -
                             static_cast<std::int64_t>(p & 0xFFFFFFFFu) -
                             borrow;
      un[i + j] = static_cast<std::uint32_t>(t);
      borrow = (t < 0) ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(un[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    un[j + n] = static_cast<std::uint32_t>(t);

    if (t < 0) {
      // qhat was one too large: add v back.
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s =
            std::uint64_t{un[i + j]} + vn[i] + c;
        un[i + j] = static_cast<std::uint32_t>(s);
        c = s >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + c);
    }
    quot.w_[j] = static_cast<std::uint32_t>(qhat);
  }

  quot.trim();
  q = std::move(quot);

  BigInt rem;
  rem.w_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  rem.trim();
  r = rem >> shift;
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  return q;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  return r;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid, tracking coefficients for `a` only. Coefficients can
  // go "negative", handled with an explicit sign flag.
  if (m <= BigInt(1)) throw std::domain_error("mod_inverse: modulus must be > 1");
  BigInt r0 = m, r1 = a % m;
  BigInt t0, t1 = 1;
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    BigInt q, r2;
    divmod(r0, r1, q, r2);
    // t2 = t0 - q * t1 (signed).
    const BigInt qt1 = q * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: t0 - q*t1 may change sign.
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (r0 != BigInt(1)) throw std::domain_error("mod_inverse: not invertible");
  if (t0_neg) return m - (t0 % m);
  return t0 % m;
}

BigInt BigInt::random_bits(Rng& rng, std::size_t bits) {
  if (bits == 0) throw std::invalid_argument("random_bits: bits must be >= 1");
  const std::size_t nbytes = (bits + 7) / 8;
  Bytes b = rng.bytes(nbytes);
  // Clear excess high bits, then force the top bit so the bit length is
  // exactly `bits`.
  const unsigned top_bits = static_cast<unsigned>(bits % 8 == 0 ? 8 : bits % 8);
  b[0] &= static_cast<std::uint8_t>(0xFF >> (8 - top_bits));
  b[0] |= static_cast<std::uint8_t>(1u << (top_bits - 1));
  return from_bytes_be(b);
}

BigInt BigInt::random_below(Rng& rng, const BigInt& bound) {
  if (bound.is_zero())
    throw std::invalid_argument("random_below: bound must be > 0");
  const std::size_t bits = bound.bit_length();
  const std::size_t nbytes = (bits + 7) / 8;
  const unsigned top_bits = static_cast<unsigned>(bits % 8 == 0 ? 8 : bits % 8);
  // Rejection sampling: mask to the bound's bit length, retry if >= bound.
  for (;;) {
    Bytes b = rng.bytes(nbytes);
    b[0] &= static_cast<std::uint8_t>(0xFF >> (8 - top_bits));
    BigInt candidate = from_bytes_be(b);
    if (candidate < bound) return candidate;
  }
}

}  // namespace mapsec::crypto
