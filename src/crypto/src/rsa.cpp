#include "mapsec/crypto/rsa.hpp"

#include <deque>
#include <optional>
#include <stdexcept>

#include "mapsec/crypto/batch_modexp.hpp"
#include "mapsec/crypto/mont_cache.hpp"
#include "mapsec/crypto/prime.hpp"
#include "mapsec/crypto/sha1.hpp"
#include "mapsec/crypto/sha256.hpp"

namespace mapsec::crypto {

namespace {

// Fetch the Montgomery engine for `m` from the cache when one is supplied,
// otherwise construct it into `local` (whose lifetime the caller owns).
// Either way the exponentiation code that follows is identical, so outputs
// and MontStats match bit-for-bit.
const Montgomery& mont_for(MontCache* cache, const BigInt& m,
                           std::optional<Montgomery>& local) {
  if (cache != nullptr) return cache->get(m);
  local.emplace(m);
  return *local;
}

}  // namespace

RsaKeyPair rsa_generate(Rng& rng, std::size_t bits) {
  if (bits < 64 || bits % 2 != 0)
    throw std::invalid_argument("rsa_generate: bits must be even and >= 64");
  const BigInt e(65537);
  for (;;) {
    const BigInt p = generate_prime(rng, bits / 2);
    BigInt q = generate_prime(rng, bits / 2);
    if (p == q) continue;
    const BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    const BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    if (BigInt::gcd(e, phi) != BigInt(1)) continue;
    const BigInt d = BigInt::mod_inverse(e, phi);

    RsaPrivateKey priv;
    priv.n = n;
    priv.e = e;
    priv.d = d;
    // Keep p > q so qinv = q^{-1} mod p is well-defined in the standard
    // Garner recombination below.
    if (p > q) {
      priv.p = p;
      priv.q = q;
    } else {
      priv.p = q;
      priv.q = p;
    }
    priv.dp = d % (priv.p - BigInt(1));
    priv.dq = d % (priv.q - BigInt(1));
    priv.qinv = BigInt::mod_inverse(priv.q, priv.p);
    return {priv.public_key(), priv};
  }
}

BigInt rsa_public_op(const RsaPublicKey& key, const BigInt& m,
                     MontCache* cache) {
  if (m >= key.n) throw std::invalid_argument("rsa_public_op: m >= n");
  std::optional<Montgomery> local;
  return mont_for(cache, key.n, local).exp(m, key.e);
}

BigInt rsa_private_op(const RsaPrivateKey& key, const BigInt& c,
                      MontStats* stats, MontCache* cache) {
  if (c >= key.n) throw std::invalid_argument("rsa_private_op: c >= n");
  std::optional<Montgomery> local;
  return mont_for(cache, key.n, local).exp(c, key.d, stats);
}

BigInt rsa_private_op_crt(const RsaPrivateKey& key, const BigInt& c,
                          MontStats* stats, MontCache* cache) {
  if (c >= key.n) throw std::invalid_argument("rsa_private_op_crt: c >= n");
  // Garner's recombination: m = m_q + q * (qinv * (m_p - m_q) mod p).
  std::optional<Montgomery> local_p, local_q;
  const BigInt mp = mont_for(cache, key.p, local_p).exp(c % key.p, key.dp,
                                                        stats);
  const BigInt mq = mont_for(cache, key.q, local_q).exp(c % key.q, key.dq,
                                                        stats);
  BigInt diff = mp >= mq ? mp - mq : key.p - ((mq - mp) % key.p);
  const BigInt h = (key.qinv * diff) % key.p;
  return mq + key.q * h;
}

std::vector<BigInt> rsa_private_op_crt_batch(
    const std::vector<RsaPrivateBatchOp>& ops, MontCache* cache) {
  // Two BatchModExp lanes per operation — the p- and q-halves of every key
  // interleave through one multi-exponentiation. Same validation, same
  // mont_for contexts, same Garner recombination as the sequential path,
  // so results and MontStats are bit-identical for any batch size.
  std::deque<Montgomery> locals;  // stable addresses across emplace_back
  std::vector<BatchModExp::Request> reqs;
  reqs.reserve(2 * ops.size());
  for (const RsaPrivateBatchOp& op : ops) {
    if (op.c >= op.key->n)
      throw std::invalid_argument("rsa_private_op_crt: c >= n");
    const Montgomery& mont_p =
        cache != nullptr ? cache->get(op.key->p) : locals.emplace_back(op.key->p);
    const Montgomery& mont_q =
        cache != nullptr ? cache->get(op.key->q) : locals.emplace_back(op.key->q);
    reqs.push_back({&mont_p, op.c % op.key->p, op.key->dp, op.stats});
    reqs.push_back({&mont_q, op.c % op.key->q, op.key->dq, op.stats});
  }
  const std::vector<BigInt> halves = BatchModExp::run(reqs);
  std::vector<BigInt> results;
  results.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const RsaPrivateKey& key = *ops[i].key;
    const BigInt& mp = halves[2 * i];
    const BigInt& mq = halves[2 * i + 1];
    BigInt diff = mp >= mq ? mp - mq : key.p - ((mq - mp) % key.p);
    const BigInt h = (key.qinv * diff) % key.p;
    results.push_back(mq + key.q * h);
  }
  return results;
}

BigInt rsa_private_op_crt_checked(const RsaPrivateKey& key, const BigInt& c) {
  const BigInt m = rsa_private_op_crt(key, c);
  // Shamir/Joye-style output check: verify with the cheap public
  // exponentiation before releasing the result.
  if (Montgomery(key.n).exp(m, key.e) != c)
    return rsa_private_op(key, c);  // fault detected: recompute safely
  return m;
}

BigInt rsa_private_op_blinded(const RsaPrivateKey& key, const BigInt& c,
                              Rng& rng, MontStats* stats) {
  if (c >= key.n) throw std::invalid_argument("rsa_private_op_blinded: c >= n");
  BigInt r;
  do {
    r = BigInt::random_below(rng, key.n);
  } while (r.is_zero() || BigInt::gcd(r, key.n) != BigInt(1));
  const Montgomery mont(key.n);
  const BigInt re = mont.exp(r, key.e);
  const BigInt blinded = (c * re) % key.n;
  const BigInt m_blinded = mont.exp(blinded, key.d, stats);
  return (m_blinded * BigInt::mod_inverse(r, key.n)) % key.n;
}

// ---- PKCS#1 v1.5 -----------------------------------------------------------

Bytes rsa_encrypt_pkcs1(const RsaPublicKey& key, ConstBytes message,
                        Rng& rng) {
  const std::size_t k = key.modulus_bytes();
  if (message.size() + 11 > k)
    throw std::invalid_argument("rsa_encrypt_pkcs1: message too long");
  // EM = 0x00 || 0x02 || PS (nonzero random) || 0x00 || M
  Bytes em(k);
  em[0] = 0x00;
  em[1] = 0x02;
  const std::size_t ps_len = k - 3 - message.size();
  for (std::size_t i = 0; i < ps_len; ++i) {
    std::uint8_t b;
    do {
      rng.fill({&b, 1});
    } while (b == 0);
    em[2 + i] = b;
  }
  em[2 + ps_len] = 0x00;
  std::copy(message.begin(), message.end(),
            em.begin() + static_cast<std::ptrdiff_t>(3 + ps_len));
  return rsa_public_op(key, BigInt::from_bytes_be(em)).to_bytes_be(k);
}

bool rsa_decrypt_pkcs1_prepare(const RsaPrivateKey& key, ConstBytes ciphertext,
                               BigInt* c) {
  if (ciphertext.size() != key.modulus_bytes()) return false;
  *c = BigInt::from_bytes_be(ciphertext);
  return *c < key.n;
}

std::optional<Bytes> rsa_decrypt_pkcs1_finish(const RsaPrivateKey& key,
                                              const BigInt& m) {
  const Bytes em = m.to_bytes_be(key.modulus_bytes());
  if (em[0] != 0x00 || em[1] != 0x02) return std::nullopt;
  std::size_t sep = 0;
  for (std::size_t i = 2; i < em.size(); ++i) {
    if (em[i] == 0x00) {
      sep = i;
      break;
    }
  }
  if (sep == 0 || sep < 10) return std::nullopt;  // PS must be >= 8 bytes
  return Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep + 1), em.end());
}

std::optional<Bytes> rsa_decrypt_pkcs1(const RsaPrivateKey& key,
                                       ConstBytes ciphertext,
                                       MontCache* cache) {
  BigInt c;
  if (!rsa_decrypt_pkcs1_prepare(key, ciphertext, &c)) return std::nullopt;
  return rsa_decrypt_pkcs1_finish(key,
                                  rsa_private_op_crt(key, c, nullptr, cache));
}

namespace {

// DER DigestInfo prefixes (RFC 8017 section 9.2 notes).
const Bytes kSha1Prefix = from_hex("3021300906052b0e03021a05000414");
const Bytes kSha256Prefix =
    from_hex("3031300d060960864801650304020105000420");

Bytes emsa_pkcs1(ConstBytes digest_info, std::size_t k) {
  if (digest_info.size() + 11 > k)
    throw std::invalid_argument("emsa_pkcs1: modulus too small");
  Bytes em(k, 0xFF);
  em[0] = 0x00;
  em[1] = 0x01;
  em[k - digest_info.size() - 1] = 0x00;
  std::copy(digest_info.begin(), digest_info.end(),
            em.end() - static_cast<std::ptrdiff_t>(digest_info.size()));
  return em;
}

Bytes sign_with_prefix(const RsaPrivateKey& key, ConstBytes prefix,
                       ConstBytes digest, MontCache* cache = nullptr) {
  const Bytes em = emsa_pkcs1(cat(prefix, digest), key.modulus_bytes());
  return rsa_private_op_crt(key, BigInt::from_bytes_be(em), nullptr, cache)
      .to_bytes_be(key.modulus_bytes());
}

bool verify_with_prefix(const RsaPublicKey& key, ConstBytes prefix,
                        ConstBytes digest, ConstBytes signature,
                        MontCache* cache = nullptr) {
  if (signature.size() != key.modulus_bytes()) return false;
  const BigInt s = BigInt::from_bytes_be(signature);
  if (s >= key.n) return false;
  const Bytes em =
      rsa_public_op(key, s, cache).to_bytes_be(key.modulus_bytes());
  const Bytes expected = emsa_pkcs1(cat(prefix, digest), key.modulus_bytes());
  return ct_equal(em, expected);
}

}  // namespace

Bytes rsa_sign_sha1(const RsaPrivateKey& key, ConstBytes message,
                    MontCache* cache) {
  return sign_with_prefix(key, kSha1Prefix, Sha1::hash(message), cache);
}

BigInt rsa_sign_sha1_prepare(const RsaPrivateKey& key, ConstBytes message) {
  const Bytes em = emsa_pkcs1(cat(kSha1Prefix, Sha1::hash(message)),
                              key.modulus_bytes());
  return BigInt::from_bytes_be(em);
}

Bytes rsa_sign_sha1_finish(const RsaPrivateKey& key, const BigInt& m) {
  return m.to_bytes_be(key.modulus_bytes());
}

bool rsa_verify_sha1(const RsaPublicKey& key, ConstBytes message,
                     ConstBytes signature, MontCache* cache) {
  return verify_with_prefix(key, kSha1Prefix, Sha1::hash(message), signature,
                            cache);
}

Bytes rsa_sign_sha256(const RsaPrivateKey& key, ConstBytes message) {
  return sign_with_prefix(key, kSha256Prefix, Sha256::hash(message));
}

bool rsa_verify_sha256(const RsaPublicKey& key, ConstBytes message,
                       ConstBytes signature) {
  return verify_with_prefix(key, kSha256Prefix, Sha256::hash(message),
                            signature);
}

}  // namespace mapsec::crypto
