#include "mapsec/crypto/rc2.hpp"

#include <stdexcept>

namespace mapsec::crypto {

namespace {

// RFC 2268 PITABLE (a fixed permutation of 0..255 derived from pi).
constexpr std::uint8_t kPi[256] = {
    0xd9, 0x78, 0xf9, 0xc4, 0x19, 0xdd, 0xb5, 0xed, 0x28, 0xe9, 0xfd, 0x79,
    0x4a, 0xa0, 0xd8, 0x9d, 0xc6, 0x7e, 0x37, 0x83, 0x2b, 0x76, 0x53, 0x8e,
    0x62, 0x4c, 0x64, 0x88, 0x44, 0x8b, 0xfb, 0xa2, 0x17, 0x9a, 0x59, 0xf5,
    0x87, 0xb3, 0x4f, 0x13, 0x61, 0x45, 0x6d, 0x8d, 0x09, 0x81, 0x7d, 0x32,
    0xbd, 0x8f, 0x40, 0xeb, 0x86, 0xb7, 0x7b, 0x0b, 0xf0, 0x95, 0x21, 0x22,
    0x5c, 0x6b, 0x4e, 0x82, 0x54, 0xd6, 0x65, 0x93, 0xce, 0x60, 0xb2, 0x1c,
    0x73, 0x56, 0xc0, 0x14, 0xa7, 0x8c, 0xf1, 0xdc, 0x12, 0x75, 0xca, 0x1f,
    0x3b, 0xbe, 0xe4, 0xd1, 0x42, 0x3d, 0xd4, 0x30, 0xa3, 0x3c, 0xb6, 0x26,
    0x6f, 0xbf, 0x0e, 0xda, 0x46, 0x69, 0x07, 0x57, 0x27, 0xf2, 0x1d, 0x9b,
    0xbc, 0x94, 0x43, 0x03, 0xf8, 0x11, 0xc7, 0xf6, 0x90, 0xef, 0x3e, 0xe7,
    0x06, 0xc3, 0xd5, 0x2f, 0xc8, 0x66, 0x1e, 0xd7, 0x08, 0xe8, 0xea, 0xde,
    0x80, 0x52, 0xee, 0xf7, 0x84, 0xaa, 0x72, 0xac, 0x35, 0x4d, 0x6a, 0x2a,
    0x96, 0x1a, 0xd2, 0x71, 0x5a, 0x15, 0x49, 0x74, 0x4b, 0x9f, 0xd0, 0x5e,
    0x04, 0x18, 0xa4, 0xec, 0xc2, 0xe0, 0x41, 0x6e, 0x0f, 0x51, 0xcb, 0xcc,
    0x24, 0x91, 0xaf, 0x50, 0xa1, 0xf4, 0x70, 0x39, 0x99, 0x7c, 0x3a, 0x85,
    0x23, 0xb8, 0xb4, 0x7a, 0xfc, 0x02, 0x36, 0x5b, 0x25, 0x55, 0x97, 0x31,
    0x2d, 0x5d, 0xfa, 0x98, 0xe3, 0x8a, 0x92, 0xae, 0x05, 0xdf, 0x29, 0x10,
    0x67, 0x6c, 0xba, 0xc9, 0xd3, 0x00, 0xe6, 0xcf, 0xe1, 0x9e, 0xa8, 0x2c,
    0x63, 0x16, 0x01, 0x3f, 0x58, 0xe2, 0x89, 0xa9, 0x0d, 0x38, 0x34, 0x1b,
    0xab, 0x33, 0xff, 0xb0, 0xbb, 0x48, 0x0c, 0x5f, 0xb9, 0xb1, 0xcd, 0x2e,
    0xc5, 0xf3, 0xdb, 0x47, 0xe5, 0xa5, 0x9c, 0x77, 0x0a, 0xa6, 0x20, 0x68,
    0xfe, 0x7f, 0xc1, 0xad};

std::uint16_t rotl16(std::uint16_t x, int n) {
  return static_cast<std::uint16_t>((x << n) | (x >> (16 - n)));
}

std::uint16_t rotr16(std::uint16_t x, int n) {
  return static_cast<std::uint16_t>((x >> n) | (x << (16 - n)));
}

constexpr int kMixShift[4] = {1, 2, 3, 5};

}  // namespace

Rc2::Rc2(ConstBytes key, int effective_bits) {
  const std::size_t t = key.size();
  if (t == 0 || t > 128)
    throw std::invalid_argument("RC2 key must be 1..128 bytes");
  if (effective_bits <= 0) effective_bits = static_cast<int>(t) * 8;

  std::array<std::uint8_t, 128> l{};
  for (std::size_t i = 0; i < t; ++i) l[i] = key[i];
  for (std::size_t i = t; i < 128; ++i)
    l[i] = kPi[static_cast<std::uint8_t>(l[i - 1] + l[i - t])];

  const int t8 = (effective_bits + 7) / 8;
  const std::uint8_t tm =
      static_cast<std::uint8_t>(255 >> (8 * t8 - effective_bits));
  l[static_cast<std::size_t>(128 - t8)] =
      kPi[l[static_cast<std::size_t>(128 - t8)] & tm];
  for (int i = 127 - t8; i >= 0; --i)
    l[static_cast<std::size_t>(i)] =
        kPi[l[static_cast<std::size_t>(i + 1)] ^
            l[static_cast<std::size_t>(i + t8)]];

  for (int i = 0; i < 64; ++i)
    k_[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(
        l[static_cast<std::size_t>(2 * i)] +
        (l[static_cast<std::size_t>(2 * i + 1)] << 8));
}

void Rc2::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  std::uint16_t r[4];
  for (int i = 0; i < 4; ++i)
    r[i] = static_cast<std::uint16_t>(in[2 * i] | (in[2 * i + 1] << 8));

  int j = 0;
  const auto mix = [&](int i) {
    r[i] = static_cast<std::uint16_t>(
        r[i] + k_[static_cast<std::size_t>(j)] +
        (r[(i + 3) % 4] & r[(i + 2) % 4]) +
        (static_cast<std::uint16_t>(~r[(i + 3) % 4]) & r[(i + 1) % 4]));
    ++j;
    r[i] = rotl16(r[i], kMixShift[i]);
  };
  const auto mash = [&](int i) {
    r[i] = static_cast<std::uint16_t>(r[i] + k_[r[(i + 3) % 4] & 63]);
  };

  for (int round = 0; round < 5; ++round)
    for (int i = 0; i < 4; ++i) mix(i);
  for (int i = 0; i < 4; ++i) mash(i);
  for (int round = 0; round < 6; ++round)
    for (int i = 0; i < 4; ++i) mix(i);
  for (int i = 0; i < 4; ++i) mash(i);
  for (int round = 0; round < 5; ++round)
    for (int i = 0; i < 4; ++i) mix(i);

  for (int i = 0; i < 4; ++i) {
    out[2 * i] = static_cast<std::uint8_t>(r[i]);
    out[2 * i + 1] = static_cast<std::uint8_t>(r[i] >> 8);
  }
}

void Rc2::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  std::uint16_t r[4];
  for (int i = 0; i < 4; ++i)
    r[i] = static_cast<std::uint16_t>(in[2 * i] | (in[2 * i + 1] << 8));

  int j = 63;
  const auto rmix = [&](int i) {
    r[i] = rotr16(r[i], kMixShift[i]);
    r[i] = static_cast<std::uint16_t>(
        r[i] - k_[static_cast<std::size_t>(j)] -
        (r[(i + 3) % 4] & r[(i + 2) % 4]) -
        (static_cast<std::uint16_t>(~r[(i + 3) % 4]) & r[(i + 1) % 4]));
    --j;
  };
  const auto rmash = [&](int i) {
    r[i] = static_cast<std::uint16_t>(r[i] - k_[r[(i + 3) % 4] & 63]);
  };

  for (int round = 0; round < 5; ++round)
    for (int i = 3; i >= 0; --i) rmix(i);
  for (int i = 3; i >= 0; --i) rmash(i);
  for (int round = 0; round < 6; ++round)
    for (int i = 3; i >= 0; --i) rmix(i);
  for (int i = 3; i >= 0; --i) rmash(i);
  for (int round = 0; round < 5; ++round)
    for (int i = 3; i >= 0; --i) rmix(i);

  for (int i = 0; i < 4; ++i) {
    out[2 * i] = static_cast<std::uint8_t>(r[i]);
    out[2 * i + 1] = static_cast<std::uint8_t>(r[i] >> 8);
  }
}

}  // namespace mapsec::crypto
