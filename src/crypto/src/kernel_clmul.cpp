// PCLMULQDQ CRC-32 backend: 128-bit carry-less-multiply folding over the
// reflected IEEE 802.3 polynomial. Four 16-byte lanes are folded 64 bytes
// at a stride (the constants are x^(512+32·i) mod P, bit-reflected — the
// same pair the Linux kernel's crc32-pclmul uses), then collapsed to one
// lane and folded 16 bytes at a time. Instead of a Barrett reduction the
// final 16-byte residue is streamed through the scalar table together
// with the tail — the fold invariant CRC(msg) = CRC(residue ‖ tail) makes
// that exact, and it keeps the scalar table as the single definition of
// the polynomial.
#include "kernels.hpp"

#if defined(__PCLMUL__) && defined(__SSE4_1__)

#include <immintrin.h>

namespace mapsec::crypto::dispatch {

namespace {

// x^544, x^480 (64-byte stride) and x^160, x^96 (16-byte stride), mod P,
// bit-reflected and shifted — the standard reflected CRC-32 fold pair.
constexpr std::uint64_t kFold64Lo = 0x0000000154442bd4ULL;
constexpr std::uint64_t kFold64Hi = 0x00000001c6e41596ULL;
constexpr std::uint64_t kFold16Lo = 0x00000001751997d0ULL;
constexpr std::uint64_t kFold16Hi = 0x00000000ccaa009eULL;

inline __m128i fold(__m128i x, __m128i k, __m128i next) {
  const __m128i lo = _mm_clmulepi64_si128(x, k, 0x00);
  const __m128i hi = _mm_clmulepi64_si128(x, k, 0x11);
  return _mm_xor_si128(_mm_xor_si128(lo, hi), next);
}

std::uint32_t crc32_pclmul(std::uint32_t raw, const std::uint8_t* data,
                           std::size_t len) {
  if (len < 64) return crc32_raw(raw, data, len);

  const __m128i k64 = _mm_set_epi64x(
      static_cast<long long>(kFold64Hi), static_cast<long long>(kFold64Lo));
  const __m128i k16 = _mm_set_epi64x(
      static_cast<long long>(kFold16Hi), static_cast<long long>(kFold16Lo));

  const __m128i* p = reinterpret_cast<const __m128i*>(data);
  // The running register XORs into the first four message bytes — the
  // same identity the byte-at-a-time table recurrence applies implicitly.
  __m128i x0 = _mm_xor_si128(_mm_loadu_si128(p),
                             _mm_cvtsi32_si128(static_cast<int>(raw)));
  __m128i x1 = _mm_loadu_si128(p + 1);
  __m128i x2 = _mm_loadu_si128(p + 2);
  __m128i x3 = _mm_loadu_si128(p + 3);
  p += 4;
  len -= 64;

  while (len >= 64) {
    x0 = fold(x0, k64, _mm_loadu_si128(p));
    x1 = fold(x1, k64, _mm_loadu_si128(p + 1));
    x2 = fold(x2, k64, _mm_loadu_si128(p + 2));
    x3 = fold(x3, k64, _mm_loadu_si128(p + 3));
    p += 4;
    len -= 64;
  }

  // Collapse the four lanes (each fold steps 16 bytes).
  __m128i x = fold(x0, k16, x1);
  x = fold(x, k16, x2);
  x = fold(x, k16, x3);

  while (len >= 16) {
    x = fold(x, k16, _mm_loadu_si128(p));
    ++p;
    len -= 16;
  }

  alignas(16) std::uint8_t residue[16];
  _mm_store_si128(reinterpret_cast<__m128i*>(residue), x);
  std::uint32_t crc = crc32_raw(0, residue, 16);
  return crc32_raw(crc, reinterpret_cast<const std::uint8_t*>(p), len);
}

}  // namespace

const Crc32Fn kCrc32Pclmul = crc32_pclmul;
const bool kHavePclmul = true;

}  // namespace mapsec::crypto::dispatch

#else

namespace mapsec::crypto::dispatch {
const Crc32Fn kCrc32Pclmul = nullptr;
const bool kHavePclmul = false;
}  // namespace mapsec::crypto::dispatch

#endif
