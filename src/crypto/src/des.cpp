#include "mapsec/crypto/des.hpp"

#include <stdexcept>

namespace mapsec::crypto {

namespace des_detail {

namespace {

// All tables use the FIPS 46-3 convention: bit 1 is the most significant
// bit of the value.

constexpr int kIP[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

constexpr int kFP[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

constexpr int kE[48] = {32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,
                        8,  9,  10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
                        16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
                        24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr int kP[32] = {16, 7, 20, 21, 29, 12, 28, 17, 1,  15, 23, 26,
                        5,  18, 31, 10, 2,  8,  24, 14, 32, 27, 3,  9,
                        19, 13, 30, 6,  22, 11, 4,  25};

constexpr int kPC1[56] = {57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34,
                          26, 18, 10, 2,  59, 51, 43, 35, 27, 19, 11, 3,
                          60, 52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7,
                          62, 54, 46, 38, 30, 22, 14, 6,  61, 53, 45, 37,
                          29, 21, 13, 5,  28, 20, 12, 4};

constexpr int kPC2[48] = {14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10,
                          23, 19, 12, 4,  26, 8,  16, 7,  27, 20, 13, 2,
                          41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
                          44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr int kShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1};

constexpr std::uint8_t kSbox[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8,  4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4,  1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

// Generic bit permutation: `table[i]` selects the table[i]-th bit
// (1 = MSB of an `in_bits`-wide value) for output bit i (MSB first).
template <int OutBits>
std::uint64_t permute(std::uint64_t in, const int* table, int in_bits) {
  std::uint64_t out = 0;
  for (int i = 0; i < OutBits; ++i) {
    const int src = table[i];
    const std::uint64_t bit = (in >> (in_bits - src)) & 1u;
    out = (out << 1) | bit;
  }
  return out;
}

std::uint32_t rot28(std::uint32_t v, int n) {
  return ((v << n) | (v >> (28 - n))) & 0x0FFFFFFFu;
}

}  // namespace

KeySchedule key_schedule(ConstBytes key8) {
  if (key8.size() != 8) throw std::invalid_argument("DES key must be 8 bytes");
  const std::uint64_t key = load_be64(key8.data());
  const std::uint64_t cd0 = permute<56>(key, kPC1, 64);
  std::uint32_t c = static_cast<std::uint32_t>(cd0 >> 28);
  std::uint32_t d = static_cast<std::uint32_t>(cd0 & 0x0FFFFFFFu);
  KeySchedule ks{};
  for (int round = 0; round < 16; ++round) {
    c = rot28(c, kShifts[round]);
    d = rot28(d, kShifts[round]);
    const std::uint64_t cd = (std::uint64_t{c} << 28) | d;
    ks[round] = permute<48>(cd, kPC2, 56);
  }
  return ks;
}

KeySchedule reverse(const KeySchedule& ks) {
  KeySchedule r{};
  for (int i = 0; i < 16; ++i) r[i] = ks[15 - i];
  return r;
}

std::uint64_t initial_permutation(std::uint64_t block) {
  return permute<64>(block, kIP, 64);
}

std::uint64_t final_permutation(std::uint64_t block) {
  return permute<64>(block, kFP, 64);
}

std::uint64_t expand(std::uint32_t r) { return permute<48>(r, kE, 32); }

std::uint8_t sbox(int sbox_index, std::uint8_t x6) {
  // Row = outer two bits, column = inner four; flatten to the 64-entry
  // layout above: index = row*16 + col.
  const int row = ((x6 >> 4) & 0x2) | (x6 & 0x1);
  const int col = (x6 >> 1) & 0xF;
  return kSbox[sbox_index][row * 16 + col];
}

std::array<std::uint8_t, 8> sbox_outputs(std::uint64_t x48) {
  std::array<std::uint8_t, 8> out{};
  for (int i = 0; i < 8; ++i) {
    const std::uint8_t chunk =
        static_cast<std::uint8_t>((x48 >> (42 - 6 * i)) & 0x3F);
    out[i] = sbox(i, chunk);
  }
  return out;
}

std::uint32_t permute_p(std::uint32_t x) {
  return static_cast<std::uint32_t>(permute<32>(x, kP, 32));
}

std::uint32_t feistel(std::uint32_t r, std::uint64_t subkey48) {
  const std::uint64_t x = expand(r) ^ subkey48;
  const auto s = sbox_outputs(x);
  std::uint32_t combined = 0;
  for (int i = 0; i < 8; ++i) combined = (combined << 4) | s[i];
  return permute_p(combined);
}

std::array<std::uint8_t, 8> subkey_chunks(std::uint64_t subkey48) {
  std::array<std::uint8_t, 8> out{};
  for (int i = 0; i < 8; ++i)
    out[i] = static_cast<std::uint8_t>((subkey48 >> (42 - 6 * i)) & 0x3F);
  return out;
}

Bytes key_from_cd(std::uint64_t cd) {
  // Invert PC-1: place the 56 key bits back at their original positions,
  // then set odd parity on every byte.
  std::uint64_t key = 0;
  for (int i = 0; i < 56; ++i) {
    const std::uint64_t bit = (cd >> (55 - i)) & 1u;
    key |= bit << (64 - kPC1[i]);
  }
  Bytes out(8);
  store_be64(out.data(), key);
  for (auto& b : out) {
    std::uint8_t v = b & 0xFE;
    int ones = 0;
    for (int k = 1; k < 8; ++k) ones += (v >> k) & 1;
    b = static_cast<std::uint8_t>(v | ((ones % 2 == 0) ? 1 : 0));
  }
  return out;
}

Bytes key_from_round1_subkey(std::uint64_t subkey48, std::uint8_t missing8) {
  // Round 1 rotates C and D left by one before PC-2, so the subkey bits
  // live in rot1(CD). PC-2 drops 8 of the 56 positions; `missing8`
  // enumerates them (bit 0 of missing8 -> first dropped position).
  static constexpr int kDropped[8] = {9, 18, 22, 25, 35, 38, 43, 54};
  std::uint64_t cd_rot = 0;
  for (int i = 0; i < 48; ++i) {
    const std::uint64_t bit = (subkey48 >> (47 - i)) & 1u;
    cd_rot |= bit << (56 - kPC2[i]);
  }
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t bit = (missing8 >> i) & 1u;
    cd_rot |= bit << (56 - kDropped[i]);
  }
  // Undo the round-1 single left rotation of each 28-bit half.
  std::uint32_t c = static_cast<std::uint32_t>(cd_rot >> 28);
  std::uint32_t d = static_cast<std::uint32_t>(cd_rot & 0x0FFFFFFFu);
  c = ((c >> 1) | (c << 27)) & 0x0FFFFFFFu;
  d = ((d >> 1) | (d << 27)) & 0x0FFFFFFFu;
  return key_from_cd((std::uint64_t{c} << 28) | d);
}

}  // namespace des_detail

namespace {

std::uint64_t des_rounds(std::uint64_t block,
                         const des_detail::KeySchedule& ks) {
  block = des_detail::initial_permutation(block);
  std::uint32_t l = static_cast<std::uint32_t>(block >> 32);
  std::uint32_t r = static_cast<std::uint32_t>(block);
  for (int round = 0; round < 16; ++round) {
    const std::uint32_t next_r = l ^ des_detail::feistel(r, ks[round]);
    l = r;
    r = next_r;
  }
  // Swap halves before the final permutation.
  const std::uint64_t pre = (std::uint64_t{r} << 32) | l;
  return des_detail::final_permutation(pre);
}

}  // namespace

Des::Des(ConstBytes key8)
    : enc_(des_detail::key_schedule(key8)), dec_(des_detail::reverse(enc_)) {}

void Des::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  store_be64(out, des_rounds(load_be64(in), enc_));
}

void Des::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  store_be64(out, des_rounds(load_be64(in), dec_));
}

namespace {
ConstBytes check_3des_key(ConstBytes key) {
  if (key.size() != 16 && key.size() != 24)
    throw std::invalid_argument("3DES key must be 16 or 24 bytes");
  return key;
}
}  // namespace

Des3::Des3(ConstBytes key)
    : k1_(check_3des_key(key).subspan(0, 8)),
      k2_(key.subspan(8, 8)),
      k3_(key.size() == 24 ? key.subspan(16, 8) : key.subspan(0, 8)) {}

void Des3::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  std::uint8_t tmp[8];
  k1_.encrypt_block(in, tmp);
  k2_.decrypt_block(tmp, tmp);
  k3_.encrypt_block(tmp, out);
}

void Des3::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  std::uint8_t tmp[8];
  k3_.decrypt_block(in, tmp);
  k2_.encrypt_block(tmp, tmp);
  k1_.decrypt_block(tmp, out);
}

}  // namespace mapsec::crypto
