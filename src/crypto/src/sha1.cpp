#include "mapsec/crypto/sha1.hpp"

#include <cstring>

#include "kernels.hpp"

namespace mapsec::crypto {

namespace dispatch {

// The pre-dispatch compression loop, now the scalar kernel.
void sha1_compress_scalar(std::uint32_t state[5], const std::uint8_t* blocks,
                          std::size_t nblocks) {
  while (nblocks--) {
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(blocks + 4 * i);
    for (int i = 16; i < 80; ++i)
      w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3],
                  e = state[4];
    for (int i = 0; i < 80; ++i) {
      std::uint32_t f, k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5A827999u;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1u;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDCu;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6u;
      }
      const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = rotl32(b, 30);
      b = a;
      a = tmp;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    blocks += 64;
  }
}

}  // namespace dispatch

void Sha1::reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buf_len_ = 0;
  total_len_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  dispatch::sha1_compress()(h_.data(), block, 1);
}

void Sha1::update(ConstBytes data) {
  total_len_ += data.size();
  std::size_t off = 0;
  if (buf_len_ > 0) {
    const std::size_t take = std::min(kBlockSize - buf_len_, data.size());
    std::memcpy(buf_.data() + buf_len_, data.data(), take);
    buf_len_ += take;
    off += take;
    if (buf_len_ == kBlockSize) {
      process_block(buf_.data());
      buf_len_ = 0;
    }
  }
  // All whole blocks in one dispatched call: the active backend keeps the
  // chaining state in registers across the entire span.
  const std::size_t nblocks = (data.size() - off) / kBlockSize;
  if (nblocks > 0) {
    dispatch::sha1_compress()(h_.data(), data.data() + off, nblocks);
    off += nblocks * kBlockSize;
  }
  if (off < data.size()) {
    std::memcpy(buf_.data(), data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

void Sha1::finish_into(std::uint8_t* out) {
  const std::uint64_t bit_len = total_len_ * 8;
  // Pad directly in the block buffer: 0x80, zeros to byte 56, be64 length.
  buf_[buf_len_++] = 0x80;
  if (buf_len_ > 56) {
    std::memset(buf_.data() + buf_len_, 0, kBlockSize - buf_len_);
    process_block(buf_.data());
    buf_len_ = 0;
  }
  std::memset(buf_.data() + buf_len_, 0, 56 - buf_len_);
  store_be64(buf_.data() + 56, bit_len);
  process_block(buf_.data());
  buf_len_ = 0;

  for (int i = 0; i < 5; ++i) store_be32(out + 4 * i, h_[i]);
}

Bytes Sha1::finish() {
  Bytes digest(kDigestSize);
  finish_into(digest.data());
  return digest;
}

Bytes Sha1::hash(ConstBytes data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

void Sha1::hash_into(ConstBytes data, std::uint8_t* out) {
  Sha1 h;
  h.update(data);
  h.finish_into(out);
}

}  // namespace mapsec::crypto
