// CTR mode, CBC-MAC, and CCM authenticated encryption (RFC 3610).
//
// The paper notes that WEP's weaknesses "are being addressed in newer
// wireless standards such as ... 802.11 enhancements"; the enhancement
// that shipped is 802.11i's AES-CCM (CCMP). Providing it alongside the
// deliberately-faithful WEP lets the framework demonstrate the
// before/after of link-layer security.
#pragma once

#include <optional>

#include "mapsec/crypto/cipher.hpp"

namespace mapsec::crypto {

/// Counter-mode keystream XOR (encryption == decryption). `counter_block`
/// is the initial block; it is incremented big-endian per block.
Bytes ctr_crypt(const BlockCipher& cipher, ConstBytes counter_block,
                ConstBytes data);

/// Raw CBC-MAC over `data` (zero IV, zero-padded to a whole block).
/// Secure only for fixed-length messages — CCM's B0 length prefix is what
/// makes it safe there.
Bytes cbc_mac(const BlockCipher& cipher, ConstBytes data);

/// CCM parameters: tag length M in {4,6,8,10,12,14,16}; length-field
/// width L = 2 (payloads up to 64 KiB, the 802.11 profile), so nonces are
/// 13 bytes.
constexpr std::size_t kCcmNonceLen = 13;

/// Seal: returns ciphertext || tag(M bytes). Requires a 16-byte-block
/// cipher (AES). Throws on bad nonce/tag sizes.
Bytes ccm_seal(const BlockCipher& cipher, ConstBytes nonce, ConstBytes aad,
               ConstBytes plaintext, std::size_t tag_len = 8);

/// Open: verifies the tag, returns the plaintext or nullopt.
std::optional<Bytes> ccm_open(const BlockCipher& cipher, ConstBytes nonce,
                              ConstBytes aad, ConstBytes sealed,
                              std::size_t tag_len = 8);

// ---- batched record transforms ---------------------------------------------
//
// Seal/open many records in one call: the CBC-MAC chains (serial within a
// message) and CTR streams interleave across records through the
// multi-buffer AES kernels. outputs[i] is byte-identical to the single-op
// call on ops[i] — lanes whose cipher is not AES, or when the multi-buffer
// backend is absent (forced scalar), simply take the single-op path.
// Spans in the op structs must stay valid for the duration of the call.

struct CcmSealOp {
  const BlockCipher* cipher = nullptr;
  ConstBytes nonce;
  ConstBytes aad;
  ConstBytes plaintext;
  std::size_t tag_len = 8;
};

std::vector<Bytes> ccm_seal_batch(const std::vector<CcmSealOp>& ops);

struct CcmOpenOp {
  const BlockCipher* cipher = nullptr;
  ConstBytes nonce;
  ConstBytes aad;
  ConstBytes sealed;
  std::size_t tag_len = 8;
};

std::vector<std::optional<Bytes>> ccm_open_batch(
    const std::vector<CcmOpenOp>& ops);

}  // namespace mapsec::crypto
