// A5/1 — the GSM air-interface stream cipher.
//
// The paper's Section 2 surveys bearer-technology security (GSM among
// them) and cites the published analyses [16, 24, 25] showing it "can be
// easily broken or compromised by serious hackers". A5/1 is the concrete
// object: three short LFSRs with majority clocking, a 64-bit key and a
// 22-bit frame number, generating 228 keystream bits per GSM frame (114
// downlink + 114 uplink). Implemented faithfully — including the
// weaknesses (key size, no integrity, frame-keyed keystream) that the
// paper's argument for higher-layer security rests on.
#pragma once

#include <array>
#include <cstdint>

#include "mapsec/crypto/bytes.hpp"

namespace mapsec::crypto {

/// A5/1 keystream generator for one GSM frame.
class A51 {
 public:
  /// `key` is the 64-bit session key (Kc), `frame` the 22-bit frame
  /// number. Keying performs the standard 64+22+100 clocking warm-up.
  A51(ConstBytes key8, std::uint32_t frame);

  /// Next keystream bit.
  int next_bit();

  /// `n` keystream bytes (MSB-first bit packing, the GSM convention).
  Bytes keystream(std::size_t n);

  /// The two 114-bit bursts of one frame: downlink then uplink, each
  /// packed MSB-first into 15 bytes (last 6 bits zero).
  struct FrameKeystream {
    Bytes downlink;  // 15 bytes, 114 bits used
    Bytes uplink;
  };
  static FrameKeystream frame_keystream(ConstBytes key8, std::uint32_t frame);

 private:
  void clock_all();       // warm-up clocking (no majority rule)
  void clock_majority();  // normal majority-rule clocking
  int output_bit() const;

  std::uint32_t r1_ = 0;  // 19 bits
  std::uint32_t r2_ = 0;  // 22 bits
  std::uint32_t r3_ = 0;  // 23 bits
};

/// XOR a payload with the frame keystream (encrypt == decrypt).
Bytes a51_crypt(ConstBytes key8, std::uint32_t frame, ConstBytes data);

}  // namespace mapsec::crypto
