// Type-erased block-cipher interface plus CBC mode with PKCS#7 padding.
//
// The protocol layer negotiates its bulk cipher at run time (Section 3.1's
// flexibility requirement: an SSL peer must be ready to run 3DES, RC4, RC2,
// DES or AES depending on the agreed suite), so it works against this
// interface rather than the concrete cipher classes.
#pragma once

#include <memory>
#include <span>
#include <type_traits>

#include "mapsec/crypto/aes.hpp"
#include "mapsec/crypto/bytes.hpp"
#include "mapsec/crypto/des.hpp"
#include "mapsec/crypto/rc2.hpp"

namespace mapsec::crypto {

/// Abstract block cipher over fixed-size blocks.
class BlockCipher {
 public:
  virtual ~BlockCipher() = default;
  virtual std::size_t block_size() const = 0;
  virtual void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const = 0;
  virtual void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const = 0;

  /// Downcast hook for the dispatch layer: when the wrapped cipher is AES
  /// the span-based modes (CTR, CBC-MAC, CBC decrypt) can hand the whole
  /// buffer to a hardware kernel instead of calling the virtual per-block
  /// interface. Non-AES ciphers return nullptr and take the generic path.
  virtual const Aes* as_aes() const { return nullptr; }
};

/// Wrap any concrete cipher (Des, Des3, Aes, Rc2) in the interface.
template <typename C>
class BlockCipherAdapter final : public BlockCipher {
 public:
  explicit BlockCipherAdapter(C cipher) : cipher_(std::move(cipher)) {}

  std::size_t block_size() const override { return C::kBlockSize; }
  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const override {
    cipher_.encrypt_block(in, out);
  }
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const override {
    cipher_.decrypt_block(in, out);
  }
  const Aes* as_aes() const override {
    if constexpr (std::is_same_v<C, Aes>) return &cipher_;
    return nullptr;
  }

 private:
  C cipher_;
};

/// Convenience factory: wrap a concrete cipher into a unique_ptr interface.
template <typename C>
std::unique_ptr<BlockCipher> make_block_cipher(C cipher) {
  return std::make_unique<BlockCipherAdapter<C>>(std::move(cipher));
}

/// Padded CBC output length for an `n`-byte plaintext (PKCS#7 always adds
/// at least one byte).
constexpr std::size_t cbc_padded_len(std::size_t n, std::size_t block_size) {
  return n + block_size - n % block_size;
}

/// CBC-encrypt `plaintext` with PKCS#7 padding. `iv` must equal the block
/// size. Output length is a whole number of blocks (always >= one block).
Bytes cbc_encrypt(const BlockCipher& cipher, ConstBytes iv, ConstBytes plaintext);

/// Zero-allocation CBC encryption: writes the padded ciphertext into
/// `out` (which must hold >= cbc_padded_len(plaintext.size(), bs) bytes)
/// and returns the number of bytes written. `out` may alias `plaintext`
/// exactly (same data pointer) for in-place operation.
std::size_t cbc_encrypt_into(const BlockCipher& cipher, ConstBytes iv,
                             ConstBytes plaintext, std::span<std::uint8_t> out);

/// CBC-decrypt and strip PKCS#7 padding. Throws std::runtime_error on a
/// malformed length or bad padding.
Bytes cbc_decrypt(const BlockCipher& cipher, ConstBytes iv, ConstBytes ciphertext);

/// Zero-allocation in-place CBC decryption over `data` (whole blocks).
/// Returns the plaintext length after stripping PKCS#7 padding; throws
/// std::runtime_error on a malformed length or bad padding (in which case
/// `data` contents are unspecified).
std::size_t cbc_decrypt_in_place(const BlockCipher& cipher, ConstBytes iv,
                                 std::span<std::uint8_t> data);

/// Raw ECB helpers (whole blocks only); used by tests and key wrapping.
Bytes ecb_encrypt(const BlockCipher& cipher, ConstBytes plaintext);
Bytes ecb_decrypt(const BlockCipher& cipher, ConstBytes ciphertext);

}  // namespace mapsec::crypto
