// Type-erased block-cipher interface plus CBC mode with PKCS#7 padding.
//
// The protocol layer negotiates its bulk cipher at run time (Section 3.1's
// flexibility requirement: an SSL peer must be ready to run 3DES, RC4, RC2,
// DES or AES depending on the agreed suite), so it works against this
// interface rather than the concrete cipher classes.
#pragma once

#include <memory>

#include "mapsec/crypto/aes.hpp"
#include "mapsec/crypto/bytes.hpp"
#include "mapsec/crypto/des.hpp"
#include "mapsec/crypto/rc2.hpp"

namespace mapsec::crypto {

/// Abstract block cipher over fixed-size blocks.
class BlockCipher {
 public:
  virtual ~BlockCipher() = default;
  virtual std::size_t block_size() const = 0;
  virtual void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const = 0;
  virtual void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const = 0;
};

/// Wrap any concrete cipher (Des, Des3, Aes, Rc2) in the interface.
template <typename C>
class BlockCipherAdapter final : public BlockCipher {
 public:
  explicit BlockCipherAdapter(C cipher) : cipher_(std::move(cipher)) {}

  std::size_t block_size() const override { return C::kBlockSize; }
  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const override {
    cipher_.encrypt_block(in, out);
  }
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const override {
    cipher_.decrypt_block(in, out);
  }

 private:
  C cipher_;
};

/// Convenience factory: wrap a concrete cipher into a unique_ptr interface.
template <typename C>
std::unique_ptr<BlockCipher> make_block_cipher(C cipher) {
  return std::make_unique<BlockCipherAdapter<C>>(std::move(cipher));
}

/// CBC-encrypt `plaintext` with PKCS#7 padding. `iv` must equal the block
/// size. Output length is a whole number of blocks (always >= one block).
Bytes cbc_encrypt(const BlockCipher& cipher, ConstBytes iv, ConstBytes plaintext);

/// CBC-decrypt and strip PKCS#7 padding. Throws std::runtime_error on a
/// malformed length or bad padding.
Bytes cbc_decrypt(const BlockCipher& cipher, ConstBytes iv, ConstBytes ciphertext);

/// Raw ECB helpers (whole blocks only); used by tests and key wrapping.
Bytes ecb_encrypt(const BlockCipher& cipher, ConstBytes plaintext);
Bytes ecb_decrypt(const BlockCipher& cipher, ConstBytes ciphertext);

}  // namespace mapsec::crypto
