// RC2 block cipher (RFC 2268). Listed in the paper's Section 3.1 among the
// symmetric ciphers an RSA-key-exchange SSL suite must support ("3-DES,
// RC4, RC2 or DES"), so the flexibility requirement pulls it in.
#pragma once

#include <array>
#include <cstdint>

#include "mapsec/crypto/bytes.hpp"

namespace mapsec::crypto {

/// RC2 over 8-byte blocks. `effective_bits` implements the RFC 2268 key
/// reduction used by export-grade SSL suites (default: 8 * key length,
/// i.e. no reduction).
class Rc2 {
 public:
  static constexpr std::size_t kBlockSize = 8;

  explicit Rc2(ConstBytes key, int effective_bits = 0);

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const;

 private:
  std::array<std::uint16_t, 64> k_{};  // expanded key, 16-bit words
};

}  // namespace mapsec::crypto
