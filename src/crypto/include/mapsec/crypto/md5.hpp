// MD5 (RFC 1321). Retained because SSL 3.0 / TLS cipher suites and the
// paper's flexibility analysis (Section 3.1) require MD5-based MACs for
// interoperability with the widest range of peers.
#pragma once

#include <array>
#include <cstdint>

#include "mapsec/crypto/bytes.hpp"

namespace mapsec::crypto {

/// Incremental MD5 with the same streaming interface as Sha1.
class Md5 {
 public:
  static constexpr std::size_t kDigestSize = 16;
  static constexpr std::size_t kBlockSize = 64;

  Md5() { reset(); }

  void reset();
  void update(ConstBytes data);
  Bytes finish();

  /// Allocation-free finalisation: writes kDigestSize bytes to `out`.
  void finish_into(std::uint8_t* out);

  /// One-shot digest of `data`.
  static Bytes hash(ConstBytes data);

  /// Allocation-free one-shot digest: writes kDigestSize bytes to `out`.
  static void hash_into(ConstBytes data, std::uint8_t* out);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> h_{};
  std::array<std::uint8_t, kBlockSize> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace mapsec::crypto
