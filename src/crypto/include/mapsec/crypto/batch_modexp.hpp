// Batched Montgomery multi-exponentiation.
//
// Interleaves N independent left-to-right square-and-multiply
// exponentiations so their CIOS multiplications run through the batched
// dispatch kernel (4 independent carry chains fill the multiplier ports
// a single chain leaves idle). Every lane executes EXACTLY the operation
// sequence Montgomery::exp() would — the same key-dependent
// square/multiply schedule, the same data-dependent extra reductions,
// the same MontStats accounting — so results and the timing-attack-
// visible statistics are bit-identical to the sequential path for any
// batch width, on any dispatch backend.
//
// Lanes need not share a modulus: any set of lanes whose moduli have the
// same internal limb width batches together (the p- and q-halves of
// different RSA keys ride in one batch). Lanes whose exponents run dry
// drop out and the batch raggedly narrows — correctness never depends on
// lanes staying in step.
#pragma once

#include <vector>

#include "mapsec/crypto/modexp.hpp"

namespace mapsec::crypto {

class BatchModExp {
 public:
  /// One exponentiation: base^exponent mod mont->modulus(). `mont` must
  /// outlive the run() call; `stats`, when set, receives exactly the
  /// counts mont->exp(base, exponent, stats) would add.
  struct Request {
    const Montgomery* mont = nullptr;
    BigInt base;
    BigInt exponent;
    MontStats* stats = nullptr;
  };

  /// Run every request to completion, interleaved. results[i] ==
  /// reqs[i].mont->exp(reqs[i].base, reqs[i].exponent) byte for byte.
  static std::vector<BigInt> run(const std::vector<Request>& reqs);
};

}  // namespace mapsec::crypto
