// CRC-32 (IEEE 802.3 polynomial, reflected). Used by the WEP encapsulation
// as its "integrity check value" — deliberately so: the paper's Section 2
// cites the WEP analyses [21-23] whose break exploits exactly the linearity
// of this checksum, and our attack::wep module demonstrates it.
#pragma once

#include <cstdint>

#include "mapsec/crypto/bytes.hpp"

namespace mapsec::crypto {

/// CRC-32 of `data` (init 0xFFFFFFFF, final XOR 0xFFFFFFFF — the
/// IEEE/zlib convention used by 802.11 WEP).
std::uint32_t crc32(ConstBytes data);

/// Continue a running CRC: pass the previous return value as `crc`.
std::uint32_t crc32_update(std::uint32_t crc, ConstBytes data);

}  // namespace mapsec::crypto
