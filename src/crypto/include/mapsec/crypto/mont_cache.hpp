// Per-key Montgomery context cache.
//
// Constructing a `Montgomery` engine is the expensive part of a modular
// exponentiation setup: R^2 mod n costs a full-width division, n' a Newton
// iteration, and the limb buffers a handful of allocations. The paper's
// accelerator argument (Section 4) assumes that per-key state is computed
// once and reused across the key's lifetime — a server performs thousands
// of private operations under the *same* RSA key, so recomputing R^2 per
// handshake is pure waste.
//
// `MontCache` maps a modulus to a lazily constructed `Montgomery` engine
// and hands back the same instance on every subsequent request. Outputs
// are bit-identical to an uncached run and MontStats timing-attack
// semantics are untouched: the cache only skips *context construction*,
// never a square, multiply, or extra reduction of the exponentiation
// itself (R stays 2^(32 k32) — a function of the modulus alone).
//
// Thread-safety: deliberately NONE. A `Montgomery` engine carries mutable
// scratch buffers and is single-threaded by contract, so the cache that
// owns it is too. Use one `MontCache` per thread (the OffloadEngine gives
// each worker its own; the server event loop keeps one for inline work).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "mapsec/crypto/bytes.hpp"
#include "mapsec/crypto/modexp.hpp"

namespace mapsec::crypto {

class MontCache {
 public:
  /// The Montgomery engine for `modulus` (odd, > 1), constructed on first
  /// request and reused afterwards. The reference stays valid until
  /// clear() or destruction — entries are never evicted.
  const Montgomery& get(const BigInt& modulus) {
    Bytes key = modulus.to_bytes_be();
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      return *it->second;
    }
    ++misses_;
    auto [pos, inserted] =
        map_.emplace(std::move(key), std::make_unique<Montgomery>(modulus));
    (void)inserted;
    return *pos->second;
  }

  std::size_t size() const { return map_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  void clear() {
    map_.clear();
    hits_ = misses_ = 0;
  }

 private:
  // unique_ptr values keep Montgomery references stable across rehashes.
  std::unordered_map<Bytes, std::unique_ptr<Montgomery>, BytesHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mapsec::crypto
