// Finite-field Diffie-Hellman key agreement. Listed alongside RSA in the
// paper's Section 4.1 crypto foundation ("public key operations (RSA/DH)").
#pragma once

#include "mapsec/crypto/bignum.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::crypto {

/// A DH group (prime modulus p, generator g).
struct DhGroup {
  BigInt p;
  BigInt g;

  /// RFC 2409 Oakley Group 2 (1024-bit MODP), the group 2003-era IPsec/IKE
  /// stacks actually deployed.
  static DhGroup oakley_group2();

  /// RFC 3526 group 14 (2048-bit MODP).
  static DhGroup modp2048();

  /// Small randomly generated safe-prime group for fast tests.
  static DhGroup generate(Rng& rng, std::size_t bits);
};

struct DhKeyPair {
  BigInt private_key;  // x
  BigInt public_key;   // g^x mod p
};

/// Generate an ephemeral key pair in `group`.
DhKeyPair dh_generate(const DhGroup& group, Rng& rng);

/// Compute the shared secret g^{xy} from our private key and the peer's
/// public value. Throws std::invalid_argument for degenerate peer values
/// (0, 1, p-1) — the classic small-subgroup hygiene check.
BigInt dh_shared_secret(const DhGroup& group, const BigInt& private_key,
                        const BigInt& peer_public);

}  // namespace mapsec::crypto
