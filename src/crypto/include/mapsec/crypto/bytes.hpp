// Byte-buffer utilities shared by every mapsec crypto primitive.
//
// All primitives in mapsec::crypto operate on `Bytes` (a plain
// std::vector<std::uint8_t>) or std::span views of it. This header also
// provides the constant-time comparison used wherever secrets are compared
// (MAC tags, PINs, boot-image digests) and explicit big-/little-endian
// load/store helpers so the wire formats are unambiguous.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mapsec::crypto {

/// Owning byte buffer used throughout the library.
using Bytes = std::vector<std::uint8_t>;

/// Read-only view over bytes; every primitive accepts this.
using ConstBytes = std::span<const std::uint8_t>;

/// Build a Bytes buffer from the raw characters of a string (no encoding).
Bytes to_bytes(std::string_view s);

/// Render bytes as lowercase hex.
std::string to_hex(ConstBytes data);

/// Parse lowercase/uppercase hex (whitespace ignored). Throws
/// std::invalid_argument on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Constant-time equality: runtime depends only on the lengths, never on
/// the contents. Use for every comparison involving secret material.
bool ct_equal(ConstBytes a, ConstBytes b);

/// Best-effort secure wipe (volatile stores so the compiler cannot elide).
void secure_wipe(std::uint8_t* data, std::size_t len);
void secure_wipe(Bytes& data);

/// Concatenate buffers.
Bytes cat(ConstBytes a, ConstBytes b);
Bytes cat(ConstBytes a, ConstBytes b, ConstBytes c);
Bytes cat(ConstBytes a, ConstBytes b, ConstBytes c, ConstBytes d);

/// XOR `src` into `dst` (lengths must match).
void xor_into(std::span<std::uint8_t> dst, ConstBytes src);

// ---- endian helpers -------------------------------------------------------

constexpr std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

constexpr void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

constexpr std::uint64_t load_be64(const std::uint8_t* p) {
  return (std::uint64_t{load_be32(p)} << 32) | load_be32(p + 4);
}

constexpr void store_be64(std::uint8_t* p, std::uint64_t v) {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

constexpr std::uint32_t load_le32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

constexpr void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

constexpr std::uint64_t load_le64(const std::uint8_t* p) {
  return std::uint64_t{load_le32(p)} | (std::uint64_t{load_le32(p + 4)} << 32);
}

constexpr void store_le64(std::uint8_t* p, std::uint64_t v) {
  store_le32(p, static_cast<std::uint32_t>(v));
  store_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

constexpr std::uint32_t rotl32(std::uint32_t x, unsigned n) {
  return (x << n) | (x >> (32 - n));
}

constexpr std::uint32_t rotr32(std::uint32_t x, unsigned n) {
  return (x >> n) | (x << (32 - n));
}

/// FNV-1a over a byte string; the hash functor for every hashed
/// byte-keyed index in the tree (MontCache moduli, the server's
/// session-id cache).
struct BytesHash {
  std::size_t operator()(const Bytes& b) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint8_t byte : b) {
      h ^= byte;
      h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace mapsec::crypto

