// SHA-256 (FIPS 180-2). Not one of the paper's 2003-era workload hashes,
// but required by the secure-platform layer (boot-image digests, HMAC-DRBG,
// key-store sealing) where a modern collision-resistant hash is the right
// engineering choice.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mapsec/crypto/bytes.hpp"

namespace mapsec::crypto {

/// Incremental SHA-256 with the same streaming interface as Sha1.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256() { reset(); }

  void reset();
  void update(ConstBytes data);
  Bytes finish();

  /// Allocation-free finalisation: writes kDigestSize bytes to `out`.
  void finish_into(std::uint8_t* out);

  /// One-shot digest of `data`.
  static Bytes hash(ConstBytes data);

  /// Allocation-free one-shot digest: writes kDigestSize bytes to `out`.
  static void hash_into(ConstBytes data, std::uint8_t* out);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_{};
  std::array<std::uint8_t, kBlockSize> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Multi-buffer one-shot hashing: digest every message independently,
/// with the compression rounds of all lanes interleaved (×8 AVX2 message
/// schedules when the dispatcher selects them, per-lane scalar
/// otherwise). digests[i] == Sha256::hash(msgs[i]) byte for byte — the
/// batching is an instruction-scheduling transform, never an arithmetic
/// one.
std::vector<Bytes> sha256_many(const std::vector<ConstBytes>& msgs);

}  // namespace mapsec::crypto
