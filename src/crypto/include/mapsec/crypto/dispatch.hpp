// Runtime-dispatched ISA crypto acceleration (Section 4.2.1's remedy,
// applied to this library itself).
//
// The paper's answer to the wireless security processing gap is
// architectural: instruction-set extensions and crypto accelerators that
// execute cipher kernels orders of magnitude faster than portable code.
// This layer is that argument made executable on the host: at first use
// it probes CPUID and routes each primitive's hot loop to the best
// instruction-set kernel the machine offers —
//
//   AES block / CTR / CBC-MAC / CBC-decrypt  -> AES-NI (4-wide pipelined)
//   SHA-1 / SHA-256 block compression        -> SHA-NI (else AVX2-assisted)
//   CRC-32                                   -> PCLMULQDQ folding
//   Montgomery CIOS inner loop (modexp)      -> BMI2/ADX unrolled
//
// — with the portable scalar implementations remaining as the guaranteed
// fallback on any CPU. Every kernel is bit-identical to its scalar
// counterpart (tests/crypto/dispatch_test.cpp sweeps randomized inputs
// across both backends), so acceleration never changes observable
// protocol behaviour, only its speed.
//
// Setting MAPSEC_FORCE_SCALAR=1 in the environment (or calling
// force_scalar(true)) pins every primitive to the scalar path; ci/check.sh
// runs the full test suite once in that mode so the fallback stays green.
#pragma once

#include <string>
#include <vector>

namespace mapsec::crypto::dispatch {

/// Raw CPUID feature probe (independent of any force-scalar override).
/// All fields are false on non-x86 builds.
struct CpuFeatures {
  bool sse2 = false;
  bool ssse3 = false;
  bool sse41 = false;
  bool aesni = false;
  bool pclmul = false;
  bool avx = false;    // includes the OS XSAVE/ymm-state check
  bool avx2 = false;
  bool bmi2 = false;
  bool adx = false;
  bool sha_ni = false;
};

/// CPUID probe, performed once per process.
const CpuFeatures& cpu_features();

/// True when the scalar fallback is pinned — either MAPSEC_FORCE_SCALAR
/// was set in the environment at first query, or force_scalar(true) was
/// called. Kernels consult this on every dispatch, so toggling it takes
/// effect immediately (the differential tests rely on that).
bool scalar_forced();

/// Programmatic override of the force-scalar state (tests/benches).
void force_scalar(bool on);

/// Which backend serves one primitive right now.
struct PrimitiveBackend {
  std::string primitive;  // e.g. "aes-block", "sha256", "modexp-cios"
  std::string backend;    // e.g. "aesni", "sha-ni", "pclmul", "scalar"
  bool accelerated = false;
};

/// Snapshot of the active dispatch decisions plus the feature probe —
/// the report benches embed in their output and platform::serving_gap's
/// accelerated-appliance pricing is calibrated against.
struct Capabilities {
  CpuFeatures features;
  bool forced_scalar = false;
  std::vector<PrimitiveBackend> primitives;
};

Capabilities capabilities();

/// One-line rendering, e.g.
/// "aes=aesni ctr=aesni-x4 cbc-mac=aesni cbc-dec=aesni-x4 sha1=sha-ni
///  sha256=sha-ni crc32=pclmul modexp=bmi2 (forced_scalar=off)".
std::string capabilities_summary();

}  // namespace mapsec::crypto::dispatch
