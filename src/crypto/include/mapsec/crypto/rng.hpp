// Random number generation.
//
// Figure 6 of the paper puts a "HW random number generator" at the core of
// the secure base architecture ("the foundation of secure crypto operations
// includes true random number generation"). We model that stack:
//
//   SimTrng   — a simulated hardware entropy source with the FIPS 140-2
//               continuous / monobit / poker health tests a real TRNG block
//               would run on-die.
//   HmacDrbg  — a deterministic SP 800-90A HMAC-DRBG (SHA-256) seeded from
//               the TRNG; this is what applications actually consume.
//
// Everything takes an `Rng&` so tests can inject fixed seeds and get
// reproducible keys, traces and protocol runs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "mapsec/crypto/bytes.hpp"

namespace mapsec::crypto {

/// Abstract random source.
class Rng {
 public:
  virtual ~Rng() = default;

  /// Fill `out` with random bytes.
  virtual void fill(std::span<std::uint8_t> out) = 0;

  /// `n` random bytes.
  Bytes bytes(std::size_t n);

  std::uint32_t next_u32();
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) via rejection sampling. bound > 0.
  std::uint64_t below(std::uint64_t bound);
};

/// Simulated hardware TRNG. Internally a xoshiro256** generator (standing
/// in for ring-oscillator jitter), wrapped with the health tests a real
/// TRNG macro performs; `healthy()` reports whether any test has tripped.
class SimTrng final : public Rng {
 public:
  explicit SimTrng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  void fill(std::span<std::uint8_t> out) override;

  /// FIPS 140-2 continuous test: no 32-bit block may repeat back-to-back.
  /// Monobit/poker statistics are accumulated over a sliding 20000-bit
  /// window. Returns false once any test has ever failed.
  bool healthy() const { return healthy_; }

  /// Inject a stuck-at fault: the source starts emitting a constant,
  /// which the health tests must detect. Models the environmental attacks
  /// of Section 3.4 (fault induction on the entropy source).
  void inject_stuck_fault(std::uint8_t stuck_value);

 private:
  std::uint64_t next_raw();
  void health_check(std::uint32_t block);

  std::uint64_t s_[4];
  bool stuck_ = false;
  std::uint8_t stuck_value_ = 0;
  bool healthy_ = true;
  bool have_prev_ = false;
  std::uint32_t prev_block_ = 0;
  // Sliding-window statistics (reset every kWindowBits).
  std::uint64_t window_bits_ = 0;
  std::uint64_t ones_ = 0;
  std::uint32_t nibble_counts_[16] = {};
};

/// SP 800-90A HMAC-DRBG with SHA-256.
class HmacDrbg final : public Rng {
 public:
  /// Instantiate from seed material (entropy || nonce || personalisation).
  explicit HmacDrbg(ConstBytes seed);

  /// Convenience: seed from a 64-bit value (tests, simulations).
  explicit HmacDrbg(std::uint64_t seed);

  void fill(std::span<std::uint8_t> out) override;

  /// Mix fresh entropy into the state.
  void reseed(ConstBytes entropy);

 private:
  void update(ConstBytes provided);

  Bytes key_;
  Bytes v_;
  std::uint64_t reseed_counter_ = 0;
};

}  // namespace mapsec::crypto
