// DES and Triple-DES (FIPS 46-3). The paper's Section 3.2 workload model is
// built around "3DES for encryption/decryption and SHA for message
// authentication"; DES/3DES are also the bit-permutation-heavy ciphers that
// motivate the ISA-extension discussion in Section 4.2.1.
//
// The `des_detail` namespace deliberately exposes the round structure
// (key schedule, expansion, S-boxes, permutations): the attack::dpa module
// targets the round-1 S-box outputs of this exact implementation, which is
// how differential power analysis is mounted against a real device.
#pragma once

#include <array>
#include <cstdint>

#include "mapsec/crypto/bytes.hpp"

namespace mapsec::crypto {

namespace des_detail {

/// 16 round subkeys, each 48 bits (in the low bits of the uint64_t).
using KeySchedule = std::array<std::uint64_t, 16>;

/// Derive the 16 round subkeys from an 8-byte key (parity bits ignored).
KeySchedule key_schedule(ConstBytes key8);

/// Reversed schedule, for decryption.
KeySchedule reverse(const KeySchedule& ks);

/// Initial permutation IP applied to a 64-bit block.
std::uint64_t initial_permutation(std::uint64_t block);

/// Final permutation IP^-1.
std::uint64_t final_permutation(std::uint64_t block);

/// Expansion E: 32-bit half-block -> 48 bits.
std::uint64_t expand(std::uint32_t r);

/// The eight 4-bit S-box outputs for a 48-bit value (already XORed with the
/// round subkey). out[0] is S1 (most significant 6 input bits).
std::array<std::uint8_t, 8> sbox_outputs(std::uint64_t x48);

/// Permutation P applied to the concatenated S-box outputs.
std::uint32_t permute_p(std::uint32_t x);

/// Full Feistel function f(R, K) = P(S(E(R) xor K)).
std::uint32_t feistel(std::uint32_t r, std::uint64_t subkey48);

/// Raw S-box lookup: sbox in [0,8), x6 is the 6-bit input. Used by the DPA
/// attack's hypothesis engine.
std::uint8_t sbox(int sbox_index, std::uint8_t x6);

/// The 48-bit round-1 subkey split into eight 6-bit chunks (S1 chunk
/// first). Exposed so tests/attacks can compare recovered key material.
std::array<std::uint8_t, 8> subkey_chunks(std::uint64_t subkey48);

/// Reconstruct a 64-bit DES key (with valid odd parity) from the 56-bit
/// key value laid out in PC-1 order `cd` (C in bits 55..28, D in 27..0).
Bytes key_from_cd(std::uint64_t cd);

/// Inverse of key_schedule round 1: given the 48-bit round-1 subkey and an
/// 8-bit guess for the PC-2-dropped key bits, rebuild the full 64-bit key.
Bytes key_from_round1_subkey(std::uint64_t subkey48, std::uint8_t missing8);

}  // namespace des_detail

/// Single DES over 8-byte blocks. Kept available (despite its 56-bit key)
/// because SSL 3.0 export suites and the paper's cipher inventory include
/// it; prefer Des3 in new designs.
class Des {
 public:
  static constexpr std::size_t kBlockSize = 8;
  static constexpr std::size_t kKeySize = 8;

  explicit Des(ConstBytes key8);

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const;

  const des_detail::KeySchedule& schedule() const { return enc_; }

 private:
  des_detail::KeySchedule enc_;
  des_detail::KeySchedule dec_;
};

/// Triple-DES EDE. Accepts a 24-byte key (3-key) or a 16-byte key
/// (2-key, K3 = K1).
class Des3 {
 public:
  static constexpr std::size_t kBlockSize = 8;
  static constexpr std::size_t kKeySize = 24;

  explicit Des3(ConstBytes key16or24);

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const;

 private:
  Des k1_, k2_, k3_;
};

}  // namespace mapsec::crypto
