// RC4 stream cipher. One of the SSL 3.0 bulk ciphers the paper's
// flexibility analysis (Section 3.1) requires, and the cipher inside the
// 802.11 WEP encapsulation whose key-scheduling weakness attack::wep
// exploits (FMS weak-IV attack).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "mapsec/crypto/bytes.hpp"

namespace mapsec::crypto {

/// RC4 keystream generator. Construct with a 1..256-byte key; each call to
/// `next_byte()` / `keystream()` advances the PRGA. Encryption and
/// decryption are the same operation (XOR with the keystream).
class Rc4 {
 public:
  explicit Rc4(ConstBytes key);

  /// Next keystream byte.
  std::uint8_t next_byte();

  /// Produce `n` keystream bytes.
  Bytes keystream(std::size_t n);

  /// Fill `out` with keystream bytes (no allocation).
  void keystream_into(std::span<std::uint8_t> out);

  /// XOR `data` with the keystream (in place semantics on a copy).
  Bytes process(ConstBytes data);

  /// XOR `data` with the keystream in place (zero-allocation hot path).
  void process_inplace(std::span<std::uint8_t> data);

  /// Drop `n` keystream bytes (RC4-drop[n] hardening).
  void skip(std::size_t n);

 private:
  std::array<std::uint8_t, 256> s_{};
  std::uint8_t i_ = 0;
  std::uint8_t j_ = 0;
};

}  // namespace mapsec::crypto
