// Modular exponentiation engines.
//
// Two faces of the same primitive, as Section 3.4 frames it: the "abstract
// mathematical object" and the implementation with "very specific
// characteristics". The Montgomery engine here exposes those
// characteristics deliberately:
//
//  * `exp()` is the classic left-to-right square-and-multiply whose
//    multiply is skipped for zero exponent bits, and whose Montgomery
//    reduction performs a data-dependent final subtraction ("extra
//    reduction"). `MontStats` counts both — this is the side channel the
//    attack::timing module exploits (Kocher [47]).
//  * `exp_ladder()` is the Montgomery-ladder countermeasure: one square and
//    one multiply per bit regardless of the key.
//  * RSA blinding (the other standard countermeasure) lives in rsa.hpp.
#pragma once

#include <cstdint>

#include "mapsec/crypto/bignum.hpp"

namespace mapsec::crypto {

/// Operation counts for one exponentiation; with a per-operation cycle
/// model these become the simulated execution time of the primitive.
struct MontStats {
  std::uint64_t squares = 0;
  std::uint64_t mults = 0;
  std::uint64_t extra_reductions = 0;

  MontStats& operator+=(const MontStats& o) {
    squares += o.squares;
    mults += o.mults;
    extra_reductions += o.extra_reductions;
    return *this;
  }
};

/// One step of an exponentiation's operation sequence. Squares and
/// multiplies have visibly different power profiles on real hardware, so
/// this sequence is what a single SPA trace shows the adversary.
enum class MontOp : std::uint8_t { kSquare, kMultiply };

/// Optional per-operation log of an exponentiation (SPA leakage model).
using MontOpSequence = std::vector<MontOp>;

/// Montgomery multiplication context for a fixed odd modulus.
///
/// The engine packs operands into raw 64-bit limb buffers normalized to
/// the modulus width once at entry; inner loops use 128-bit accumulation
/// and carry no per-iteration bounds checks or heap traffic (the CIOS
/// accumulator is a preallocated scratch buffer). Consequently a single
/// Montgomery instance is NOT safe for concurrent use from multiple
/// threads; construct one per thread.
class Montgomery {
 public:
  /// Modulus must be odd and > 1.
  explicit Montgomery(const BigInt& modulus);

  const BigInt& modulus() const { return n_; }

  BigInt to_mont(const BigInt& x) const;
  BigInt from_mont(const BigInt& x) const;

  /// Montgomery product of two values already in Montgomery form.
  /// If `stats` is provided, `mults` and (when the final conditional
  /// subtraction fires) `extra_reductions` are incremented.
  BigInt mul(const BigInt& a, const BigInt& b, MontStats* stats = nullptr) const;

  /// base^e mod n, left-to-right square-and-multiply. Key-dependent
  /// operation sequence — fast but leaky. `seq`, when provided, records
  /// the executed operation sequence (the SPA observable).
  BigInt exp(const BigInt& base, const BigInt& e, MontStats* stats = nullptr,
             MontOpSequence* seq = nullptr) const;

  /// base^e mod n via the Montgomery ladder: fixed operation sequence per
  /// bit (square+multiply always), the timing/SPA countermeasure.
  BigInt exp_ladder(const BigInt& base, const BigInt& e,
                    MontStats* stats = nullptr,
                    MontOpSequence* seq = nullptr) const;

  /// base^e mod n via 4-bit fixed windows: four squares and one multiply
  /// per window regardless of the exponent, with the window's multiplier
  /// chosen from the 16-entry table by a constant-time masked scan (no
  /// key-dependent table index reaches the memory system). The fast path
  /// that is also sequence-constant.
  BigInt exp_fixed_window(const BigInt& base, const BigInt& e,
                          MontStats* stats = nullptr) const;

 private:
  /// BatchModExp interleaves independent exponentiations over this
  /// engine's raw limb representation; it reuses the private packing /
  /// REDC-finish helpers so the batched path cannot diverge from exp().
  friend class BatchModExp;

  /// out = REDC(a * b), all pointers kw_ limbs, out distinct from a and b.
  void mul_raw(const std::uint64_t* a, const std::uint64_t* b,
               std::uint64_t* out, MontStats* stats) const;

  /// The final conditional subtraction + MontStats accounting applied to
  /// a pre-subtraction REDC accumulator t (kw+1 significant limbs).
  static void redc_finish(const std::uint64_t* t, const std::uint64_t* nw,
                          std::size_t kw, std::uint64_t* out,
                          MontStats* stats);

  void mul_raw_w64(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* out, MontStats* stats) const;
  void mul_raw_w32(const std::uint64_t* a, const std::uint64_t* b,
                   std::uint64_t* out, MontStats* stats) const;

  /// Pack x's 32-bit limbs into exactly kw_ 64-bit limbs at `out`,
  /// zero-padding (and truncating limbs above the modulus width, which
  /// cannot occur for in-range values).
  void normalize_into(const BigInt& x, std::uint64_t* out) const;

  BigInt from_raw(const std::uint64_t* limbs) const;

  BigInt n_;
  // R = 2^(32 k32) for a k32-limb modulus, always — the extra-reduction
  // statistics the timing attack consumes are a function of n/R, so R
  // must not depend on the internal word size. When k32 is even the
  // engine runs 64-bit limbs (kw_ = k32/2, the fast path); odd-limb
  // moduli fall back to a 32-bit radix carried in the same buffers
  // (kw_ = k32, each element < 2^32).
  bool radix32_;
  std::size_t kw_;       // internal limb count of n
  std::uint64_t n0inv_;  // -n^{-1} mod 2^64 (mod 2^32 in radix-32 mode)
  BigInt rr_;            // R^2 mod n
  BigInt one_mont_;      // R mod n
  std::vector<std::uint64_t> n_limbs_;    // n, exactly kw_ limbs
  std::vector<std::uint64_t> rr_limbs_;   // R^2 mod n, kw_ limbs
  std::vector<std::uint64_t> one_limbs_;  // the value 1, kw_ limbs
  mutable std::vector<std::uint64_t> scratch_;  // CIOS accumulator, kw_ + 2
  mutable std::vector<std::uint64_t> mul_buf_;  // operand staging, 3 * kw_
};

/// General modular exponentiation: Montgomery for odd moduli, plain
/// square-and-multiply with division-based reduction otherwise.
BigInt mod_exp(const BigInt& base, const BigInt& e, const BigInt& mod);

/// Constant-operation-sequence variant (Montgomery ladder when possible).
BigInt mod_exp_ct(const BigInt& base, const BigInt& e, const BigInt& mod);

}  // namespace mapsec::crypto
