// Modular exponentiation engines.
//
// Two faces of the same primitive, as Section 3.4 frames it: the "abstract
// mathematical object" and the implementation with "very specific
// characteristics". The Montgomery engine here exposes those
// characteristics deliberately:
//
//  * `exp()` is the classic left-to-right square-and-multiply whose
//    multiply is skipped for zero exponent bits, and whose Montgomery
//    reduction performs a data-dependent final subtraction ("extra
//    reduction"). `MontStats` counts both — this is the side channel the
//    attack::timing module exploits (Kocher [47]).
//  * `exp_ladder()` is the Montgomery-ladder countermeasure: one square and
//    one multiply per bit regardless of the key.
//  * RSA blinding (the other standard countermeasure) lives in rsa.hpp.
#pragma once

#include <cstdint>

#include "mapsec/crypto/bignum.hpp"

namespace mapsec::crypto {

/// Operation counts for one exponentiation; with a per-operation cycle
/// model these become the simulated execution time of the primitive.
struct MontStats {
  std::uint64_t squares = 0;
  std::uint64_t mults = 0;
  std::uint64_t extra_reductions = 0;

  MontStats& operator+=(const MontStats& o) {
    squares += o.squares;
    mults += o.mults;
    extra_reductions += o.extra_reductions;
    return *this;
  }
};

/// One step of an exponentiation's operation sequence. Squares and
/// multiplies have visibly different power profiles on real hardware, so
/// this sequence is what a single SPA trace shows the adversary.
enum class MontOp : std::uint8_t { kSquare, kMultiply };

/// Optional per-operation log of an exponentiation (SPA leakage model).
using MontOpSequence = std::vector<MontOp>;

/// Montgomery multiplication context for a fixed odd modulus.
class Montgomery {
 public:
  /// Modulus must be odd and > 1.
  explicit Montgomery(const BigInt& modulus);

  const BigInt& modulus() const { return n_; }

  BigInt to_mont(const BigInt& x) const;
  BigInt from_mont(const BigInt& x) const;

  /// Montgomery product of two values already in Montgomery form.
  /// If `stats` is provided, `mults` and (when the final conditional
  /// subtraction fires) `extra_reductions` are incremented.
  BigInt mul(const BigInt& a, const BigInt& b, MontStats* stats = nullptr) const;

  /// base^e mod n, left-to-right square-and-multiply. Key-dependent
  /// operation sequence — fast but leaky. `seq`, when provided, records
  /// the executed operation sequence (the SPA observable).
  BigInt exp(const BigInt& base, const BigInt& e, MontStats* stats = nullptr,
             MontOpSequence* seq = nullptr) const;

  /// base^e mod n via the Montgomery ladder: fixed operation sequence per
  /// bit (square+multiply always), the timing/SPA countermeasure.
  BigInt exp_ladder(const BigInt& base, const BigInt& e,
                    MontStats* stats = nullptr,
                    MontOpSequence* seq = nullptr) const;

 private:
  BigInt n_;
  std::size_t k_;        // limb count of n
  std::uint32_t n0inv_;  // -n^{-1} mod 2^32
  BigInt rr_;            // R^2 mod n, R = 2^(32k)
  BigInt one_mont_;      // R mod n
};

/// General modular exponentiation: Montgomery for odd moduli, plain
/// square-and-multiply with division-based reduction otherwise.
BigInt mod_exp(const BigInt& base, const BigInt& e, const BigInt& mod);

/// Constant-operation-sequence variant (Montgomery ladder when possible).
BigInt mod_exp_ct(const BigInt& base, const BigInt& e, const BigInt& mod);

}  // namespace mapsec::crypto
