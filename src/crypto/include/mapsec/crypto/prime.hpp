// Probabilistic prime generation and testing (Miller-Rabin) for RSA and DH
// parameter generation.
#pragma once

#include "mapsec/crypto/bignum.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::crypto {

/// Miller-Rabin primality test with `rounds` random bases. Error
/// probability <= 4^-rounds for odd composites.
bool is_probably_prime(const BigInt& n, Rng& rng, int rounds = 24);

/// Generate a random prime of exactly `bits` bits (top two bits set, so
/// products of two such primes have the full 2*bits length).
BigInt generate_prime(Rng& rng, std::size_t bits);

/// Generate a "safe prime" p = 2q + 1 with q prime. Used for DH group
/// generation. Noticeably slower than generate_prime; intended for small
/// test groups — production code uses the fixed RFC groups in dh.hpp.
BigInt generate_safe_prime(Rng& rng, std::size_t bits);

}  // namespace mapsec::crypto
