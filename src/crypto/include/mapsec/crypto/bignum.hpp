// Arbitrary-precision unsigned integers for the public-key algorithms the
// paper's workload analysis is built on (RSA connection set-up, RSA/DH key
// operations — Sections 3.2 and 4.1).
//
// Unsigned-only by design: every quantity in RSA/DH is a residue mod n.
// Subtraction of a larger value throws. Limbs are 32-bit, little-endian,
// normalized (no high zero limbs; zero is the empty limb vector).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mapsec/crypto/bytes.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::crypto {

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal convenience

  /// Big-endian byte-string conversions (the wire format of PKCS#1 and of
  /// every protocol message carrying a number).
  static BigInt from_bytes_be(ConstBytes bytes);
  Bytes to_bytes_be(std::size_t min_len = 0) const;

  static BigInt from_hex(std::string_view hex);
  std::string to_hex() const;
  std::string to_dec() const;

  bool is_zero() const { return w_.empty(); }
  bool is_odd() const { return !w_.empty() && (w_[0] & 1u); }
  bool is_even() const { return !is_odd(); }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;

  /// Bit i (0 = least significant).
  bool bit(std::size_t i) const;

  /// Low 64 bits (for small results).
  std::uint64_t to_u64() const;

  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);
  friend bool operator==(const BigInt& a, const BigInt& b) = default;

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  /// Throws std::underflow_error if b > a.
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  friend BigInt operator<<(const BigInt& a, std::size_t bits);
  friend BigInt operator>>(const BigInt& a, std::size_t bits);

  BigInt& operator+=(const BigInt& b) { return *this = *this + b; }
  BigInt& operator-=(const BigInt& b) { return *this = *this - b; }
  BigInt& operator*=(const BigInt& b) { return *this = *this * b; }
  BigInt& operator%=(const BigInt& b) { return *this = *this % b; }

  /// Quotient and remainder in one division. b must be nonzero.
  static void divmod(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r);

  static BigInt gcd(BigInt a, BigInt b);

  /// Modular inverse of a mod m (m > 1). Throws std::domain_error when
  /// gcd(a, m) != 1.
  static BigInt mod_inverse(const BigInt& a, const BigInt& m);

  /// Uniform value with exactly `bits` bits (MSB set). bits >= 1.
  static BigInt random_bits(Rng& rng, std::size_t bits);

  /// Uniform value in [0, bound). bound > 0.
  static BigInt random_below(Rng& rng, const BigInt& bound);

  /// Raw limb access (little-endian), for the Montgomery engine.
  const std::vector<std::uint32_t>& limbs() const { return w_; }
  static BigInt from_limbs(std::vector<std::uint32_t> limbs);

 private:
  void trim();

  std::vector<std::uint32_t> w_;
};

}  // namespace mapsec::crypto
