// HMAC (RFC 2104), templated over any mapsec hash with the
// update()/finish() streaming interface (Sha1, Md5, Sha256).
#pragma once

#include "mapsec/crypto/bytes.hpp"
#include "mapsec/crypto/md5.hpp"
#include "mapsec/crypto/sha1.hpp"
#include "mapsec/crypto/sha256.hpp"

namespace mapsec::crypto {

/// Incremental HMAC over hash `H`. Construct with the key, update() with
/// message bytes, finish() for the tag.
template <typename H>
class Hmac {
 public:
  static constexpr std::size_t kDigestSize = H::kDigestSize;
  static constexpr std::size_t kBlockSize = H::kBlockSize;

  explicit Hmac(ConstBytes key) {
    Bytes k(key.begin(), key.end());
    if (k.size() > kBlockSize) k = H::hash(k);
    k.resize(kBlockSize, 0);
    Bytes ipad(kBlockSize), opad(kBlockSize);
    for (std::size_t i = 0; i < kBlockSize; ++i) {
      ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
      opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
    }
    opad_ = std::move(opad);
    inner_.update(ipad);
    secure_wipe(k);
    secure_wipe(ipad);
  }

  void update(ConstBytes data) { inner_.update(data); }

  Bytes finish() {
    const Bytes inner_digest = inner_.finish();
    H outer;
    outer.update(opad_);
    outer.update(inner_digest);
    return outer.finish();
  }

  /// One-shot tag.
  static Bytes mac(ConstBytes key, ConstBytes data) {
    Hmac<H> h(key);
    h.update(data);
    return h.finish();
  }

  /// Constant-time verification of `tag` against HMAC(key, data).
  static bool verify(ConstBytes key, ConstBytes data, ConstBytes tag) {
    return ct_equal(mac(key, data), tag);
  }

 private:
  H inner_;
  Bytes opad_;
};

using HmacSha1 = Hmac<Sha1>;
using HmacMd5 = Hmac<Md5>;
using HmacSha256 = Hmac<Sha256>;

}  // namespace mapsec::crypto
