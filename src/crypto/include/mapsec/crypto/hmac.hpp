// HMAC (RFC 2104), templated over any mapsec hash with the
// update()/finish() streaming interface (Sha1, Md5, Sha256).
//
// The key schedule (ipad/opad absorption) is performed once at
// construction and cached as ready-to-clone hash states, so a context can
// be reset() and reused for many messages at zero per-message key cost —
// the inner loop shape PBKDF2, the TLS PRF and per-packet MACs rely on.
#pragma once

#include <array>

#include "mapsec/crypto/bytes.hpp"
#include "mapsec/crypto/md5.hpp"
#include "mapsec/crypto/sha1.hpp"
#include "mapsec/crypto/sha256.hpp"

namespace mapsec::crypto {

/// Incremental HMAC over hash `H`. Construct with the key, update() with
/// message bytes, finish() for the tag; reset() rewinds to the
/// just-keyed state without re-deriving the key schedule.
template <typename H>
class Hmac {
 public:
  static constexpr std::size_t kDigestSize = H::kDigestSize;
  static constexpr std::size_t kBlockSize = H::kBlockSize;

  explicit Hmac(ConstBytes key) {
    std::array<std::uint8_t, kBlockSize> k{};
    if (key.size() > kBlockSize) {
      H::hash_into(key, k.data());  // kDigestSize <= kBlockSize
    } else {
      for (std::size_t i = 0; i < key.size(); ++i) k[i] = key[i];
    }
    std::array<std::uint8_t, kBlockSize> pad;
    for (std::size_t i = 0; i < kBlockSize; ++i)
      pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    inner_init_.update(pad);
    for (std::size_t i = 0; i < kBlockSize; ++i)
      pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
    outer_init_.update(pad);
    secure_wipe(k.data(), k.size());
    secure_wipe(pad.data(), pad.size());
    inner_ = inner_init_;
  }

  /// Rewind to the freshly keyed state (no key re-derivation).
  void reset() { inner_ = inner_init_; }

  void update(ConstBytes data) { inner_.update(data); }

  /// Allocation-free finalisation: writes kDigestSize bytes to `tag`.
  /// The context must be reset() before reuse.
  void finish_into(std::uint8_t* tag) {
    std::array<std::uint8_t, kDigestSize> inner_digest;
    inner_.finish_into(inner_digest.data());
    H outer = outer_init_;
    outer.update(inner_digest);
    outer.finish_into(tag);
  }

  Bytes finish() {
    Bytes tag(kDigestSize);
    finish_into(tag.data());
    return tag;
  }

  /// One-shot tag.
  static Bytes mac(ConstBytes key, ConstBytes data) {
    Hmac<H> h(key);
    h.update(data);
    return h.finish();
  }

  /// Constant-time verification of `tag` against HMAC(key, data).
  static bool verify(ConstBytes key, ConstBytes data, ConstBytes tag) {
    return ct_equal(mac(key, data), tag);
  }

 private:
  H inner_init_;  // state after absorbing key ^ ipad
  H outer_init_;  // state after absorbing key ^ opad
  H inner_;       // running state for the current message
};

using HmacSha1 = Hmac<Sha1>;
using HmacMd5 = Hmac<Md5>;
using HmacSha256 = Hmac<Sha256>;

}  // namespace mapsec::crypto
