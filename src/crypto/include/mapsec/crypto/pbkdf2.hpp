// PBKDF2 (RFC 2898 / PKCS #5 v2.0).
//
// The bridge between Section 2's "user identification" and "secure
// storage" concerns: a human PIN or passphrase must be stretched into a
// key before it can seal anything, with an iteration count tuned to the
// handset's MIPS budget (another place the Section 3.2 processing gap
// bites — the same count that slows an attacker slows the device).
#pragma once

#include <cstdint>

#include "mapsec/crypto/bytes.hpp"

namespace mapsec::crypto {

/// PBKDF2-HMAC-SHA1. `iterations` >= 1; `dk_len` any length.
Bytes pbkdf2_hmac_sha1(ConstBytes password, ConstBytes salt,
                       std::uint32_t iterations, std::size_t dk_len);

/// PBKDF2-HMAC-SHA256 (for the secure-platform layer).
Bytes pbkdf2_hmac_sha256(ConstBytes password, ConstBytes salt,
                         std::uint32_t iterations, std::size_t dk_len);

/// Iteration count that takes roughly `budget_ms` on a processor rated
/// `mips` (from the measured per-iteration cost of ~2 SHA-1 compressions
/// ≈ `instr_per_iteration` instructions). The tuning knob a handset
/// vendor actually turns.
std::uint32_t pbkdf2_iterations_for_budget(double mips, double budget_ms,
                                           double instr_per_iteration = 3000);

}  // namespace mapsec::crypto
