// AES-128/192/256 (FIPS 197). The paper's Figure 2 highlights the June 2002
// TLS revision that added AES as the DES replacement; Section 4.1 lists AES
// among the algorithms a mobile crypto foundation must accelerate.
//
// The implementation is the classic 32-bit T-table formulation: SubBytes,
// ShiftRows and MixColumns fused into four 1 KiB lookup tables, one table
// read and one XOR per state byte per round. Key schedules (encryption and
// the InvMixColumns-transformed decryption schedule) are expanded once at
// construction into fixed arrays, so bulk encryption performs no heap
// traffic at all.
//
// `aes_detail` exposes the S-box so the DPA attack module can build
// hypothesis tables against the real implementation.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "mapsec/crypto/bytes.hpp"

namespace mapsec::crypto {

namespace aes_detail {

/// Forward S-box lookup (SubBytes).
std::uint8_t sbox(std::uint8_t x);

/// Inverse S-box lookup.
std::uint8_t inv_sbox(std::uint8_t x);

/// GF(2^8) multiply by x (the `xtime` primitive).
std::uint8_t xtime(std::uint8_t x);

/// General GF(2^8) multiplication (AES polynomial x^8+x^4+x^3+x+1).
std::uint8_t gmul(std::uint8_t a, std::uint8_t b);

}  // namespace aes_detail

/// AES block cipher over 16-byte blocks; key may be 16, 24 or 32 bytes.
/// encrypt_block/decrypt_block accept in == out (in-place operation).
class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  explicit Aes(ConstBytes key);

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const;

  /// Number of rounds (10/12/14 for 128/192/256-bit keys).
  int rounds() const { return rounds_; }

  /// Encryption round keys as 4-byte words (4*(rounds+1) words).
  std::span<const std::uint32_t> round_keys() const {
    return {rk_.data(), 4 * (static_cast<std::size_t>(rounds_) + 1)};
  }

  /// Decryption round keys (equivalent inverse cipher layout: reversed
  /// round order, inner keys InvMixColumns-transformed).
  std::span<const std::uint32_t> dec_round_keys() const {
    return {rkd_.data(), 4 * (static_cast<std::size_t>(rounds_) + 1)};
  }

  /// The same schedules serialized big-endian, 16 bytes per round key —
  /// the layout hardware AES round instructions load directly. Used by
  /// the crypto::dispatch kernels.
  const std::uint8_t* round_key_bytes() const { return rkb_.data(); }
  const std::uint8_t* dec_round_key_bytes() const { return rkdb_.data(); }

 private:
  static constexpr std::size_t kMaxRkWords = 60;  // 4 * (14 + 1)

  int rounds_;
  std::array<std::uint32_t, kMaxRkWords> rk_{};   // encryption schedule
  std::array<std::uint32_t, kMaxRkWords> rkd_{};  // decryption schedule
  std::array<std::uint8_t, 4 * kMaxRkWords> rkb_{};   // rk_ serialized
  std::array<std::uint8_t, 4 * kMaxRkWords> rkdb_{};  // rkd_ serialized
};

}  // namespace mapsec::crypto
