// RSA: key generation, raw operations, PKCS#1 v1.5 encryption and
// signatures.
//
// RSA is the paper's reference public-key workload: "RSA based connection
// set-ups performed in the client/server handshake phase of the SSL
// protocol" dominate the latency axis of the Figure 3 gap analysis, and
// the RSA-CRT implementation is the canonical fault-attack target of
// Section 3.4. Both private-operation strategies are provided:
//
//   * plain  — single exponentiation mod n,
//   * CRT    — two half-size exponentiations recombined (the ~4x speedup
//              every constrained device uses, and the Boneh-DeMillo-Lipton
//              attack surface demonstrated in attack::fault).
//
// Blinding (`RsaBlinding`) is the timing countermeasure of Kocher [47].
#pragma once

#include <optional>
#include <vector>

#include "mapsec/crypto/bignum.hpp"
#include "mapsec/crypto/modexp.hpp"
#include "mapsec/crypto/rng.hpp"

namespace mapsec::crypto {

class MontCache;  // mont_cache.hpp — per-key Montgomery context cache

struct RsaPublicKey {
  BigInt n;
  BigInt e;

  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
};

struct RsaPrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;
  // CRT components.
  BigInt p, q, dp, dq, qinv;

  RsaPublicKey public_key() const { return {n, e}; }
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generate an RSA key of `bits` modulus bits (public exponent 65537).
RsaKeyPair rsa_generate(Rng& rng, std::size_t bits);

/// Raw public operation m^e mod n. Every operation below accepts an
/// optional `MontCache`: when provided, the per-modulus Montgomery
/// context (R^2, n', limb buffers) is fetched from the cache instead of
/// rebuilt, which removes the dominant fixed cost of repeated same-key
/// operations. Outputs and MontStats are bit-identical either way.
BigInt rsa_public_op(const RsaPublicKey& key, const BigInt& m,
                     MontCache* cache = nullptr);

/// Raw private operation c^d mod n, single full-length exponentiation.
/// `stats`, when provided, accumulates the Montgomery operation counts
/// (the simulated-time hook used by platform models and timing attacks).
BigInt rsa_private_op(const RsaPrivateKey& key, const BigInt& c,
                      MontStats* stats = nullptr, MontCache* cache = nullptr);

/// Raw private operation using the Chinese Remainder Theorem (two
/// half-length exponentiations + recombination).
BigInt rsa_private_op_crt(const RsaPrivateKey& key, const BigInt& c,
                          MontStats* stats = nullptr,
                          MontCache* cache = nullptr);

// ---- batched private operations --------------------------------------------

/// One CRT private operation in a batch. `key` must outlive the call;
/// `stats`, when set, receives exactly what rsa_private_op_crt would add.
struct RsaPrivateBatchOp {
  const RsaPrivateKey* key = nullptr;
  BigInt c;
  MontStats* stats = nullptr;
};

/// Run every operation through one interleaved multi-exponentiation (the
/// p- and q-halves of all keys ride in a single BatchModExp). results[i]
/// == rsa_private_op_crt(*ops[i].key, ops[i].c, ops[i].stats, cache)
/// byte for byte, including MontStats, for any batch size and backend.
std::vector<BigInt> rsa_private_op_crt_batch(
    const std::vector<RsaPrivateBatchOp>& ops, MontCache* cache = nullptr);

/// CRT private operation with verification countermeasure: recomputes the
/// public operation and falls back to the slow path if the result is
/// inconsistent (defeats the single-fault attack of Section 3.4).
BigInt rsa_private_op_crt_checked(const RsaPrivateKey& key, const BigInt& c);

/// Message blinding for the private operation: computes
/// (c * r^e)^d * r^{-1} mod n with fresh random r, so the exponentiation
/// input is unpredictable to a timing adversary.
BigInt rsa_private_op_blinded(const RsaPrivateKey& key, const BigInt& c,
                              Rng& rng, MontStats* stats = nullptr);

// ---- PKCS#1 v1.5 -----------------------------------------------------------

/// Encrypt `message` (<= modulus_bytes - 11) under PKCS#1 v1.5 type-2
/// padding with random nonzero filler.
Bytes rsa_encrypt_pkcs1(const RsaPublicKey& key, ConstBytes message, Rng& rng);

/// Decrypt; returns std::nullopt on any padding failure (callers must not
/// reveal which step failed — Bleichenbacher discipline).
std::optional<Bytes> rsa_decrypt_pkcs1(const RsaPrivateKey& key,
                                       ConstBytes ciphertext,
                                       MontCache* cache = nullptr);

/// Decrypt split around the private operation so callers can batch it.
/// prepare() validates the ciphertext and extracts the integer to
/// exponentiate (false means the sequential path would return nullopt
/// without a private op); finish() applies the padding parse to
/// m = c^d mod n. rsa_decrypt_pkcs1 is exactly prepare + crt + finish,
/// so the single and batched paths share every byte of logic.
bool rsa_decrypt_pkcs1_prepare(const RsaPrivateKey& key, ConstBytes ciphertext,
                               BigInt* c);
std::optional<Bytes> rsa_decrypt_pkcs1_finish(const RsaPrivateKey& key,
                                              const BigInt& m);

/// Sign a SHA-1 digest with PKCS#1 v1.5 type-1 padding (DigestInfo for
/// SHA-1).
Bytes rsa_sign_sha1(const RsaPrivateKey& key, ConstBytes message,
                    MontCache* cache = nullptr);

/// Signing split the same way: prepare() computes the EMSA-PKCS1 padded
/// digest integer, finish() serializes the private-op result.
BigInt rsa_sign_sha1_prepare(const RsaPrivateKey& key, ConstBytes message);
Bytes rsa_sign_sha1_finish(const RsaPrivateKey& key, const BigInt& m);

/// Verify a SHA-1 PKCS#1 v1.5 signature.
bool rsa_verify_sha1(const RsaPublicKey& key, ConstBytes message,
                     ConstBytes signature, MontCache* cache = nullptr);

/// SHA-256 variants used by the secure-boot chain.
Bytes rsa_sign_sha256(const RsaPrivateKey& key, ConstBytes message);
bool rsa_verify_sha256(const RsaPublicKey& key, ConstBytes message,
                       ConstBytes signature);

}  // namespace mapsec::crypto
