// SHA-1 (FIPS 180-1). The message-authentication hash named throughout the
// paper's workload analysis ("3DES for encryption and SHA for message
// authentication", Section 3.2).
#pragma once

#include <array>
#include <cstdint>

#include "mapsec/crypto/bytes.hpp"

namespace mapsec::crypto {

/// Incremental SHA-1. Streaming interface: update() any number of times,
/// then finish() once. `hash()` is the one-shot convenience.
class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;

  Sha1() { reset(); }

  /// Re-initialise to the empty-message state.
  void reset();

  /// Absorb more message bytes.
  void update(ConstBytes data);

  /// Finalise and return the 20-byte digest. The object must be reset()
  /// before reuse.
  Bytes finish();

  /// Allocation-free finalisation: writes kDigestSize bytes to `out`.
  void finish_into(std::uint8_t* out);

  /// One-shot digest of `data`.
  static Bytes hash(ConstBytes data);

  /// Allocation-free one-shot digest: writes kDigestSize bytes to `out`.
  static void hash_into(ConstBytes data, std::uint8_t* out);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_{};
  std::array<std::uint8_t, kBlockSize> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace mapsec::crypto
