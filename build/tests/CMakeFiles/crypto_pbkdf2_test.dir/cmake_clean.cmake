file(REMOVE_RECURSE
  "CMakeFiles/crypto_pbkdf2_test.dir/crypto/pbkdf2_test.cpp.o"
  "CMakeFiles/crypto_pbkdf2_test.dir/crypto/pbkdf2_test.cpp.o.d"
  "crypto_pbkdf2_test"
  "crypto_pbkdf2_test.pdb"
  "crypto_pbkdf2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_pbkdf2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
