# Empty dependencies file for crypto_pbkdf2_test.
# This may be replaced when dependencies are built.
