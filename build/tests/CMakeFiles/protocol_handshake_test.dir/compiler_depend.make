# Empty compiler generated dependencies file for protocol_handshake_test.
# This may be replaced when dependencies are built.
