file(REMOVE_RECURSE
  "CMakeFiles/protocol_handshake_test.dir/protocol/handshake_test.cpp.o"
  "CMakeFiles/protocol_handshake_test.dir/protocol/handshake_test.cpp.o.d"
  "protocol_handshake_test"
  "protocol_handshake_test.pdb"
  "protocol_handshake_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_handshake_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
