# Empty dependencies file for crypto_cipher_test.
# This may be replaced when dependencies are built.
