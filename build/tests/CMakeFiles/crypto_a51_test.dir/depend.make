# Empty dependencies file for crypto_a51_test.
# This may be replaced when dependencies are built.
