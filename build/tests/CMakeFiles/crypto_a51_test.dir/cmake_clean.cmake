file(REMOVE_RECURSE
  "CMakeFiles/crypto_a51_test.dir/crypto/a51_test.cpp.o"
  "CMakeFiles/crypto_a51_test.dir/crypto/a51_test.cpp.o.d"
  "crypto_a51_test"
  "crypto_a51_test.pdb"
  "crypto_a51_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_a51_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
