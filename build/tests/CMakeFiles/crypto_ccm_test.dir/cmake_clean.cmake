file(REMOVE_RECURSE
  "CMakeFiles/crypto_ccm_test.dir/crypto/ccm_test.cpp.o"
  "CMakeFiles/crypto_ccm_test.dir/crypto/ccm_test.cpp.o.d"
  "crypto_ccm_test"
  "crypto_ccm_test.pdb"
  "crypto_ccm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_ccm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
