# Empty dependencies file for crypto_ccm_test.
# This may be replaced when dependencies are built.
