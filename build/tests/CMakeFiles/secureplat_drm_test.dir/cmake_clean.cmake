file(REMOVE_RECURSE
  "CMakeFiles/secureplat_drm_test.dir/secureplat/drm_test.cpp.o"
  "CMakeFiles/secureplat_drm_test.dir/secureplat/drm_test.cpp.o.d"
  "secureplat_drm_test"
  "secureplat_drm_test.pdb"
  "secureplat_drm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secureplat_drm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
