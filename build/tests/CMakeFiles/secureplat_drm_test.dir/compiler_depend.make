# Empty compiler generated dependencies file for secureplat_drm_test.
# This may be replaced when dependencies are built.
