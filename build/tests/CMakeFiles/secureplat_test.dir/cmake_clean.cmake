file(REMOVE_RECURSE
  "CMakeFiles/secureplat_test.dir/secureplat/secureplat_test.cpp.o"
  "CMakeFiles/secureplat_test.dir/secureplat/secureplat_test.cpp.o.d"
  "secureplat_test"
  "secureplat_test.pdb"
  "secureplat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secureplat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
