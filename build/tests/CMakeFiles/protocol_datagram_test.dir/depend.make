# Empty dependencies file for protocol_datagram_test.
# This may be replaced when dependencies are built.
