file(REMOVE_RECURSE
  "CMakeFiles/protocol_datagram_test.dir/protocol/datagram_test.cpp.o"
  "CMakeFiles/protocol_datagram_test.dir/protocol/datagram_test.cpp.o.d"
  "protocol_datagram_test"
  "protocol_datagram_test.pdb"
  "protocol_datagram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_datagram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
