file(REMOVE_RECURSE
  "CMakeFiles/protocol_cert_test.dir/protocol/cert_test.cpp.o"
  "CMakeFiles/protocol_cert_test.dir/protocol/cert_test.cpp.o.d"
  "protocol_cert_test"
  "protocol_cert_test.pdb"
  "protocol_cert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_cert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
