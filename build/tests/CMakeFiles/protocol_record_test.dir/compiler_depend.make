# Empty compiler generated dependencies file for protocol_record_test.
# This may be replaced when dependencies are built.
