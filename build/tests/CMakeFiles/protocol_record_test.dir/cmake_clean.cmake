file(REMOVE_RECURSE
  "CMakeFiles/protocol_record_test.dir/protocol/record_test.cpp.o"
  "CMakeFiles/protocol_record_test.dir/protocol/record_test.cpp.o.d"
  "protocol_record_test"
  "protocol_record_test.pdb"
  "protocol_record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
