file(REMOVE_RECURSE
  "CMakeFiles/protocol_bearer_test.dir/protocol/bearer_test.cpp.o"
  "CMakeFiles/protocol_bearer_test.dir/protocol/bearer_test.cpp.o.d"
  "protocol_bearer_test"
  "protocol_bearer_test.pdb"
  "protocol_bearer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_bearer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
