# Empty dependencies file for protocol_bearer_test.
# This may be replaced when dependencies are built.
