file(REMOVE_RECURSE
  "CMakeFiles/protocol_wep_esp_test.dir/protocol/wep_esp_test.cpp.o"
  "CMakeFiles/protocol_wep_esp_test.dir/protocol/wep_esp_test.cpp.o.d"
  "protocol_wep_esp_test"
  "protocol_wep_esp_test.pdb"
  "protocol_wep_esp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_wep_esp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
