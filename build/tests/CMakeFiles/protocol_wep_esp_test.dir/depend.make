# Empty dependencies file for protocol_wep_esp_test.
# This may be replaced when dependencies are built.
