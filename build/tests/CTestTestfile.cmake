# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/crypto_hash_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_cipher_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_bignum_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_rsa_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_rng_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_dh_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_record_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_cert_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_handshake_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_wep_esp_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/secureplat_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/secureplat_drm_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_ccm_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_a51_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_bearer_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_pbkdf2_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_datagram_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
