
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/src/a51.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/a51.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/a51.cpp.o.d"
  "/root/repo/src/crypto/src/aes.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/aes.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/aes.cpp.o.d"
  "/root/repo/src/crypto/src/bignum.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/bignum.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/bignum.cpp.o.d"
  "/root/repo/src/crypto/src/bytes.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/bytes.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/bytes.cpp.o.d"
  "/root/repo/src/crypto/src/ccm.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/ccm.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/ccm.cpp.o.d"
  "/root/repo/src/crypto/src/cipher.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/cipher.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/cipher.cpp.o.d"
  "/root/repo/src/crypto/src/crc32.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/crc32.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/crc32.cpp.o.d"
  "/root/repo/src/crypto/src/des.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/des.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/des.cpp.o.d"
  "/root/repo/src/crypto/src/dh.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/dh.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/dh.cpp.o.d"
  "/root/repo/src/crypto/src/md5.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/md5.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/md5.cpp.o.d"
  "/root/repo/src/crypto/src/modexp.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/modexp.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/modexp.cpp.o.d"
  "/root/repo/src/crypto/src/pbkdf2.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/pbkdf2.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/pbkdf2.cpp.o.d"
  "/root/repo/src/crypto/src/prime.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/prime.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/prime.cpp.o.d"
  "/root/repo/src/crypto/src/rc2.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/rc2.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/rc2.cpp.o.d"
  "/root/repo/src/crypto/src/rc4.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/rc4.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/rc4.cpp.o.d"
  "/root/repo/src/crypto/src/rng.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/rng.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/rng.cpp.o.d"
  "/root/repo/src/crypto/src/rsa.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/rsa.cpp.o.d"
  "/root/repo/src/crypto/src/sha1.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/sha1.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/sha1.cpp.o.d"
  "/root/repo/src/crypto/src/sha256.cpp" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/mapsec_crypto.dir/src/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
