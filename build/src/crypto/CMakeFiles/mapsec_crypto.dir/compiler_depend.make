# Empty compiler generated dependencies file for mapsec_crypto.
# This may be replaced when dependencies are built.
