file(REMOVE_RECURSE
  "libmapsec_crypto.a"
)
