# Empty compiler generated dependencies file for mapsec_protocol.
# This may be replaced when dependencies are built.
