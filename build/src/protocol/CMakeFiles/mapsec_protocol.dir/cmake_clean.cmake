file(REMOVE_RECURSE
  "CMakeFiles/mapsec_protocol.dir/src/bearer.cpp.o"
  "CMakeFiles/mapsec_protocol.dir/src/bearer.cpp.o.d"
  "CMakeFiles/mapsec_protocol.dir/src/ccmp.cpp.o"
  "CMakeFiles/mapsec_protocol.dir/src/ccmp.cpp.o.d"
  "CMakeFiles/mapsec_protocol.dir/src/cert.cpp.o"
  "CMakeFiles/mapsec_protocol.dir/src/cert.cpp.o.d"
  "CMakeFiles/mapsec_protocol.dir/src/datagram.cpp.o"
  "CMakeFiles/mapsec_protocol.dir/src/datagram.cpp.o.d"
  "CMakeFiles/mapsec_protocol.dir/src/esp.cpp.o"
  "CMakeFiles/mapsec_protocol.dir/src/esp.cpp.o.d"
  "CMakeFiles/mapsec_protocol.dir/src/evolution.cpp.o"
  "CMakeFiles/mapsec_protocol.dir/src/evolution.cpp.o.d"
  "CMakeFiles/mapsec_protocol.dir/src/handshake.cpp.o"
  "CMakeFiles/mapsec_protocol.dir/src/handshake.cpp.o.d"
  "CMakeFiles/mapsec_protocol.dir/src/prf.cpp.o"
  "CMakeFiles/mapsec_protocol.dir/src/prf.cpp.o.d"
  "CMakeFiles/mapsec_protocol.dir/src/record.cpp.o"
  "CMakeFiles/mapsec_protocol.dir/src/record.cpp.o.d"
  "CMakeFiles/mapsec_protocol.dir/src/suites.cpp.o"
  "CMakeFiles/mapsec_protocol.dir/src/suites.cpp.o.d"
  "CMakeFiles/mapsec_protocol.dir/src/wep.cpp.o"
  "CMakeFiles/mapsec_protocol.dir/src/wep.cpp.o.d"
  "libmapsec_protocol.a"
  "libmapsec_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapsec_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
