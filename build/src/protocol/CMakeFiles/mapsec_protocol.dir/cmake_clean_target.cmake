file(REMOVE_RECURSE
  "libmapsec_protocol.a"
)
