
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/src/bearer.cpp" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/bearer.cpp.o" "gcc" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/bearer.cpp.o.d"
  "/root/repo/src/protocol/src/ccmp.cpp" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/ccmp.cpp.o" "gcc" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/ccmp.cpp.o.d"
  "/root/repo/src/protocol/src/cert.cpp" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/cert.cpp.o" "gcc" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/cert.cpp.o.d"
  "/root/repo/src/protocol/src/datagram.cpp" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/datagram.cpp.o" "gcc" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/datagram.cpp.o.d"
  "/root/repo/src/protocol/src/esp.cpp" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/esp.cpp.o" "gcc" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/esp.cpp.o.d"
  "/root/repo/src/protocol/src/evolution.cpp" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/evolution.cpp.o" "gcc" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/evolution.cpp.o.d"
  "/root/repo/src/protocol/src/handshake.cpp" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/handshake.cpp.o" "gcc" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/handshake.cpp.o.d"
  "/root/repo/src/protocol/src/prf.cpp" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/prf.cpp.o" "gcc" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/prf.cpp.o.d"
  "/root/repo/src/protocol/src/record.cpp" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/record.cpp.o" "gcc" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/record.cpp.o.d"
  "/root/repo/src/protocol/src/suites.cpp" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/suites.cpp.o" "gcc" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/suites.cpp.o.d"
  "/root/repo/src/protocol/src/wep.cpp" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/wep.cpp.o" "gcc" "src/protocol/CMakeFiles/mapsec_protocol.dir/src/wep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/mapsec_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
