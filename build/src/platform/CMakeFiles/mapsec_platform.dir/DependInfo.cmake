
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/src/accelerator.cpp" "src/platform/CMakeFiles/mapsec_platform.dir/src/accelerator.cpp.o" "gcc" "src/platform/CMakeFiles/mapsec_platform.dir/src/accelerator.cpp.o.d"
  "/root/repo/src/platform/src/energy.cpp" "src/platform/CMakeFiles/mapsec_platform.dir/src/energy.cpp.o" "gcc" "src/platform/CMakeFiles/mapsec_platform.dir/src/energy.cpp.o.d"
  "/root/repo/src/platform/src/gap.cpp" "src/platform/CMakeFiles/mapsec_platform.dir/src/gap.cpp.o" "gcc" "src/platform/CMakeFiles/mapsec_platform.dir/src/gap.cpp.o.d"
  "/root/repo/src/platform/src/processor.cpp" "src/platform/CMakeFiles/mapsec_platform.dir/src/processor.cpp.o" "gcc" "src/platform/CMakeFiles/mapsec_platform.dir/src/processor.cpp.o.d"
  "/root/repo/src/platform/src/workload.cpp" "src/platform/CMakeFiles/mapsec_platform.dir/src/workload.cpp.o" "gcc" "src/platform/CMakeFiles/mapsec_platform.dir/src/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
