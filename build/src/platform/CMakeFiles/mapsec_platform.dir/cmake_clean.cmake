file(REMOVE_RECURSE
  "CMakeFiles/mapsec_platform.dir/src/accelerator.cpp.o"
  "CMakeFiles/mapsec_platform.dir/src/accelerator.cpp.o.d"
  "CMakeFiles/mapsec_platform.dir/src/energy.cpp.o"
  "CMakeFiles/mapsec_platform.dir/src/energy.cpp.o.d"
  "CMakeFiles/mapsec_platform.dir/src/gap.cpp.o"
  "CMakeFiles/mapsec_platform.dir/src/gap.cpp.o.d"
  "CMakeFiles/mapsec_platform.dir/src/processor.cpp.o"
  "CMakeFiles/mapsec_platform.dir/src/processor.cpp.o.d"
  "CMakeFiles/mapsec_platform.dir/src/workload.cpp.o"
  "CMakeFiles/mapsec_platform.dir/src/workload.cpp.o.d"
  "libmapsec_platform.a"
  "libmapsec_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapsec_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
