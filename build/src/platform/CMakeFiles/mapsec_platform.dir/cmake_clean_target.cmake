file(REMOVE_RECURSE
  "libmapsec_platform.a"
)
