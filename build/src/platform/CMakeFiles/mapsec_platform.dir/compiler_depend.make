# Empty compiler generated dependencies file for mapsec_platform.
# This may be replaced when dependencies are built.
