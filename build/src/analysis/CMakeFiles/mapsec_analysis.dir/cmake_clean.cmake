file(REMOVE_RECURSE
  "CMakeFiles/mapsec_analysis.dir/src/csv.cpp.o"
  "CMakeFiles/mapsec_analysis.dir/src/csv.cpp.o.d"
  "CMakeFiles/mapsec_analysis.dir/src/report.cpp.o"
  "CMakeFiles/mapsec_analysis.dir/src/report.cpp.o.d"
  "CMakeFiles/mapsec_analysis.dir/src/table.cpp.o"
  "CMakeFiles/mapsec_analysis.dir/src/table.cpp.o.d"
  "libmapsec_analysis.a"
  "libmapsec_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapsec_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
