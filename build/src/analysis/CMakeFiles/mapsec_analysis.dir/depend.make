# Empty dependencies file for mapsec_analysis.
# This may be replaced when dependencies are built.
