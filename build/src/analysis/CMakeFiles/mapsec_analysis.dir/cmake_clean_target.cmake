file(REMOVE_RECURSE
  "libmapsec_analysis.a"
)
