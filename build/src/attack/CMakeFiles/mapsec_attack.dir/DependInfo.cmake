
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/src/bleichenbacher.cpp" "src/attack/CMakeFiles/mapsec_attack.dir/src/bleichenbacher.cpp.o" "gcc" "src/attack/CMakeFiles/mapsec_attack.dir/src/bleichenbacher.cpp.o.d"
  "/root/repo/src/attack/src/cbc_iv.cpp" "src/attack/CMakeFiles/mapsec_attack.dir/src/cbc_iv.cpp.o" "gcc" "src/attack/CMakeFiles/mapsec_attack.dir/src/cbc_iv.cpp.o.d"
  "/root/repo/src/attack/src/dpa.cpp" "src/attack/CMakeFiles/mapsec_attack.dir/src/dpa.cpp.o" "gcc" "src/attack/CMakeFiles/mapsec_attack.dir/src/dpa.cpp.o.d"
  "/root/repo/src/attack/src/fault.cpp" "src/attack/CMakeFiles/mapsec_attack.dir/src/fault.cpp.o" "gcc" "src/attack/CMakeFiles/mapsec_attack.dir/src/fault.cpp.o.d"
  "/root/repo/src/attack/src/noise.cpp" "src/attack/CMakeFiles/mapsec_attack.dir/src/noise.cpp.o" "gcc" "src/attack/CMakeFiles/mapsec_attack.dir/src/noise.cpp.o.d"
  "/root/repo/src/attack/src/spa.cpp" "src/attack/CMakeFiles/mapsec_attack.dir/src/spa.cpp.o" "gcc" "src/attack/CMakeFiles/mapsec_attack.dir/src/spa.cpp.o.d"
  "/root/repo/src/attack/src/timing.cpp" "src/attack/CMakeFiles/mapsec_attack.dir/src/timing.cpp.o" "gcc" "src/attack/CMakeFiles/mapsec_attack.dir/src/timing.cpp.o.d"
  "/root/repo/src/attack/src/wep_attack.cpp" "src/attack/CMakeFiles/mapsec_attack.dir/src/wep_attack.cpp.o" "gcc" "src/attack/CMakeFiles/mapsec_attack.dir/src/wep_attack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/mapsec_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/mapsec_protocol.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
