file(REMOVE_RECURSE
  "libmapsec_attack.a"
)
