# Empty dependencies file for mapsec_attack.
# This may be replaced when dependencies are built.
