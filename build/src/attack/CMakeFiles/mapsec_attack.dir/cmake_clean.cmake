file(REMOVE_RECURSE
  "CMakeFiles/mapsec_attack.dir/src/bleichenbacher.cpp.o"
  "CMakeFiles/mapsec_attack.dir/src/bleichenbacher.cpp.o.d"
  "CMakeFiles/mapsec_attack.dir/src/cbc_iv.cpp.o"
  "CMakeFiles/mapsec_attack.dir/src/cbc_iv.cpp.o.d"
  "CMakeFiles/mapsec_attack.dir/src/dpa.cpp.o"
  "CMakeFiles/mapsec_attack.dir/src/dpa.cpp.o.d"
  "CMakeFiles/mapsec_attack.dir/src/fault.cpp.o"
  "CMakeFiles/mapsec_attack.dir/src/fault.cpp.o.d"
  "CMakeFiles/mapsec_attack.dir/src/noise.cpp.o"
  "CMakeFiles/mapsec_attack.dir/src/noise.cpp.o.d"
  "CMakeFiles/mapsec_attack.dir/src/spa.cpp.o"
  "CMakeFiles/mapsec_attack.dir/src/spa.cpp.o.d"
  "CMakeFiles/mapsec_attack.dir/src/timing.cpp.o"
  "CMakeFiles/mapsec_attack.dir/src/timing.cpp.o.d"
  "CMakeFiles/mapsec_attack.dir/src/wep_attack.cpp.o"
  "CMakeFiles/mapsec_attack.dir/src/wep_attack.cpp.o.d"
  "libmapsec_attack.a"
  "libmapsec_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapsec_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
