# CMake generated Testfile for 
# Source directory: /root/repo/src/secureplat
# Build directory: /root/repo/build/src/secureplat
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
