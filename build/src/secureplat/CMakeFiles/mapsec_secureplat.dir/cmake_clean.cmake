file(REMOVE_RECURSE
  "CMakeFiles/mapsec_secureplat.dir/src/app_installer.cpp.o"
  "CMakeFiles/mapsec_secureplat.dir/src/app_installer.cpp.o.d"
  "CMakeFiles/mapsec_secureplat.dir/src/drm.cpp.o"
  "CMakeFiles/mapsec_secureplat.dir/src/drm.cpp.o.d"
  "CMakeFiles/mapsec_secureplat.dir/src/keystore.cpp.o"
  "CMakeFiles/mapsec_secureplat.dir/src/keystore.cpp.o.d"
  "CMakeFiles/mapsec_secureplat.dir/src/secure_boot.cpp.o"
  "CMakeFiles/mapsec_secureplat.dir/src/secure_boot.cpp.o.d"
  "CMakeFiles/mapsec_secureplat.dir/src/secure_world.cpp.o"
  "CMakeFiles/mapsec_secureplat.dir/src/secure_world.cpp.o.d"
  "CMakeFiles/mapsec_secureplat.dir/src/user_auth.cpp.o"
  "CMakeFiles/mapsec_secureplat.dir/src/user_auth.cpp.o.d"
  "libmapsec_secureplat.a"
  "libmapsec_secureplat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapsec_secureplat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
