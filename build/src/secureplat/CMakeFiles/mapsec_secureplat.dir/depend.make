# Empty dependencies file for mapsec_secureplat.
# This may be replaced when dependencies are built.
