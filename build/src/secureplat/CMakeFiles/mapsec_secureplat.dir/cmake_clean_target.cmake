file(REMOVE_RECURSE
  "libmapsec_secureplat.a"
)
