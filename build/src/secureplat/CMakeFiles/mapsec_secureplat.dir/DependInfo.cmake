
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/secureplat/src/app_installer.cpp" "src/secureplat/CMakeFiles/mapsec_secureplat.dir/src/app_installer.cpp.o" "gcc" "src/secureplat/CMakeFiles/mapsec_secureplat.dir/src/app_installer.cpp.o.d"
  "/root/repo/src/secureplat/src/drm.cpp" "src/secureplat/CMakeFiles/mapsec_secureplat.dir/src/drm.cpp.o" "gcc" "src/secureplat/CMakeFiles/mapsec_secureplat.dir/src/drm.cpp.o.d"
  "/root/repo/src/secureplat/src/keystore.cpp" "src/secureplat/CMakeFiles/mapsec_secureplat.dir/src/keystore.cpp.o" "gcc" "src/secureplat/CMakeFiles/mapsec_secureplat.dir/src/keystore.cpp.o.d"
  "/root/repo/src/secureplat/src/secure_boot.cpp" "src/secureplat/CMakeFiles/mapsec_secureplat.dir/src/secure_boot.cpp.o" "gcc" "src/secureplat/CMakeFiles/mapsec_secureplat.dir/src/secure_boot.cpp.o.d"
  "/root/repo/src/secureplat/src/secure_world.cpp" "src/secureplat/CMakeFiles/mapsec_secureplat.dir/src/secure_world.cpp.o" "gcc" "src/secureplat/CMakeFiles/mapsec_secureplat.dir/src/secure_world.cpp.o.d"
  "/root/repo/src/secureplat/src/user_auth.cpp" "src/secureplat/CMakeFiles/mapsec_secureplat.dir/src/user_auth.cpp.o" "gcc" "src/secureplat/CMakeFiles/mapsec_secureplat.dir/src/user_auth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/mapsec_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
