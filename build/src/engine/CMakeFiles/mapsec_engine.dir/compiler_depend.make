# Empty compiler generated dependencies file for mapsec_engine.
# This may be replaced when dependencies are built.
