file(REMOVE_RECURSE
  "CMakeFiles/mapsec_engine.dir/src/protocol_engine.cpp.o"
  "CMakeFiles/mapsec_engine.dir/src/protocol_engine.cpp.o.d"
  "libmapsec_engine.a"
  "libmapsec_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapsec_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
