file(REMOVE_RECURSE
  "libmapsec_engine.a"
)
