# Empty compiler generated dependencies file for bench_accel_tiers.
# This may be replaced when dependencies are built.
