file(REMOVE_RECURSE
  "CMakeFiles/bench_accel_tiers.dir/accel_tiers.cpp.o"
  "CMakeFiles/bench_accel_tiers.dir/accel_tiers.cpp.o.d"
  "bench_accel_tiers"
  "bench_accel_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accel_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
