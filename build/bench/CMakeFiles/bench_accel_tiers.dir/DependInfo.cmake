
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/accel_tiers.cpp" "bench/CMakeFiles/bench_accel_tiers.dir/accel_tiers.cpp.o" "gcc" "bench/CMakeFiles/bench_accel_tiers.dir/accel_tiers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/mapsec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/mapsec_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/mapsec_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mapsec_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
