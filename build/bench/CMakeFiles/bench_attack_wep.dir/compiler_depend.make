# Empty compiler generated dependencies file for bench_attack_wep.
# This may be replaced when dependencies are built.
