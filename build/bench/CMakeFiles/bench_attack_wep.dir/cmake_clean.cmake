file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_wep.dir/attack_wep.cpp.o"
  "CMakeFiles/bench_attack_wep.dir/attack_wep.cpp.o.d"
  "bench_attack_wep"
  "bench_attack_wep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_wep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
