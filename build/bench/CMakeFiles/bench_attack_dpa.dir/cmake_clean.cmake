file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_dpa.dir/attack_dpa.cpp.o"
  "CMakeFiles/bench_attack_dpa.dir/attack_dpa.cpp.o.d"
  "bench_attack_dpa"
  "bench_attack_dpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_dpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
