# Empty dependencies file for bench_attack_dpa.
# This may be replaced when dependencies are built.
