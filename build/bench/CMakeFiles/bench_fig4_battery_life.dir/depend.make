# Empty dependencies file for bench_fig4_battery_life.
# This may be replaced when dependencies are built.
