file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_battery_life.dir/fig4_battery_life.cpp.o"
  "CMakeFiles/bench_fig4_battery_life.dir/fig4_battery_life.cpp.o.d"
  "bench_fig4_battery_life"
  "bench_fig4_battery_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_battery_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
