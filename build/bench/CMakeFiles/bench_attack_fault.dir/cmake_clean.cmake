file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_fault.dir/attack_fault.cpp.o"
  "CMakeFiles/bench_attack_fault.dir/attack_fault.cpp.o.d"
  "bench_attack_fault"
  "bench_attack_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
