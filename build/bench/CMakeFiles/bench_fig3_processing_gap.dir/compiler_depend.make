# Empty compiler generated dependencies file for bench_fig3_processing_gap.
# This may be replaced when dependencies are built.
