file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_processing_gap.dir/fig3_processing_gap.cpp.o"
  "CMakeFiles/bench_fig3_processing_gap.dir/fig3_processing_gap.cpp.o.d"
  "bench_fig3_processing_gap"
  "bench_fig3_processing_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_processing_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
