file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_bleichenbacher.dir/attack_bleichenbacher.cpp.o"
  "CMakeFiles/bench_attack_bleichenbacher.dir/attack_bleichenbacher.cpp.o.d"
  "bench_attack_bleichenbacher"
  "bench_attack_bleichenbacher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_bleichenbacher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
