# Empty compiler generated dependencies file for bench_attack_bleichenbacher.
# This may be replaced when dependencies are built.
