# Empty dependencies file for bench_secureplat.
# This may be replaced when dependencies are built.
