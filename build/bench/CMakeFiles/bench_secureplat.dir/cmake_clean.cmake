file(REMOVE_RECURSE
  "CMakeFiles/bench_secureplat.dir/secureplat.cpp.o"
  "CMakeFiles/bench_secureplat.dir/secureplat.cpp.o.d"
  "bench_secureplat"
  "bench_secureplat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secureplat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
