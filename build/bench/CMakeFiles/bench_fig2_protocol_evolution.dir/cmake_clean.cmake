file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_protocol_evolution.dir/fig2_protocol_evolution.cpp.o"
  "CMakeFiles/bench_fig2_protocol_evolution.dir/fig2_protocol_evolution.cpp.o.d"
  "bench_fig2_protocol_evolution"
  "bench_fig2_protocol_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_protocol_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
