file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_timing.dir/attack_timing.cpp.o"
  "CMakeFiles/bench_attack_timing.dir/attack_timing.cpp.o.d"
  "bench_attack_timing"
  "bench_attack_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
