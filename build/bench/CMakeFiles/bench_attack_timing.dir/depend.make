# Empty dependencies file for bench_attack_timing.
# This may be replaced when dependencies are built.
