file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol_engine.dir/protocol_engine.cpp.o"
  "CMakeFiles/bench_protocol_engine.dir/protocol_engine.cpp.o.d"
  "bench_protocol_engine"
  "bench_protocol_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
