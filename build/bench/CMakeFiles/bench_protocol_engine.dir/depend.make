# Empty dependencies file for bench_protocol_engine.
# This may be replaced when dependencies are built.
