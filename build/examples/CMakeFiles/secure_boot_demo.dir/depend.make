# Empty dependencies file for secure_boot_demo.
# This may be replaced when dependencies are built.
