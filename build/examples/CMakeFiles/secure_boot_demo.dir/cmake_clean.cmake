file(REMOVE_RECURSE
  "CMakeFiles/secure_boot_demo.dir/secure_boot_demo.cpp.o"
  "CMakeFiles/secure_boot_demo.dir/secure_boot_demo.cpp.o.d"
  "secure_boot_demo"
  "secure_boot_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_boot_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
