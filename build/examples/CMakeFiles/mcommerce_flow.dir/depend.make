# Empty dependencies file for mcommerce_flow.
# This may be replaced when dependencies are built.
