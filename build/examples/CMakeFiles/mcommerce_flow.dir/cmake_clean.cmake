file(REMOVE_RECURSE
  "CMakeFiles/mcommerce_flow.dir/mcommerce_flow.cpp.o"
  "CMakeFiles/mcommerce_flow.dir/mcommerce_flow.cpp.o.d"
  "mcommerce_flow"
  "mcommerce_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcommerce_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
