# Empty dependencies file for battery_planner.
# This may be replaced when dependencies are built.
