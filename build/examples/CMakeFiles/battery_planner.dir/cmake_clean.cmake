file(REMOVE_RECURSE
  "CMakeFiles/battery_planner.dir/battery_planner.cpp.o"
  "CMakeFiles/battery_planner.dir/battery_planner.cpp.o.d"
  "battery_planner"
  "battery_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
