file(REMOVE_RECURSE
  "CMakeFiles/wireless_evolution.dir/wireless_evolution.cpp.o"
  "CMakeFiles/wireless_evolution.dir/wireless_evolution.cpp.o.d"
  "wireless_evolution"
  "wireless_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wireless_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
