# Empty compiler generated dependencies file for wireless_evolution.
# This may be replaced when dependencies are built.
